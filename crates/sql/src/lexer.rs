//! Tokenizer for the SQL subset.

use std::fmt;

/// Lexical tokens.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// Identifier or keyword (keywords are recognised case-insensitively by the
    /// parser; the original spelling is preserved here).
    Ident(String),
    /// Numeric literal.
    Number(f64),
    /// Single-quoted string literal (quotes stripped, `''` unescaped).
    Str(String),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `=`
    Eq,
    /// `<>` or `!=`
    Ne,
    /// `;`
    Semicolon,
    /// `,`
    Comma,
    /// `*`
    Star,
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Ident(s) => write!(f, "{s}"),
            Token::Number(n) => write!(f, "{n}"),
            Token::Str(s) => write!(f, "'{s}'"),
            Token::LParen => write!(f, "("),
            Token::RParen => write!(f, ")"),
            Token::Lt => write!(f, "<"),
            Token::Le => write!(f, "<="),
            Token::Gt => write!(f, ">"),
            Token::Ge => write!(f, ">="),
            Token::Eq => write!(f, "="),
            Token::Ne => write!(f, "<>"),
            Token::Semicolon => write!(f, ";"),
            Token::Comma => write!(f, ","),
            Token::Star => write!(f, "*"),
        }
    }
}

/// Lexer errors with byte offsets.
#[derive(Debug, Clone, PartialEq)]
pub enum LexError {
    /// An unrecognised character.
    UnexpectedChar {
        /// The character.
        ch: char,
        /// Byte offset in the input.
        at: usize,
    },
    /// A string literal with no closing quote.
    UnterminatedString {
        /// Byte offset where the literal starts.
        at: usize,
    },
    /// A numeric literal that does not parse.
    BadNumber {
        /// The offending text.
        text: String,
        /// Byte offset where it starts.
        at: usize,
    },
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LexError::UnexpectedChar { ch, at } => {
                write!(f, "unexpected character '{ch}' at byte {at}")
            }
            LexError::UnterminatedString { at } => {
                write!(f, "unterminated string literal starting at byte {at}")
            }
            LexError::BadNumber { text, at } => {
                write!(f, "malformed number '{text}' at byte {at}")
            }
        }
    }
}

impl LexError {
    /// Byte offset in the input where the error occurred.
    pub fn at(&self) -> usize {
        match self {
            LexError::UnexpectedChar { at, .. }
            | LexError::UnterminatedString { at }
            | LexError::BadNumber { at, .. } => *at,
        }
    }
}

impl std::error::Error for LexError {}

/// Tokenizes `input`, discarding positions.
pub fn lex(input: &str) -> Result<Vec<Token>, LexError> {
    Ok(lex_spanned(input)?.into_iter().map(|(t, _)| t).collect())
}

/// Tokenizes `input`, pairing every token with the byte offset where it starts —
/// the parser threads these offsets into its errors.
pub fn lex_spanned(input: &str) -> Result<Vec<(Token, usize)>, LexError> {
    let bytes = input.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        let at = i;
        match c {
            ' ' | '\t' | '\n' | '\r' => i += 1,
            '(' => {
                tokens.push((Token::LParen, at));
                i += 1;
            }
            ')' => {
                tokens.push((Token::RParen, at));
                i += 1;
            }
            ';' => {
                tokens.push((Token::Semicolon, at));
                i += 1;
            }
            ',' => {
                tokens.push((Token::Comma, at));
                i += 1;
            }
            '*' => {
                tokens.push((Token::Star, at));
                i += 1;
            }
            '<' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push((Token::Le, at));
                    i += 2;
                } else if bytes.get(i + 1) == Some(&b'>') {
                    tokens.push((Token::Ne, at));
                    i += 2;
                } else {
                    tokens.push((Token::Lt, at));
                    i += 1;
                }
            }
            '>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push((Token::Ge, at));
                    i += 2;
                } else {
                    tokens.push((Token::Gt, at));
                    i += 1;
                }
            }
            '=' => {
                tokens.push((Token::Eq, at));
                i += 1;
            }
            '!' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push((Token::Ne, at));
                    i += 2;
                } else {
                    return Err(LexError::UnexpectedChar { ch: '!', at: i });
                }
            }
            '\'' => {
                let start = i;
                i += 1;
                let mut s = String::new();
                // Copy whole segments between quote characters, so multi-byte
                // UTF-8 content survives intact (byte-at-a-time `as char` would
                // turn it into mojibake; segment boundaries are always the ASCII
                // quote byte, hence valid char boundaries).
                let mut seg = i;
                loop {
                    match bytes.get(i) {
                        None => return Err(LexError::UnterminatedString { at: start }),
                        Some(b'\'') if bytes.get(i + 1) == Some(&b'\'') => {
                            s.push_str(&input[seg..i]);
                            s.push('\'');
                            i += 2;
                            seg = i;
                        }
                        Some(b'\'') => {
                            s.push_str(&input[seg..i]);
                            i += 1;
                            break;
                        }
                        Some(_) => i += 1,
                    }
                }
                tokens.push((Token::Str(s), start));
            }
            '0'..='9' | '.' | '-' | '+' => {
                let start = i;
                i += 1;
                while i < bytes.len()
                    && matches!(bytes[i] as char, '0'..='9' | '.' | 'e' | 'E' | '_')
                {
                    // Allow exponent signs directly after e/E.
                    if matches!(bytes[i] as char, 'e' | 'E')
                        && matches!(bytes.get(i + 1).map(|&b| b as char), Some('-') | Some('+'))
                    {
                        i += 1;
                    }
                    i += 1;
                }
                let text: String =
                    input[start..i].chars().filter(|&c| c != '_').collect();
                match text.parse::<f64>() {
                    Ok(n) => tokens.push((Token::Number(n), start)),
                    Err(_) => return Err(LexError::BadNumber { text, at: start }),
                }
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
                {
                    i += 1;
                }
                tokens.push((Token::Ident(input[start..i].to_string()), start));
            }
            _ => {
                // Report the actual (possibly multi-byte) character, not the
                // Latin-1 reading of its first byte. `i` is always a char
                // boundary here: every other branch consumes only ASCII bytes.
                let ch = input[i..].chars().next().expect("byte at i starts a char");
                return Err(LexError::UnexpectedChar { ch, at: i });
            }
        }
    }
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lexes_full_query() {
        let toks = lex("SELECT AVG(delay) FROM f WHERE dist >= 150.5 AND c = 'AA';").unwrap();
        assert_eq!(toks[0], Token::Ident("SELECT".into()));
        assert!(toks.contains(&Token::Ge));
        assert!(toks.contains(&Token::Number(150.5)));
        assert!(toks.contains(&Token::Str("AA".into())));
        assert_eq!(*toks.last().unwrap(), Token::Semicolon);
    }

    #[test]
    fn operators_two_char() {
        let toks = lex("a <= 1 b <> 2 c != 3 d >= 4").unwrap();
        assert!(toks.contains(&Token::Le));
        assert_eq!(toks.iter().filter(|t| **t == Token::Ne).count(), 2);
        assert!(toks.contains(&Token::Ge));
    }

    #[test]
    fn negative_and_scientific_numbers() {
        let toks = lex("-3.5 1e-3 +2").unwrap();
        assert_eq!(
            toks,
            vec![Token::Number(-3.5), Token::Number(1e-3), Token::Number(2.0)]
        );
    }

    #[test]
    fn escaped_quote_in_string() {
        let toks = lex("'it''s'").unwrap();
        assert_eq!(toks, vec![Token::Str("it's".into())]);
    }

    #[test]
    fn unterminated_string_errors() {
        assert!(matches!(lex("'abc"), Err(LexError::UnterminatedString { .. })));
    }

    #[test]
    fn unexpected_char_errors() {
        assert!(matches!(lex("a @ b"), Err(LexError::UnexpectedChar { ch: '@', .. })));
    }
}
