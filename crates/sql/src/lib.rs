//! SQL-subset parser and query AST for the PairwiseHist AQP framework.
//!
//! The paper's problem definition (§3) fixes the query shape:
//!
//! ```sql
//! SELECT F(Xi) FROM D WHERE P1 AND/OR P2 ... GROUP BY g;
//! ```
//!
//! where `F` is one of the seven supported aggregation functions, each `Pℓ` is
//! `Xj OP LITERAL` with `OP ∈ {<, >, <=, >=, =, <>}`, and `GROUP BY` applies to a
//! categorical column. AND binds tighter than OR (the operator precedence that drives
//! the *delayed transformation* of §5.2), and parentheses override it.
//!
//! The AST ([`Query`], [`Predicate`], [`Condition`]) is shared by every engine in the
//! workspace — PairwiseHist, the exact engine and all baselines — so a workload is
//! parsed once and evaluated identically everywhere.

// Debug/scaffolding egress is banned in library code: a stray println corrupts
// bin protocols (ph-serve speaks HTTP on stdout-adjacent fds) and dbg!/todo!
// are development leftovers. ph-lint R2 bans the panicking macros; these
// clippy denies catch the printing/scaffolding ones.
#![deny(clippy::dbg_macro, clippy::todo, clippy::unimplemented)]
#![deny(clippy::print_stdout, clippy::print_stderr)]
mod ast;
mod lexer;
mod parser;

pub use ast::{AggFunc, CmpOp, Condition, Predicate, Query};
pub use lexer::{lex, lex_spanned, LexError, Token};
pub use parser::{error_offset, parse_query, ParseError};
