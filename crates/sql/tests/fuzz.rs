//! Fuzz-style property tests for the SQL front end: whatever bytes arrive at
//! the front door — line noise, truncated queries, hostile mutations of valid
//! SQL — the lexer and parser must return a structured error or a query, never
//! panic, and every error must carry an in-bounds byte offset so callers can
//! point at the offending spot.
//!
//! Three input distributions, because each finds different bugs:
//!
//! 1. **raw byte soup** (mostly invalid UTF-8 turned lossy): exercises the
//!    lexer's byte-level scanning, including non-ASCII and replacement chars;
//! 2. **token soup**: syntactically plausible fragments in random order, which
//!    gets past the lexer and deep into the parser's expectation handling;
//! 3. **mutated valid queries**: single-edit corruptions of real templates —
//!    the classic source of off-by-one offsets in error reporting.

use proptest::prelude::*;

use ph_sql::{lex_spanned, parse_query};

/// Checks the invariants every outcome of `parse_query` must satisfy.
/// Returns an error string (for `prop_assert!`-style reporting) on violation.
fn check_front_end(input: &str) -> Result<(), String> {
    // The lexer: offsets in bounds, strictly non-decreasing, each a char
    // boundary (so callers can slice the input at the reported position).
    if let Ok(tokens) = lex_spanned(input) {
        let mut prev = 0usize;
        for (_, at) in &tokens {
            if *at >= input.len().max(1) && !input.is_empty() {
                return Err(format!("token offset {at} out of bounds in {input:?}"));
            }
            if *at < prev {
                return Err(format!("token offsets went backwards at {at} in {input:?}"));
            }
            if !input.is_char_boundary(*at) {
                return Err(format!("token offset {at} is not a char boundary in {input:?}"));
            }
            prev = *at;
        }
    }
    match parse_query(input) {
        Ok(q) => {
            // Accepted queries must print as SQL the parser accepts again,
            // meaning the same query (Display/parse round trip).
            let printed = q.to_string();
            match parse_query(&printed) {
                Ok(q2) if q2 == q => Ok(()),
                Ok(q2) => Err(format!("round trip changed the query: {q:?} vs {q2:?}")),
                Err(e) => Err(format!("printed query {printed:?} does not reparse: {e}")),
            }
        }
        Err(e) => {
            // `at == input.len()` is the documented "at end of input" marker.
            let at = e.at();
            if at > input.len() {
                return Err(format!(
                    "error offset {at} beyond input length {} for {input:?}: {e}",
                    input.len()
                ));
            }
            if !input.is_char_boundary(at) {
                return Err(format!("error offset {at} not a char boundary in {input:?}: {e}"));
            }
            // Display must never panic either (it interpolates the offset).
            let _ = e.to_string();
            Ok(())
        }
    }
}

/// Valid templates the mutation strategy corrupts.
const SEEDS: &[&str] = &[
    "SELECT COUNT(x) FROM t",
    "SELECT AVG(delay) FROM f WHERE dist > 150 AND dist < 300 OR air_time > 90.5;",
    "SELECT SUM(x) FROM t WHERE (a = 1 OR b = 2) AND c = 3",
    "select median(x) from t where a <> 'it''s' group by g;",
    "SELECT VAR(y) FROM t WHERE a >= -3.5 AND b <= 1e-3",
    "SELECT MAX(v) FROM t WHERE name = 'x y z' AND v != 0",
];

/// Bytes that stress the lexer: operators, quotes, digits, whitespace, a few
/// non-ASCII sequences, and plain identifier characters.
const SPICE: &[u8] = b"()<>=!;,*'\"._-+eE0189 \t\n\rxyABC%\x80\xC3\xA9\xF0";

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Arbitrary byte soup (made UTF-8 by lossy conversion): never panics,
    /// offsets stay in bounds.
    #[test]
    fn arbitrary_bytes_never_panic(bytes in proptest::collection::vec(any::<u8>(), 0..80)) {
        let input = String::from_utf8_lossy(&bytes).into_owned();
        if let Err(msg) = check_front_end(&input) {
            prop_assert!(false, "{msg}");
        }
    }

    /// Lexer-flavored byte soup: drawn from the characters the grammar actually
    /// uses, so far more inputs survive lexing and reach the parser.
    #[test]
    fn spiced_bytes_never_panic(picks in proptest::collection::vec(any::<prop::sample::Index>(), 0..60)) {
        let bytes: Vec<u8> = picks.iter().map(|i| SPICE[i.index(SPICE.len())]).collect();
        let input = String::from_utf8_lossy(&bytes).into_owned();
        if let Err(msg) = check_front_end(&input) {
            prop_assert!(false, "{msg}");
        }
    }

    /// Token soup: plausible SQL fragments in random order — the parser's
    /// unexpected-token paths all fire here, and every error offset must point
    /// at a real token start.
    #[test]
    fn token_soup_never_panics(picks in proptest::collection::vec(any::<prop::sample::Index>(), 0..25)) {
        const VOCAB: &[&str] = &[
            "SELECT", "FROM", "WHERE", "GROUP", "BY", "AND", "OR", "COUNT", "SUM",
            "AVG", "MIN", "MAX", "MEDIAN", "VAR", "FOO", "t", "x", "(", ")", "<",
            "<=", ">", ">=", "=", "<>", "!=", ";", ",", "*", "1", "2.5", "-3",
            "1e-3", "'a'", "'it''s'",
        ];
        let input = picks
            .iter()
            .map(|i| VOCAB[i.index(VOCAB.len())])
            .collect::<Vec<_>>()
            .join(" ");
        if let Err(msg) = check_front_end(&input) {
            prop_assert!(false, "{msg}");
        }
    }

    /// Single-edit mutations of valid queries: insert, delete, replace, or
    /// truncate at a random position. The mutant parses or errors with an
    /// in-bounds offset — and if it still parses, it still round-trips.
    #[test]
    fn mutated_valid_queries_never_panic(
        seed in any::<prop::sample::Index>(),
        pos in any::<prop::sample::Index>(),
        edit in 0u8..4,
        replacement in any::<prop::sample::Index>(),
    ) {
        let base = SEEDS[seed.index(SEEDS.len())];
        let bytes = base.as_bytes();
        let at = pos.index(bytes.len());
        let spice = SPICE[replacement.index(SPICE.len())];
        let mutated: Vec<u8> = match edit {
            0 => { // insert
                let mut v = bytes.to_vec();
                v.insert(at, spice);
                v
            }
            1 => { // delete
                let mut v = bytes.to_vec();
                v.remove(at);
                v
            }
            2 => { // replace
                let mut v = bytes.to_vec();
                v[at] = spice;
                v
            }
            _ => bytes[..at].to_vec(), // truncate
        };
        let input = String::from_utf8_lossy(&mutated).into_owned();
        if let Err(msg) = check_front_end(&input) {
            prop_assert!(false, "{msg}");
        }
    }
}

/// The unmutated seeds themselves parse and round-trip — anchors the mutation
/// test (a broken SEEDS entry would silently weaken it).
#[test]
fn seed_queries_parse_and_round_trip() {
    for sql in SEEDS {
        let q = parse_query(sql).unwrap_or_else(|e| panic!("seed {sql:?} must parse: {e}"));
        assert_eq!(parse_query(&q.to_string()).unwrap(), q, "{sql}");
    }
}
