//! Seeded random query workloads with selectivity control (paper §6).
//!
//! The paper's evaluation uses randomly generated queries: 100 single-predicate
//! COUNT/SUM/AVG queries per dataset for the initial experiments (minimum
//! selectivity 10⁻⁵), and 445/427 queries with all seven aggregates and 1–5
//! predicate conditions (minimum selectivity 10⁻⁶) for the scaled-up experiments.
//! This crate generates such workloads deterministically: predicate literals are
//! drawn from empirical column quantiles, AND/OR structure is randomised, and a
//! candidate query is accepted only if its selectivity on a verification subsample
//! clears the configured floor.

// Debug/scaffolding egress is banned in library code: a stray println corrupts
// bin protocols (ph-serve speaks HTTP on stdout-adjacent fds) and dbg!/todo!
// are development leftovers. ph-lint R2 bans the panicking macros; these
// clippy denies catch the printing/scaffolding ones.
#![deny(clippy::dbg_macro, clippy::todo, clippy::unimplemented)]
#![deny(clippy::print_stdout, clippy::print_stderr)]
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use ph_exact::evaluate;
use ph_sql::{AggFunc, CmpOp, Condition, Predicate, Query};
use ph_types::{ColumnType, Dataset, Value};

/// Workload shape parameters.
#[derive(Debug, Clone)]
pub struct WorkloadConfig {
    /// Number of queries to produce.
    pub n_queries: usize,
    /// Aggregate functions to draw from.
    pub aggs: Vec<AggFunc>,
    /// Minimum number of predicate conditions per query.
    pub min_predicates: usize,
    /// Maximum number of predicate conditions per query.
    pub max_predicates: usize,
    /// Minimum fraction of rows a query must select.
    pub min_selectivity: f64,
    /// Probability that a connective is OR instead of AND.
    pub or_probability: f64,
    /// Probability of adding GROUP BY on a low-cardinality categorical column.
    pub group_by_probability: f64,
    /// Rows used to verify selectivity (subsample of the dataset).
    pub check_rows: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        Self {
            n_queries: 100,
            aggs: vec![AggFunc::Count, AggFunc::Sum, AggFunc::Avg],
            min_predicates: 1,
            max_predicates: 1,
            min_selectivity: 1e-5,
            or_probability: 0.0,
            group_by_probability: 0.0,
            check_rows: 20_000,
            seed: 0x774c_4421,
        }
    }
}

impl WorkloadConfig {
    /// The paper's initial-experiment workload: 100 single-predicate COUNT/SUM/AVG
    /// queries, minimum selectivity 10⁻⁵ (§6.1).
    pub fn initial(seed: u64) -> Self {
        Self { seed, ..Default::default() }
    }

    /// The paper's scaled-up workload: all seven aggregates, 1–5 predicates, OR mix,
    /// minimum selectivity 10⁻⁶ (§6 intro).
    pub fn scaled(n_queries: usize, seed: u64) -> Self {
        Self {
            n_queries,
            aggs: AggFunc::ALL.to_vec(),
            min_predicates: 1,
            max_predicates: 5,
            min_selectivity: 1e-6,
            or_probability: 0.25,
            group_by_probability: 0.0,
            check_rows: 20_000,
            seed,
        }
    }
}

/// Generates a workload against `data`'s schema and value distributions.
pub fn generate(data: &Dataset, cfg: &WorkloadConfig) -> Vec<Query> {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let check = data.sample(cfg.check_rows, cfg.seed ^ 0x5eed);
    let gen = Generator::prepare(data, cfg);
    let mut out = Vec::with_capacity(cfg.n_queries);
    let mut attempts = 0usize;
    while out.len() < cfg.n_queries && attempts < cfg.n_queries * 200 {
        attempts += 1;
        let Some(q) = gen.candidate(&mut rng) else { continue };
        if gen.accept(&q, &check) {
            out.push(q);
        }
    }
    out
}

struct Generator<'a> {
    data: &'a Dataset,
    cfg: &'a WorkloadConfig,
    /// Sorted non-null value subsample per numeric column (literal source).
    quantiles: Vec<Option<Vec<f64>>>,
    numeric_cols: Vec<usize>,
    categorical_cols: Vec<usize>,
    group_cols: Vec<usize>,
}

impl<'a> Generator<'a> {
    fn prepare(data: &'a Dataset, cfg: &'a WorkloadConfig) -> Self {
        let probe = data.sample(4_000, cfg.seed ^ 0xdead_beef_u64);
        let mut quantiles = Vec::with_capacity(data.n_columns());
        let mut numeric_cols = Vec::new();
        let mut categorical_cols = Vec::new();
        let mut group_cols = Vec::new();
        for c in 0..data.n_columns() {
            let col = probe.column(c);
            match col.ty() {
                ColumnType::Categorical => {
                    quantiles.push(None);
                    if col.valid_count() > 0 {
                        categorical_cols.push(c);
                        let n_cats = col.dictionary().map_or(0, |d| d.len());
                        if (2..=50).contains(&n_cats) {
                            group_cols.push(c);
                        }
                    }
                }
                _ => {
                    let mut vals: Vec<f64> =
                        (0..probe.n_rows()).filter_map(|r| col.numeric(r)).collect();
                    vals.sort_by(|a, b| a.total_cmp(b));
                    if vals.len() >= 20 && vals[0] < vals[vals.len() - 1] {
                        numeric_cols.push(c);
                        quantiles.push(Some(vals));
                    } else {
                        quantiles.push(None);
                    }
                }
            }
        }
        Self { data, cfg, quantiles, numeric_cols, categorical_cols, group_cols }
    }

    fn candidate(&self, rng: &mut StdRng) -> Option<Query> {
        let agg = self.cfg.aggs[rng.gen_range(0..self.cfg.aggs.len())];
        // Aggregation column: numeric for value aggregates; COUNT may hit anything.
        let agg_col = if agg == AggFunc::Count && rng.gen_bool(0.15)
            && !self.categorical_cols.is_empty()
        {
            self.categorical_cols[rng.gen_range(0..self.categorical_cols.len())]
        } else {
            *pick(rng, &self.numeric_cols)?
        };

        let n_preds = rng.gen_range(self.cfg.min_predicates..=self.cfg.max_predicates);
        let mut conditions = Vec::with_capacity(n_preds);
        // Distinct predicate columns, chosen from both kinds.
        let mut pool: Vec<usize> = self
            .numeric_cols
            .iter()
            .chain(self.categorical_cols.iter())
            .copied()
            .collect();
        for _ in 0..n_preds {
            if pool.is_empty() {
                break;
            }
            let col = pool.swap_remove(rng.gen_range(0..pool.len()));
            conditions.push(self.condition(rng, col)?);
        }
        if conditions.is_empty() {
            return None;
        }

        // Assemble with AND/OR structure (AND binds tighter; we build the tree the
        // parser would produce for a flat infix mix).
        let predicate = self.assemble(rng, conditions);

        let group_by = if rng.gen_bool(self.cfg.group_by_probability) {
            pick(rng, &self.group_cols).map(|&g| self.data.column(g).name().to_string())
        } else {
            None
        };

        Some(Query {
            agg,
            column: self.data.column(agg_col).name().to_string(),
            table: self.data.name().to_string(),
            predicate: Some(predicate),
            group_by,
        })
    }

    fn condition(&self, rng: &mut StdRng, col: usize) -> Option<Condition> {
        let column = self.data.column(col);
        let name = column.name().to_string();
        match &self.quantiles[col] {
            Some(vals) => {
                let op = match rng.gen_range(0..10) {
                    0..=3 => CmpOp::Gt,
                    4..=7 => CmpOp::Lt,
                    8 => CmpOp::Ge,
                    _ => CmpOp::Le,
                };
                // Literal from a central quantile so predicates have usable
                // selectivity before verification.
                let q = rng.gen_range(0.05..0.95);
                let lit = ph_stats::quantile_sorted(vals, q);
                let value = match column.ty() {
                    ColumnType::Float { .. } => Value::Float((lit * 100.0).round() / 100.0),
                    _ => Value::Int(lit.round() as i64),
                };
                Some(Condition { column: name, op, value })
            }
            None => {
                // Categorical equality/inequality on an observed value.
                let dict = column.dictionary()?;
                if dict.is_empty() {
                    return None;
                }
                let r = rng.gen_range(0..self.data.n_rows());
                let value = match column.value(r) {
                    Value::Str(s) => Value::Str(s),
                    _ => Value::Str(dict[rng.gen_range(0..dict.len())].clone()),
                };
                let op = if rng.gen_bool(0.8) { CmpOp::Eq } else { CmpOp::Ne };
                Some(Condition { column: name, op, value })
            }
        }
    }

    /// Builds the predicate tree for conditions joined by a random AND/OR infix
    /// sequence, honouring AND-before-OR precedence.
    fn assemble(&self, rng: &mut StdRng, conditions: Vec<Condition>) -> Predicate {
        let mut or_groups: Vec<Vec<Predicate>> = vec![Vec::new()];
        for (i, c) in conditions.into_iter().enumerate() {
            if i > 0 && rng.gen_bool(self.cfg.or_probability) {
                or_groups.push(Vec::new());
            }
            or_groups.last_mut().unwrap().push(Predicate::Cond(c));
        }
        let mut branches: Vec<Predicate> = or_groups
            .into_iter()
            .map(|g| if g.len() == 1 { g.into_iter().next().unwrap() } else { Predicate::And(g) })
            .collect();
        if branches.len() == 1 {
            branches.pop().unwrap()
        } else {
            Predicate::Or(branches)
        }
    }

    /// Accepts a query when its selectivity on the verification subsample clears
    /// the floor (and the aggregate is defined).
    fn accept(&self, q: &Query, check: &Dataset) -> bool {
        let count_query = Query {
            agg: AggFunc::Count,
            column: q.column.clone(),
            table: q.table.clone(),
            predicate: q.predicate.clone(),
            group_by: None,
        };
        match evaluate(&count_query, check) {
            Ok(ans) => {
                let count = ans.scalar().unwrap_or(0.0);
                let needed =
                    (self.cfg.min_selectivity * check.n_rows() as f64).clamp(1.0, 50.0);
                count >= needed
            }
            Err(_) => false,
        }
    }
}

fn pick<'v, T>(rng: &mut StdRng, v: &'v [T]) -> Option<&'v T> {
    if v.is_empty() {
        None
    } else {
        Some(&v[rng.gen_range(0..v.len())])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ph_types::Column;

    fn data() -> Dataset {
        let mut rows_x = Vec::new();
        let mut rows_y = Vec::new();
        let mut rows_c = Vec::new();
        for i in 0..20_000i64 {
            rows_x.push(Some((i * i) % 997));
            rows_y.push(Some(i % 500));
            rows_c.push(Some(if i % 7 == 0 { "a" } else { "b" }));
        }
        Dataset::builder("t")
            .column(Column::from_ints("x", rows_x))
            .unwrap()
            .column(Column::from_ints("y", rows_y))
            .unwrap()
            .column(Column::from_strings("c", rows_c))
            .unwrap()
            .build()
    }

    #[test]
    fn generates_requested_count() {
        let d = data();
        let qs = generate(&d, &WorkloadConfig::initial(1));
        assert_eq!(qs.len(), 100);
        for q in &qs {
            assert!(q.predicate.is_some());
            assert_eq!(q.predicate.as_ref().unwrap().n_conditions(), 1);
            assert!(matches!(q.agg, AggFunc::Count | AggFunc::Sum | AggFunc::Avg));
        }
    }

    #[test]
    fn deterministic_in_seed() {
        let d = data();
        assert_eq!(
            generate(&d, &WorkloadConfig::initial(5)),
            generate(&d, &WorkloadConfig::initial(5))
        );
        assert_ne!(
            generate(&d, &WorkloadConfig::initial(5)),
            generate(&d, &WorkloadConfig::initial(6))
        );
    }

    #[test]
    fn scaled_workload_has_multi_predicates_and_ors() {
        let d = data();
        let qs = generate(&d, &WorkloadConfig::scaled(150, 2));
        assert_eq!(qs.len(), 150);
        assert!(qs.iter().any(|q| q.predicate.as_ref().unwrap().n_conditions() >= 2));
        assert!(qs.iter().any(|q| q.predicate.as_ref().unwrap().has_or()));
        let aggs: std::collections::HashSet<_> = qs.iter().map(|q| q.agg).collect();
        assert!(aggs.len() >= 5, "should cover most aggregates, got {aggs:?}");
    }

    #[test]
    fn selectivity_floor_respected() {
        let d = data();
        let cfg = WorkloadConfig { min_selectivity: 0.01, ..WorkloadConfig::initial(3) };
        for q in generate(&d, &cfg) {
            let count_q = Query {
                agg: AggFunc::Count,
                column: q.column.clone(),
                table: q.table.clone(),
                predicate: q.predicate.clone(),
                group_by: None,
            };
            let truth = evaluate(&count_q, &d).unwrap().scalar().unwrap();
            assert!(
                truth / d.n_rows() as f64 >= 0.002,
                "query {q} selects only {truth} rows"
            );
        }
    }

    #[test]
    fn queries_roundtrip_through_parser() {
        let d = data();
        for q in generate(&d, &WorkloadConfig::scaled(50, 4)) {
            let reparsed = ph_sql::parse_query(&q.to_string()).unwrap();
            assert_eq!(q, reparsed, "workload queries must print as valid SQL");
        }
    }

    #[test]
    fn group_by_generation() {
        let d = data();
        let cfg = WorkloadConfig {
            group_by_probability: 1.0,
            ..WorkloadConfig::initial(7)
        };
        let qs = generate(&d, &cfg);
        assert!(qs.iter().all(|q| q.group_by.as_deref() == Some("c")));
    }
}
