//! Criterion microbenchmarks for the GreedyGD substrate: pre-processing, greedy
//! compression, random row access and serialization.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};

use ph_gd::{GdCompressor, Preprocessor};

fn gd(c: &mut Criterion) {
    let data = ph_datagen::generate("Temp", 100_000, 3).expect("dataset");
    let pre = Preprocessor::fit(&data);
    let encoded = pre.encode(&data);
    let store = GdCompressor::new().compress(&encoded);

    let mut group = c.benchmark_group("gd");
    group.throughput(Throughput::Elements(data.n_rows() as u64));
    group.sample_size(10);
    group.bench_function("preprocess_fit", |b| b.iter(|| Preprocessor::fit(&data)));
    group.bench_function("encode", |b| b.iter(|| pre.encode(&data)));
    group.bench_function("compress", |b| {
        b.iter(|| GdCompressor::new().compress(&encoded))
    });
    group.bench_function("serialize", |b| b.iter(|| store.to_bytes()));
    group.finish();

    let mut group = c.benchmark_group("gd_access");
    group.bench_function("random_row", |b| {
        let mut i = 0usize;
        b.iter(|| {
            i = (i * 2_654_435_761 + 1) % store.n_rows();
            store.row(i)
        })
    });
    group.finish();
}

criterion_group!(benches, gd);
criterion_main!(benches);
