//! Criterion microbenchmarks for synopsis construction (the Fig 11(d) metric at
//! micro scale): stand-alone vs GD-seeded builds across sample sizes.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use ph_core::{PairwiseHist, PairwiseHistConfig};
use ph_gd::{GdCompressor, Preprocessor};

fn construction(c: &mut Criterion) {
    let data = ph_datagen::generate("Power", 50_000, 1).expect("dataset");
    let pre = Arc::new(Preprocessor::fit(&data));
    let store = GdCompressor::new().compress(&pre.encode(&data));

    let mut group = c.benchmark_group("construction");
    group.sample_size(10);
    for ns in [5_000usize, 20_000, 50_000] {
        group.bench_with_input(BenchmarkId::new("standalone", ns), &ns, |b, &ns| {
            let cfg = PairwiseHistConfig { ns, ..Default::default() };
            b.iter(|| PairwiseHist::build(&data, &cfg));
        });
        group.bench_with_input(BenchmarkId::new("gd_seeded", ns), &ns, |b, &ns| {
            let cfg = PairwiseHistConfig { ns, ..Default::default() };
            b.iter(|| PairwiseHist::build_from_gd(&store, pre.clone(), &cfg));
        });
    }
    group.finish();
}

criterion_group!(benches, construction);
criterion_main!(benches);
