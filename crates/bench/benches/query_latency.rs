//! Criterion microbenchmarks for query execution latency (the Fig 11(c) metric):
//! one benchmark per aggregation function, a multi-predicate mixed query, the
//! factored GROUP BY path, and scaling in both predicate count and group count.

use criterion::{criterion_group, criterion_main, Criterion};

use ph_bench::{power_with_day, power_with_groups};
use ph_core::{PairwiseHist, PairwiseHistConfig};
use ph_sql::parse_query;

fn latency(c: &mut Criterion) {
    let data = power_with_day(100_000);
    let ph = PairwiseHist::build(&data, &PairwiseHistConfig { ns: 100_000, ..Default::default() });

    let queries = [
        ("count", "SELECT COUNT(global_active_power) FROM Power WHERE voltage > 238;"),
        ("sum", "SELECT SUM(global_active_power) FROM Power WHERE voltage > 238;"),
        ("avg", "SELECT AVG(global_active_power) FROM Power WHERE voltage > 238;"),
        ("min", "SELECT MIN(global_active_power) FROM Power WHERE voltage > 238;"),
        ("max", "SELECT MAX(global_active_power) FROM Power WHERE voltage > 238;"),
        ("median", "SELECT MEDIAN(global_active_power) FROM Power WHERE voltage > 238;"),
        ("var", "SELECT VAR(global_active_power) FROM Power WHERE voltage > 238;"),
        (
            "multi_predicate",
            "SELECT AVG(global_active_power) FROM Power WHERE voltage > 236 AND \
             global_intensity < 30 AND sub_metering_3 >= 1 OR weekday = 6;",
        ),
        (
            "group_by",
            "SELECT COUNT(global_active_power) FROM Power WHERE voltage > 238 GROUP BY day;",
        ),
    ];
    let mut group = c.benchmark_group("query_latency");
    for (name, sql) in queries {
        let q = parse_query(sql).expect("valid query");
        group.bench_function(name, |b| b.iter(|| ph.execute(&q).unwrap()));
    }
    group.finish();

    // Latency vs predicate count: the paper highlights that PairwiseHist stays
    // flat where DeepDB degrades on multi-predicate queries (S2, S6.5).
    let preds = [
        "voltage > 238",
        "voltage > 238 AND global_intensity < 30",
        "voltage > 238 AND global_intensity < 30 AND sub_metering_3 >= 1",
        "voltage > 238 AND global_intensity < 30 AND sub_metering_3 >= 1 AND sub_metering_1 < 50",
        "voltage > 238 AND global_intensity < 30 AND sub_metering_3 >= 1 AND sub_metering_1 < 50 AND weekday <= 5",
    ];
    let mut group = c.benchmark_group("latency_vs_predicates");
    for (n, cond) in preds.iter().enumerate() {
        let q = parse_query(&format!(
            "SELECT AVG(global_active_power) FROM Power WHERE {cond};"
        ))
        .expect("valid query");
        group.bench_function(format!("{}_predicates", n + 1), |b| {
            b.iter(|| ph.execute(&q).unwrap())
        });
    }
    group.finish();

    // Latency vs group count: the factored GROUP BY path evaluates the shared
    // predicate once and adds O(1) work per group, so latency should grow far
    // slower than group count.
    let mut group = c.benchmark_group("latency_vs_groups");
    let power = ph_datagen::generate("Power", 100_000, 2).expect("dataset");
    for n_groups in [8usize, 32, 128, 512] {
        let data = power_with_groups(&power, n_groups);
        let ph = PairwiseHist::build(
            &data,
            &PairwiseHistConfig { ns: 100_000, ..Default::default() },
        );
        let q = parse_query(
            "SELECT COUNT(global_active_power) FROM Power WHERE voltage > 238 GROUP BY g;",
        )
        .expect("valid query");
        group.bench_function(format!("{n_groups}_groups"), |b| {
            b.iter(|| ph.execute(&q).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, latency);
criterion_main!(benches);
