//! Criterion microbenchmarks for query-path components: χ² criticals, Golomb
//! coding, serialization round-trips — the small pieces whose costs compose into
//! the sub-millisecond latency headline.

use criterion::{criterion_group, criterion_main, Criterion};

use ph_core::{PairwiseHist, PairwiseHistConfig};
use ph_encoding::{golomb_decode, golomb_encode, BitReader, BitWriter};
use ph_stats::chi2_critical;

fn components(c: &mut Criterion) {
    let mut group = c.benchmark_group("components");

    group.bench_function("chi2_critical", |b| {
        let mut dof = 1u32;
        b.iter(|| {
            dof = dof % 30 + 1;
            chi2_critical(0.001, dof as f64)
        })
    });

    group.bench_function("golomb_roundtrip_1k", |b| {
        b.iter(|| {
            let mut w = BitWriter::new();
            for v in 0..1000u64 {
                golomb_encode(&mut w, v % 97, 7);
            }
            let bytes = w.finish();
            let mut r = BitReader::new(&bytes);
            let mut acc = 0u64;
            for _ in 0..1000 {
                acc += golomb_decode(&mut r, 7).unwrap();
            }
            acc
        })
    });

    let data = ph_datagen::generate("Gas", 30_000, 4).expect("dataset");
    let ph = PairwiseHist::build(&data, &PairwiseHistConfig { ns: 30_000, ..Default::default() });
    group.bench_function("synopsis_serialize", |b| b.iter(|| ph.to_bytes()));
    let bytes = ph.to_bytes();
    group.bench_function("synopsis_deserialize", |b| {
        b.iter(|| PairwiseHist::from_bytes(&bytes, ph.preprocessor().clone()).unwrap())
    });

    // Incremental update path (S7 extension): ingest a 1k-row batch.
    let batch = ph
        .preprocessor()
        .clone()
        .encode(&ph_datagen::generate("Gas", 1_000, 5).expect("dataset"));
    group.bench_function("ingest_1k_rows", |b| {
        b.iter_batched(
            || ph.clone(),
            |mut fresh| {
                fresh.ingest(&batch);
                fresh
            },
            criterion::BatchSize::LargeInput,
        )
    });
    group.finish();
}

criterion_group!(benches, components);
criterion_main!(benches);
