//! Shared harness for the evaluation binaries (one per paper table/figure).
//!
//! The experiment index in DESIGN.md §5 maps each binary to its table or figure:
//!
//! | binary   | reproduces |
//! |----------|------------|
//! | `fig8`   | Fig 8: median error + synopsis size across the 11 datasets |
//! | `fig9`   | Fig 9: parameter sensitivity (`M`, `α`, `Ns`) |
//! | `table5` | Table 5: median error by aggregation function |
//! | `fig10`  | Fig 10: error CDFs + real-vs-IDEBench comparison |
//! | `table6` | Table 6: bounds correct-rate and width |
//! | `fig11`  | Fig 11: synopsis size, total storage, latency, construction time |
//! | `summary`| Fig 1 / Table 1: all-round comparison |
//! | `ablation` | DESIGN.md ablations: split rule, GD seeding, sparse counts |
//!
//! Absolute numbers depend on hardware and default scale factors (the paper used a
//! billion-row testbed); the harness is built so the *relative* shapes — who wins,
//! by what factor, where the crossovers are — reproduce.

use std::time::Instant;

use ph_baselines::AqpBaseline;
use ph_core::PairwiseHist;
use ph_exact::evaluate;
use ph_sql::Query;
use ph_types::Dataset;

/// Outcome of one engine on one query.
#[derive(Debug, Clone, Copy)]
pub struct QueryOutcome {
    /// Point estimate (None = undefined result on a supported query).
    pub estimate: Option<f64>,
    /// Bounds, when the engine provides them.
    pub bounds: Option<(f64, f64)>,
    /// Execution latency in seconds.
    pub latency: f64,
    /// Whether the engine supports this query at all.
    pub supported: bool,
}

/// Relative error |estimate − truth| / |truth| (paper's error metric); `None` when
/// truth or estimate is undefined. A zero truth with nonzero estimate counts as 100%.
pub fn relative_error(estimate: Option<f64>, truth: Option<f64>) -> Option<f64> {
    match (estimate, truth) {
        (Some(e), Some(t)) => {
            if t.abs() < f64::EPSILON {
                Some(if e.abs() < f64::EPSILON { 0.0 } else { 1.0 })
            } else {
                Some((e - t).abs() / t.abs())
            }
        }
        _ => None,
    }
}

/// Median of a slice (NaN-free); `None` if empty.
pub fn median(xs: &[f64]) -> Option<f64> {
    if xs.is_empty() {
        return None;
    }
    let mut v = xs.to_vec();
    v.sort_by(|a, b| a.total_cmp(b));
    let mid = v.len() / 2;
    Some(if v.len() % 2 == 1 { v[mid] } else { 0.5 * (v[mid - 1] + v[mid]) })
}

/// Percentile (linear interpolation) of a slice; `None` if empty.
pub fn percentile(xs: &[f64], p: f64) -> Option<f64> {
    if xs.is_empty() {
        return None;
    }
    let mut v = xs.to_vec();
    v.sort_by(|a, b| a.total_cmp(b));
    Some(ph_stats::quantile_sorted(&v, p.clamp(0.0, 1.0)))
}

/// Computes exact ground truths for a workload (scalar queries), in parallel.
pub fn ground_truths(data: &Dataset, queries: &[Query]) -> Vec<Option<f64>> {
    let mut out = vec![None; queries.len()];
    let workers = std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1);
    let next = std::sync::atomic::AtomicUsize::new(0);
    let results = std::sync::Mutex::new(&mut out);
    std::thread::scope(|scope| {
        for _ in 0..workers.min(queries.len().max(1)) {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if i >= queries.len() {
                    break;
                }
                let truth = evaluate(&queries[i], data).ok().and_then(|a| a.scalar());
                results.lock().expect("truth lock")[i] = truth;
            });
        }
    });
    out
}

/// Runs PairwiseHist on a workload, recording per-query latency.
pub fn run_pairwisehist(ph: &PairwiseHist, queries: &[Query]) -> Vec<QueryOutcome> {
    queries
        .iter()
        .map(|q| {
            let t0 = Instant::now();
            let res = ph.execute(q);
            let latency = t0.elapsed().as_secs_f64();
            match res {
                Ok(ans) => match ans.scalar() {
                    Some(e) => QueryOutcome {
                        estimate: Some(e.value),
                        bounds: Some((e.lo, e.hi)),
                        latency,
                        supported: true,
                    },
                    None => {
                        QueryOutcome { estimate: None, bounds: None, latency, supported: true }
                    }
                },
                Err(_) => {
                    QueryOutcome { estimate: None, bounds: None, latency, supported: false }
                }
            }
        })
        .collect()
}

/// Runs a baseline engine on a workload.
pub fn run_baseline<B: AqpBaseline + ?Sized>(engine: &B, queries: &[Query]) -> Vec<QueryOutcome> {
    queries
        .iter()
        .map(|q| {
            let t0 = Instant::now();
            let res = engine.execute(q);
            let latency = t0.elapsed().as_secs_f64();
            match res {
                Ok(a) => QueryOutcome {
                    estimate: Some(a.value),
                    bounds: (a.lo < a.hi).then_some((a.lo, a.hi)),
                    latency,
                    supported: true,
                },
                Err(_) => {
                    QueryOutcome { estimate: None, bounds: None, latency, supported: false }
                }
            }
        })
        .collect()
}

/// Error statistics over a workload for one engine.
#[derive(Debug, Clone, Copy)]
pub struct ErrorStats {
    /// Median relative error over supported, defined queries.
    pub median_error: f64,
    /// Queries the engine supports.
    pub supported: usize,
    /// Median latency (seconds) over supported queries.
    pub median_latency: f64,
}

/// Summarises outcomes against ground truths.
pub fn error_stats(outcomes: &[QueryOutcome], truths: &[Option<f64>]) -> ErrorStats {
    let errors: Vec<f64> = outcomes
        .iter()
        .zip(truths)
        .filter(|(o, _)| o.supported)
        .filter_map(|(o, t)| relative_error(o.estimate, *t))
        .collect();
    let latencies: Vec<f64> =
        outcomes.iter().filter(|o| o.supported).map(|o| o.latency).collect();
    ErrorStats {
        median_error: median(&errors).unwrap_or(f64::NAN),
        supported: outcomes.iter().filter(|o| o.supported).count(),
        median_latency: median(&latencies).unwrap_or(f64::NAN),
    }
}

/// Bounds quality (Table 6 metrics) over supported queries with defined truth.
#[derive(Debug, Clone, Copy)]
pub struct BoundsStats {
    /// Fraction of queries whose bounds contain the truth.
    pub correct_rate: f64,
    /// Median bound width as a fraction of the exact result.
    pub median_width: f64,
    /// Queries considered.
    pub n: usize,
}

/// Computes the Table 6 metrics.
pub fn bounds_stats(outcomes: &[QueryOutcome], truths: &[Option<f64>]) -> BoundsStats {
    let mut correct = 0usize;
    let mut widths = Vec::new();
    let mut n = 0usize;
    for (o, t) in outcomes.iter().zip(truths) {
        let (Some((lo, hi)), Some(t)) = (o.bounds, *t) else { continue };
        n += 1;
        if lo <= t && t <= hi {
            correct += 1;
        }
        if t.abs() > f64::EPSILON {
            widths.push((hi - lo) / t.abs());
        }
    }
    BoundsStats {
        correct_rate: if n > 0 { correct as f64 / n as f64 } else { f64::NAN },
        median_width: median(&widths).unwrap_or(f64::NAN),
        n,
    }
}

/// DBEst-style templates for a workload: `(aggregation column, predicate column)`
/// pairs, as the paper counts them when sizing DBEst++ ("we include all DBEst++
/// models required to support the same queries").
pub fn kde_templates(queries: &[Query]) -> Vec<(String, String)> {
    let mut out: Vec<(String, String)> = Vec::new();
    for q in queries {
        let Some(p) = &q.predicate else { continue };
        let cols = p.columns();
        if cols.len() != 1 {
            continue;
        }
        let pair = (q.column.clone(), cols[0].to_string());
        if !out.contains(&pair) {
            out.push(pair);
        }
    }
    out
}

/// Builds the full paper pipeline for a dataset: pre-processing, GreedyGD
/// compression, and the synopsis seeded from GD bases (Fig 2). Returns the pieces
/// plus the wall-clock seconds spent on GD compression and on synopsis construction.
pub fn build_pipeline(
    data: &Dataset,
    cfg: &ph_core::PairwiseHistConfig,
) -> PipelineBuild {
    let t0 = Instant::now();
    let pre = std::sync::Arc::new(ph_gd::Preprocessor::fit(data));
    let encoded = pre.encode(data);
    let store = ph_gd::GdCompressor::new().compress(&encoded);
    let gd_secs = t0.elapsed().as_secs_f64();
    let t1 = Instant::now();
    let ph = PairwiseHist::build_from_gd(&store, pre.clone(), cfg);
    let ph_secs = t1.elapsed().as_secs_f64();
    PipelineBuild { pre, store, ph, gd_secs, ph_secs }
}

/// Output of [`build_pipeline`].
pub struct PipelineBuild {
    /// Fitted pre-processing transforms.
    pub pre: std::sync::Arc<ph_gd::Preprocessor>,
    /// GreedyGD-compressed store.
    pub store: ph_gd::GdStore,
    /// The synopsis.
    pub ph: PairwiseHist,
    /// Seconds spent fitting + compressing.
    pub gd_secs: f64,
    /// Seconds spent building the synopsis.
    pub ph_secs: f64,
}

/// The scaled-up dataset of §6: the named analogue at `seed_rows`, scaled to
/// `target_rows` with the IDEBench-style generator.
pub fn scaled_dataset(name: &str, seed_rows: usize, target_rows: usize, seed: u64) -> Dataset {
    let base = ph_datagen::generate(name, seed_rows, seed).expect("known dataset");
    if target_rows <= seed_rows {
        return base;
    }
    ph_datagen::scale_up(&base, target_rows, seed ^ 0x1de_beec4)
}

/// Tiny fixed-width table printer for experiment output.
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Starts a table with column headers.
    pub fn new(header: &[&str]) -> Self {
        Self { header: header.iter().map(|s| s.to_string()).collect(), rows: Vec::new() }
    }

    /// Adds one row (must match the header arity).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// Renders with per-column width fitting.
    pub fn print(&self) {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let line = |cells: &[String]| {
            let joined: Vec<String> = cells
                .iter()
                .zip(&widths)
                .map(|(c, w)| format!("{c:>w$}", w = w))
                .collect();
            println!("  {}", joined.join("  "));
        };
        line(&self.header);
        println!("  {}", widths.iter().map(|w| "-".repeat(*w)).collect::<Vec<_>>().join("  "));
        for row in &self.rows {
            line(row);
        }
    }
}

/// Formats seconds human-readably (the Fig 11(d) axis style).
pub fn fmt_duration(secs: f64) -> String {
    if secs < 1.0 {
        format!("{:.0} ms", secs * 1e3)
    } else if secs < 120.0 {
        format!("{secs:.1} s")
    } else if secs < 7200.0 {
        format!("{:.1} min", secs / 60.0)
    } else {
        format!("{:.1} h", secs / 3600.0)
    }
}

/// Formats bytes with the units the paper uses.
pub fn fmt_bytes(bytes: usize) -> String {
    let b = bytes as f64;
    if b < 1024.0 {
        format!("{bytes} B")
    } else if b < 1024.0 * 1024.0 {
        format!("{:.1} KB", b / 1024.0)
    } else if b < 1024.0 * 1024.0 * 1024.0 {
        format!("{:.2} MB", b / (1024.0 * 1024.0))
    } else {
        format!("{:.2} GB", b / (1024.0 * 1024.0 * 1024.0))
    }
}

/// Simple `--key value` argument reader shared by the binaries.
pub struct Args {
    args: Vec<String>,
}

impl Args {
    /// Captures the process arguments.
    pub fn capture() -> Self {
        Self { args: std::env::args().skip(1).collect() }
    }

    /// Reads `--name v` as a parsed value, falling back to `default`.
    pub fn get<T: std::str::FromStr>(&self, name: &str, default: T) -> T {
        let flag = format!("--{name}");
        self.args
            .iter()
            .position(|a| a == &flag)
            .and_then(|i| self.args.get(i + 1))
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    }

    /// Whether a bare `--name` flag is present.
    pub fn has(&self, name: &str) -> bool {
        self.args.iter().any(|a| a == &format!("--{name}"))
    }
}

/// Power/`rows` with a categorical `day` column derived from `weekday`, so the
/// GROUP BY benchmarks have a dictionary column to group on (GROUP BY requires
/// a categorical column; `weekday` itself is numeric). Shared by the
/// `query_latency` criterion bench and the `latency_json` trajectory binary so
/// both always measure the same dataset.
pub fn power_with_day(rows: usize) -> Dataset {
    use ph_types::Column;
    let power = ph_datagen::generate("Power", rows, 2).expect("dataset");
    let weekday = power.column_by_name("weekday").expect("weekday column");
    let names: Vec<Option<String>> = (0..power.n_rows())
        .map(|i| weekday.numeric(i).map(|d| format!("d{}", d as i64)))
        .collect();
    let day: Vec<Option<&str>> = names.iter().map(|n| n.as_deref()).collect();
    let mut b = Dataset::builder("Power");
    for col in power.columns() {
        b = b.column(col.clone()).expect("copy column");
    }
    b.column(Column::from_strings("day", day)).expect("day column").build()
}

/// Slim Power projection (aggregation + predicate columns) plus a synthetic
/// categorical `g` column with `n_groups` round-robin categories — the
/// group-count-scaling workload. Shared by the `query_latency` criterion bench
/// and the `latency_json` trajectory binary so both always measure the same
/// dataset; pass the same base `power` dataset to avoid regenerating it per
/// group count.
pub fn power_with_groups(power: &Dataset, n_groups: usize) -> Dataset {
    use ph_types::Column;
    let names: Vec<String> =
        (0..power.n_rows()).map(|i| format!("g{:03}", i % n_groups)).collect();
    let g: Vec<Option<&str>> = names.iter().map(|s| Some(s.as_str())).collect();
    Dataset::builder("Power")
        .column(power.column_by_name("global_active_power").expect("gap column").clone())
        .expect("copy column")
        .column(power.column_by_name("voltage").expect("voltage column").clone())
        .expect("copy column")
        .column(Column::from_strings("g", g))
        .expect("group column")
        .build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relative_error_cases() {
        let e = relative_error(Some(110.0), Some(100.0)).unwrap();
        assert!((e - 0.1).abs() < 1e-12);
        assert_eq!(relative_error(Some(0.0), Some(0.0)), Some(0.0));
        assert_eq!(relative_error(Some(5.0), Some(0.0)), Some(1.0));
        assert_eq!(relative_error(None, Some(1.0)), None);
        assert_eq!(relative_error(Some(1.0), None), None);
    }

    #[test]
    fn median_and_percentile() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), Some(2.0));
        assert_eq!(median(&[4.0, 1.0, 2.0, 3.0]), Some(2.5));
        assert_eq!(median(&[]), None);
        assert_eq!(percentile(&[1.0, 2.0, 3.0, 4.0, 5.0], 0.5), Some(3.0));
    }

    #[test]
    fn bounds_stats_counts_containment() {
        let outcomes = vec![
            QueryOutcome {
                estimate: Some(10.0),
                bounds: Some((8.0, 12.0)),
                latency: 0.0,
                supported: true,
            },
            QueryOutcome {
                estimate: Some(10.0),
                bounds: Some((10.5, 12.0)),
                latency: 0.0,
                supported: true,
            },
        ];
        let truths = vec![Some(9.0), Some(10.0)];
        let b = bounds_stats(&outcomes, &truths);
        assert_eq!(b.n, 2);
        assert!((b.correct_rate - 0.5).abs() < 1e-12);
    }

    #[test]
    fn kde_templates_deduplicate() {
        use ph_sql::parse_query;
        let qs = vec![
            parse_query("SELECT AVG(a) FROM t WHERE b > 1").unwrap(),
            parse_query("SELECT SUM(a) FROM t WHERE b < 5").unwrap(),
            parse_query("SELECT AVG(a) FROM t WHERE c > 1 AND b > 2").unwrap(),
        ];
        let t = kde_templates(&qs);
        assert_eq!(t, vec![("a".to_string(), "b".to_string())]);
    }
}
