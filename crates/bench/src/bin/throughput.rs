//! Concurrent-session throughput: queries/sec at 1/2/4/8 reader threads with a
//! background writer ingesting batches the whole time — the serving posture the
//! thread-safe `Session` exists for. Results are **appended** to
//! `BENCH_query_latency.json` (the perf-trajectory artifact) under
//! `"concurrent_throughput"`.
//!
//! Readers share one `&Session` and rotate through the standard Power scalar
//! query set via `Session::sql` (plan-cache hits — the hot path). The writer
//! loops `Session::ingest` over pre-built batches; every batch is an
//! out-of-place epoch swap, so readers never block on it.
//!
//! Reader scaling is bounded by the machine: on a single hardware thread the
//! 1→4 ratio is ~1.0 by physics (the point of recording
//! `available_parallelism` next to the numbers); on a multi-core runner the
//! shared read path scales because the only shared state readers touch is a
//! handful of read-locked `Arc` clones.
//!
//! Usage: `cargo run --release -p ph-bench --bin throughput [out_path]`

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::{Duration, Instant};

use ph_bench::power_with_day;
use ph_core::{PairwiseHistConfig, Session};

const ROWS: usize = 100_000;
const BATCH_ROWS: usize = 1_000;
const MEASURE: Duration = Duration::from_millis(600);

const QUERIES: [&str; 8] = [
    "SELECT COUNT(global_active_power) FROM Power WHERE voltage > 238;",
    "SELECT SUM(global_active_power) FROM Power WHERE voltage > 238;",
    "SELECT AVG(global_active_power) FROM Power WHERE voltage > 238;",
    "SELECT MIN(global_active_power) FROM Power WHERE voltage > 238;",
    "SELECT MAX(global_active_power) FROM Power WHERE voltage > 238;",
    "SELECT MEDIAN(global_active_power) FROM Power WHERE voltage > 238;",
    "SELECT VAR(global_active_power) FROM Power WHERE voltage > 238;",
    "SELECT AVG(global_active_power) FROM Power WHERE voltage > 236 AND \
     global_intensity < 30 AND sub_metering_3 >= 1 OR weekday = 6;",
];

/// One measurement: `readers` threads querying flat out for [`MEASURE`], with
/// (optionally) a writer ingesting batches concurrently. Returns queries/sec.
fn run_point(session: &Session, readers: usize, batches: &[ph_types::Dataset], with_writer: bool) -> f64 {
    let stop = AtomicBool::new(false);
    let total = AtomicU64::new(0);
    let t0 = Instant::now();
    std::thread::scope(|scope| {
        if with_writer {
            let stop = &stop;
            scope.spawn(move || {
                for batch in batches.iter().cycle() {
                    if stop.load(Ordering::Acquire) {
                        break;
                    }
                    session.ingest("Power", batch).expect("bench ingest");
                    std::thread::sleep(Duration::from_millis(5));
                }
            });
        }
        for r in 0..readers {
            let stop = &stop;
            let total = &total;
            scope.spawn(move || {
                let mut n = 0u64;
                let mut qi = r; // staggered start so threads don't lockstep
                while !stop.load(Ordering::Acquire) {
                    session.sql(QUERIES[qi % QUERIES.len()]).expect("bench query");
                    qi += 1;
                    n += 1;
                }
                total.fetch_add(n, Ordering::Relaxed);
            });
        }
        std::thread::sleep(MEASURE);
        stop.store(true, Ordering::Release);
    });
    total.load(Ordering::Relaxed) as f64 / t0.elapsed().as_secs_f64()
}

fn main() {
    let out_path = std::env::args().nth(1).unwrap_or_else(|| "BENCH_query_latency.json".into());
    let cores = std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1);

    let data = power_with_day(ROWS);
    // Ingest batches drawn from the same distribution (and schema) as the base.
    let batches: Vec<ph_types::Dataset> =
        (0..16).map(|k| data.sample(BATCH_ROWS, 0xFEED + k)).collect();

    let session = Session::with_config(PairwiseHistConfig { ns: ROWS, ..Default::default() });
    // Measure steady-state serving under edge-free epoch swaps: the writer's
    // batches stay delta-resident for the whole run (readers fan out over the
    // base segment + the delta — the segmented serving shape — but the segment
    // count stays fixed). With the default policies the writer would seal
    // every ~50 batches, and the numbers would mix seal cost and the growing
    // per-query segment fan-out into "reader scaling"; seal latency and
    // segment-count effects are measured by `ingest_latency` instead, and
    // seal-under-reads correctness by the tests.
    session.set_max_staleness(f64::INFINITY);
    session.set_seal_threshold(usize::MAX);
    session.register(data).expect("register Power");
    // Warm the plan cache so the measurement is the serving hot path.
    for sql in QUERIES {
        session.sql(sql).expect("warmup");
    }

    let baseline = run_point(&session, 1, &batches, false);
    eprintln!("readers=1 (no writer)   {baseline:10.0} q/s");
    let mut points: Vec<(usize, f64)> = Vec::new();
    for readers in [1usize, 2, 4, 8] {
        let qps = run_point(&session, readers, &batches, true);
        eprintln!("readers={readers} (with writer) {qps:10.0} q/s");
        points.push((readers, qps));
    }
    let scaling = points[2].1 / points[0].1;
    eprintln!("scaling 1->4 readers: {scaling:.2}x on {cores} hardware thread(s)");

    // Append (or replace) the concurrent_throughput section of the artifact.
    // The section is always last, so replacing = truncating at the key (and any
    // comma before it — absent when this bin created the file itself).
    let mut base = std::fs::read_to_string(&out_path).unwrap_or_else(|_| String::from("{"));
    if let Some(pos) = base.find("  \"concurrent_throughput\"") {
        let head = base[..pos].trim_end();
        let head_len = head.strip_suffix(',').map_or(head.len(), str::len);
        base.truncate(head_len);
    } else {
        while base.ends_with(['\n', ' ']) {
            base.pop();
        }
        if base.ends_with('}') && base.len() > 1 {
            base.pop();
        }
        while base.ends_with(['\n', ' ']) {
            base.pop();
        }
    }
    let lead = if base.trim_end().ends_with('{') { "\n" } else { ",\n" };
    let mut json = String::new();
    json.push_str(&format!("{lead}  \"concurrent_throughput\": {{\n"));
    json.push_str(&format!("    \"rows\": {ROWS},\n"));
    json.push_str(&format!("    \"available_parallelism\": {cores},\n"));
    json.push_str(&format!("    \"single_reader_no_writer_qps\": {baseline:.0},\n"));
    json.push_str("    \"with_background_writer\": [\n");
    for (i, (readers, qps)) in points.iter().enumerate() {
        let comma = if i + 1 < points.len() { "," } else { "" };
        json.push_str(&format!("      {{ \"readers\": {readers}, \"qps\": {qps:.0} }}{comma}\n"));
    }
    json.push_str("    ],\n");
    json.push_str(&format!("    \"scaling_1_to_4\": {scaling:.2}\n"));
    json.push_str("  }\n}\n");
    std::fs::write(&out_path, base + &json).expect("write summary");
    eprintln!("appended concurrent_throughput to {out_path}");
}
