//! Fig 10 reproduction: (a-c) CDFs of relative query error over the
//! DBEst-supported, DeepDB-supported and full query subsets; (d) the
//! real-vs-IDEBench comparison showing DeepDB-style engines flattering themselves
//! on Gaussian-synthesised data while PairwiseHist stays consistent.
//!
//! ```text
//! cargo run -p ph-bench --release --bin fig10 [-- --rows 1000000]
//! ```

use ph_baselines::{KdeAqp, KdeConfig, SpnAqp, SpnConfig};
use ph_bench::{
    build_pipeline, ground_truths, kde_templates, median, percentile, relative_error,
    run_baseline, run_pairwisehist, scaled_dataset, Args, QueryOutcome, Table,
};
use ph_core::PairwiseHistConfig;
use ph_sql::Query;
use ph_types::Dataset;
use ph_workload::{generate as gen_workload, WorkloadConfig};

/// Collects relative errors for the subset of queries `mask` marks supported.
fn errors_for(
    outcomes: &[QueryOutcome],
    truths: &[Option<f64>],
    mask: &[bool],
) -> Vec<f64> {
    outcomes
        .iter()
        .zip(truths.iter().zip(mask))
        .filter(|(o, (_, &m))| m && o.supported)
        .filter_map(|(o, (t, _))| relative_error(o.estimate, *t))
        .collect()
}

fn print_cdf(label: &str, series: &[(&str, &[f64])]) {
    println!("{label}");
    let mut table = Table::new(
        &std::iter::once("percentile")
            .chain(series.iter().map(|(n, _)| *n))
            .collect::<Vec<_>>(),
    );
    for p in [0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99] {
        let mut row = vec![format!("p{:02.0}", p * 100.0)];
        for (_, errs) in series {
            row.push(match percentile(errs, p) {
                Some(e) => format!("{:.3}%", e * 100.0),
                None => "-".into(),
            });
        }
        table.row(row);
    }
    // The paper's headline: share of queries under 10% error.
    let mut row = vec!["<10% err".to_string()];
    for (_, errs) in series {
        if errs.is_empty() {
            row.push("-".into());
        } else {
            let share = errs.iter().filter(|&&e| e < 0.1).count() as f64 / errs.len() as f64;
            row.push(format!("{:.1}%", share * 100.0));
        }
    }
    table.row(row);
    table.print();
    println!();
}

fn main() {
    let args = Args::capture();
    let rows: usize = args.get("rows", 1_000_000);
    let seed_rows: usize = args.get("seed-rows", 200_000);
    let n_queries: usize = args.get("queries", 400);
    let seed: u64 = args.get("seed", 11);

    println!("== Fig 10: error CDFs and real-vs-IDEBench ==\n");

    // Pool queries and outcomes over both scaled datasets, like the paper.
    let mut all_ph_100k = Vec::new();
    let mut all_ph_1m = Vec::new();
    let mut all_spn = Vec::new();
    let mut all_kde = Vec::new();
    let mut all_truths = Vec::new();
    let mut all_queries: Vec<Query> = Vec::new();
    let mut spn_supported_mask = Vec::new();
    let mut kde_supported_mask = Vec::new();

    for name in ["Power", "Flights"] {
        let data = scaled_dataset(name, seed_rows, rows, seed);
        let queries =
            gen_workload(&data, &WorkloadConfig::scaled(n_queries / 2, seed ^ 0xF10));
        let truths = ground_truths(&data, &queries);

        let built_1m = build_pipeline(
            &data,
            &PairwiseHistConfig { ns: 1_000_000.min(rows), seed, ..Default::default() },
        );
        let built_100k = build_pipeline(
            &data,
            &PairwiseHistConfig { ns: 100_000.min(rows), seed, ..Default::default() },
        );
        let spn = SpnAqp::build(
            &data,
            &SpnConfig { sample_n: 1_000_000.min(rows), seed, ..Default::default() },
        );
        let templates = kde_templates(&queries);
        let kde = KdeAqp::build(
            &data,
            &KdeConfig {
                sample_n: 100_000.min(rows), seed, templates: templates.clone(),
                ..Default::default()
            },
        );

        let spn_out = run_baseline(&spn, &queries);
        let kde_out = run_baseline(&kde, &queries);
        spn_supported_mask.extend(spn_out.iter().map(|o| o.supported));
        kde_supported_mask.extend(kde_out.iter().map(|o| o.supported));
        all_ph_1m.extend(run_pairwisehist(&built_1m.ph, &queries));
        all_ph_100k.extend(run_pairwisehist(&built_100k.ph, &queries));
        all_spn.extend(spn_out);
        all_kde.extend(kde_out);
        all_truths.extend(truths);
        all_queries.extend(queries);
    }
    let all_mask = vec![true; all_truths.len()];

    // (a) DBEst-supported subset.
    let subset = &kde_supported_mask;
    print_cdf(
        &format!("(a) DBEst++-supported subset (n = {})", subset.iter().filter(|&&m| m).count()),
        &[
            ("PH 1m", &errors_for(&all_ph_1m, &all_truths, subset)),
            ("PH 100k", &errors_for(&all_ph_100k, &all_truths, subset)),
            ("DBEst 100k", &errors_for(&all_kde, &all_truths, subset)),
        ],
    );
    // (b) DeepDB-supported subset.
    let subset = &spn_supported_mask;
    print_cdf(
        &format!("(b) DeepDB-supported subset (n = {})", subset.iter().filter(|&&m| m).count()),
        &[
            ("PH 1m", &errors_for(&all_ph_1m, &all_truths, subset)),
            ("PH 100k", &errors_for(&all_ph_100k, &all_truths, subset)),
            ("DeepDB 1m", &errors_for(&all_spn, &all_truths, subset)),
        ],
    );
    // (c) all queries.
    print_cdf(
        &format!("(c) all queries (n = {})", all_queries.len()),
        &[
            ("PH 1m", &errors_for(&all_ph_1m, &all_truths, &all_mask)),
            ("PH 100k", &errors_for(&all_ph_100k, &all_truths, &all_mask)),
        ],
    );

    // (d) real vs IDEBench at equal size.
    println!("(d) Real-analogue vs IDEBench-synthesised data (median error)");
    let mut table = Table::new(&["dataset", "PH real", "PH IDEBench", "DeepDB real", "DeepDB IDEBench"]);
    for name in ["Power", "Flights"] {
        let real = ph_datagen::generate(name, seed_rows, seed).expect("dataset");
        let synth = ph_datagen::scale_up(&real, seed_rows, seed ^ 0xD);
        let run = |data: &Dataset| -> (f64, f64) {
            let queries =
                gen_workload(data, &WorkloadConfig::scaled(n_queries / 4, seed ^ 0xF1D));
            let truths = ground_truths(data, &queries);
            let built = build_pipeline(
                data,
                &PairwiseHistConfig { ns: data.n_rows(), seed, ..Default::default() },
            );
            let spn = SpnAqp::build(
                data,
                &SpnConfig { sample_n: data.n_rows(), seed, ..Default::default() },
            );
            let ph_errs: Vec<f64> = run_pairwisehist(&built.ph, &queries)
                .iter()
                .zip(&truths)
                .filter(|(o, _)| o.supported)
                .filter_map(|(o, t)| relative_error(o.estimate, *t))
                .collect();
            let spn_errs: Vec<f64> = run_baseline(&spn, &queries)
                .iter()
                .zip(&truths)
                .filter(|(o, _)| o.supported)
                .filter_map(|(o, t)| relative_error(o.estimate, *t))
                .collect();
            (median(&ph_errs).unwrap_or(f64::NAN), median(&spn_errs).unwrap_or(f64::NAN))
        };
        let (ph_real, spn_real) = run(&real);
        let (ph_syn, spn_syn) = run(&synth);
        table.row(vec![
            name.to_string(),
            format!("{:.2}%", ph_real * 100.0),
            format!("{:.2}%", ph_syn * 100.0),
            format!("{:.2}%", spn_real * 100.0),
            format!("{:.2}%", spn_syn * 100.0),
        ]);
    }
    table.print();
    println!();
    println!(
        "Paper reference: 85.1% of PH queries under 10% error; DeepDB up to 31x worse on \
         real data than on IDEBench-generated data, while PH stays consistent."
    );
}
