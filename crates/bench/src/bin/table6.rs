//! Table 6 reproduction: bounds accuracy rate and relative width for PairwiseHist
//! and the DeepDB-like SPN, on original-size and scaled-up Power and Flights, over
//! the DeepDB-supported query subset (DBEst++ provides no bounds).
//!
//! ```text
//! cargo run -p ph-bench --release --bin table6 [-- --rows 1000000]
//! ```

use ph_baselines::{SpnAqp, SpnConfig};
use ph_bench::{
    bounds_stats, build_pipeline, ground_truths, run_baseline, run_pairwisehist,
    scaled_dataset, Args, Table,
};
use ph_core::PairwiseHistConfig;
use ph_workload::{generate as gen_workload, WorkloadConfig};

fn main() {
    let args = Args::capture();
    let rows: usize = args.get("rows", 1_000_000);
    let seed_rows: usize = args.get("seed-rows", 200_000);
    let n_queries: usize = args.get("queries", 200);
    let seed: u64 = args.get("seed", 12);

    println!("== Table 6: bounds accuracy rate and width ==\n");
    let mut table = Table::new(&[
        "dataset", "PH correct", "DeepDB correct", "PH width", "DeepDB width", "n",
    ]);

    let variants: [(&str, usize); 4] = [
        ("Power (original)", seed_rows),
        ("Power (scaled)", rows),
        ("Flights (original)", seed_rows),
        ("Flights (scaled)", rows),
    ];
    for (label, target_rows) in variants {
        let name = if label.starts_with("Power") { "Power" } else { "Flights" };
        let data = scaled_dataset(name, seed_rows, target_rows, seed);
        let queries = gen_workload(&data, &WorkloadConfig::scaled(n_queries, seed ^ 0x7a6));
        let truths = ground_truths(&data, &queries);

        let built = build_pipeline(
            &data,
            &PairwiseHistConfig { ns: 1_000_000.min(target_rows), seed, ..Default::default() },
        );
        let spn = SpnAqp::build(
            &data,
            &SpnConfig { sample_n: 1_000_000.min(target_rows), seed, ..Default::default() },
        );
        let spn_out = run_baseline(&spn, &queries);
        let ph_out = run_pairwisehist(&built.ph, &queries);

        // Restrict both engines to the DeepDB-supported subset, as the paper does.
        let mask: Vec<bool> = spn_out.iter().map(|o| o.supported).collect();
        let filter = |out: &[ph_bench::QueryOutcome]| -> Vec<ph_bench::QueryOutcome> {
            out.iter().zip(&mask).filter(|(_, &m)| m).map(|(o, _)| *o).collect()
        };
        let truths_f: Vec<Option<f64>> = truths
            .iter()
            .zip(&mask)
            .filter(|(_, &m)| m)
            .map(|(t, _)| *t)
            .collect();
        let ph_b = bounds_stats(&filter(&ph_out), &truths_f);
        let spn_b = bounds_stats(&filter(&spn_out), &truths_f);
        table.row(vec![
            label.to_string(),
            format!("{:.1}%", ph_b.correct_rate * 100.0),
            format!("{:.1}%", spn_b.correct_rate * 100.0),
            format!("{:.1}%", ph_b.median_width * 100.0),
            format!("{:.1}%", spn_b.median_width * 100.0),
            ph_b.n.to_string(),
        ]);
    }
    table.print();
    println!();
    println!(
        "Paper reference: PH correct rate 70-80% vs DeepDB 40-76%; DeepDB's bounds are \
         narrower (0.6-3.0%) but wrong far more often — overly optimistic."
    );
}
