//! Fig 11 reproduction: storage and runtime comparison on the scaled-up datasets —
//! (a) synopsis size, (b) total storage with and without GD compression,
//! (c) median query latency, (d) construction time.
//!
//! ```text
//! cargo run -p ph-bench --release --bin fig11 [-- --rows 1000000]
//! ```

use std::time::Instant;

use ph_baselines::{AqpBaseline, KdeAqp, KdeConfig, SpnAqp, SpnConfig};
use ph_bench::{
    build_pipeline, error_stats, fmt_bytes, fmt_duration, ground_truths, kde_templates,
    run_baseline, run_pairwisehist, scaled_dataset, Args, Table,
};
use ph_core::PairwiseHistConfig;
use ph_workload::{generate as gen_workload, WorkloadConfig};

fn main() {
    let args = Args::capture();
    let rows: usize = args.get("rows", 1_000_000);
    let seed_rows: usize = args.get("seed-rows", 200_000);
    let n_queries: usize = args.get("queries", 200);
    let seed: u64 = args.get("seed", 13);

    println!("== Fig 11: storage and runtime on the scaled-up datasets ==");
    println!("   rows: {rows} (paper: 10^9, 40/130 GB)\n");

    let mut size_t = Table::new(&["dataset", "PH 1m", "PH 100k", "DeepDB 1m", "DeepDB 100k", "DBEst 100k", "DBEst 10k"]);
    let mut storage_t = Table::new(&["dataset", "raw", "GD compressed", "GD+synopsis", "reduction"]);
    let mut latency_t = Table::new(&["dataset", "PH", "DeepDB", "DBEst++"]);
    let mut build_t = Table::new(&["dataset", "GD compress", "PH 1m", "PH 100k", "DeepDB 1m", "DBEst 100k"]);

    for name in ["Power", "Flights"] {
        let data = scaled_dataset(name, seed_rows, rows, seed);
        let queries = gen_workload(&data, &WorkloadConfig::scaled(n_queries, seed ^ 0xF11));
        let truths = ground_truths(&data, &queries);

        // PairwiseHist at both sample sizes (GD pipeline, timed).
        let built_1m = build_pipeline(
            &data,
            &PairwiseHistConfig { ns: 1_000_000.min(rows), seed, ..Default::default() },
        );
        let t0 = Instant::now();
        let ph_100k = ph_core::PairwiseHist::build_from_gd(
            &built_1m.store,
            built_1m.pre.clone(),
            &PairwiseHistConfig { ns: 100_000.min(rows), seed, ..Default::default() },
        );
        let ph_100k_secs = t0.elapsed().as_secs_f64();

        // Baselines (timed builds).
        let t0 = Instant::now();
        let spn_1m = SpnAqp::build(
            &data,
            &SpnConfig { sample_n: 1_000_000.min(rows), seed, ..Default::default() },
        );
        let spn_secs = t0.elapsed().as_secs_f64();
        let spn_100k = SpnAqp::build(
            &data,
            &SpnConfig { sample_n: 100_000.min(rows), seed, ..Default::default() },
        );
        let templates = kde_templates(&queries);
        let t0 = Instant::now();
        let kde_100k = KdeAqp::build(
            &data,
            &KdeConfig {
                sample_n: 100_000.min(rows), seed, templates: templates.clone(),
                ..Default::default()
            },
        );
        let kde_secs = t0.elapsed().as_secs_f64();
        let kde_10k = KdeAqp::build(
            &data,
            &KdeConfig {
                sample_n: 10_000.min(rows), seed, templates: templates.clone(),
                ..Default::default()
            },
        );

        // (a) synopsis sizes.
        size_t.row(vec![
            name.to_string(),
            fmt_bytes(built_1m.ph.synopsis_size().total),
            fmt_bytes(ph_100k.synopsis_size().total),
            fmt_bytes(spn_1m.size_bytes()),
            fmt_bytes(spn_100k.size_bytes()),
            fmt_bytes(kde_100k.size_bytes()),
            fmt_bytes(kde_10k.size_bytes()),
        ]);

        // (b) total storage: raw in-memory vs GD store + synopsis.
        let raw = data.heap_size();
        let gd = built_1m.store.stats().compressed_bytes as usize
            + built_1m.pre.metadata_bytes();
        let total = gd + built_1m.ph.synopsis_size().total;
        storage_t.row(vec![
            name.to_string(),
            fmt_bytes(raw),
            fmt_bytes(gd),
            fmt_bytes(total),
            format!("{:.1}x", raw as f64 / total as f64),
        ]);

        // (c) latency.
        let ph_stats = error_stats(&run_pairwisehist(&built_1m.ph, &queries), &truths);
        let spn_stats = error_stats(&run_baseline(&spn_1m, &queries), &truths);
        let kde_stats = error_stats(&run_baseline(&kde_100k, &queries), &truths);
        latency_t.row(vec![
            name.to_string(),
            format!("{:.3} ms", ph_stats.median_latency * 1e3),
            format!("{:.3} ms", spn_stats.median_latency * 1e3),
            format!("{:.3} ms", kde_stats.median_latency * 1e3),
        ]);

        // (d) construction time.
        build_t.row(vec![
            name.to_string(),
            fmt_duration(built_1m.gd_secs),
            fmt_duration(built_1m.ph_secs),
            fmt_duration(ph_100k_secs),
            fmt_duration(spn_secs),
            fmt_duration(kde_secs),
        ]);
    }

    println!("(a) Synopsis size");
    size_t.print();
    println!("\n(b) Total storage requirements");
    storage_t.print();
    println!("\n(c) Median query latency");
    latency_t.print();
    println!("\n(d) Construction time");
    build_t.print();
    println!();
    println!(
        "Paper reference: PH synopses >= 11x smaller (0.25 MB vs 2.75 MB Power@1m); total \
         storage reduced 3.2-4.3x via compression; PH latency 0.94 ms median (3.5x faster \
         than DeepDB, 15x than DBEst++, >300000x than exact SQLite); construction 1.2-4x \
         faster than DeepDB, DBEst++ two orders of magnitude slower."
    );
}
