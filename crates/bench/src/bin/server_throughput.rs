//! Served-query throughput: the full network path (HTTP parse → plan cache →
//! segmented execution → JSON) measured with the closed-loop load generator.
//! Results are **appended** to `BENCH_query_latency.json` under
//! `"server_throughput"`, next to the in-process `concurrent_throughput`
//! section — the gap between the two *is* the serving overhead (socket +
//! HTTP + JSON per query).
//!
//! Three families of points:
//!
//! * **active closed loops** at 1/4/8 connections — the classic sustainable
//!   throughput curve;
//! * **pipelined** — one connection, 8-deep batches, measuring what
//!   request pipelining recovers of the per-round-trip overhead;
//! * **held keep-alive population** — 8 active loops while 16/256/1024 idle
//!   keep-alive connections are *held open* on the same server (the
//!   `connections` figure counts both). The event-loop claim under test:
//!   holding a thousand silent sockets costs a slab slot each, not a thread
//!   each, so q/s and tail latency must not collapse as the population grows.
//!
//! The server runs in-process on an ephemeral loopback port with a connection
//! cap raised above the largest population. As with the in-process bench,
//! scaling across connection counts is bounded by the machine
//! (`available_parallelism` is recorded next to the numbers).
//!
//! Usage: `cargo run --release -p ph-bench --bin server_throughput [out_path]`
//!
//! With `PH_BENCH_SMOKE=1` the table shrinks and the measurement windows drop
//! to ~200 ms per point, so CI can exercise the whole path on every push.

use std::sync::Arc;
use std::time::Duration;

use ph_bench::power_with_day;
use ph_core::{PairwiseHistConfig, Session};
use ph_server::{run_load, LoadProfile, LoadReport, Server, ServerConfig};

const QUERIES: [&str; 8] = [
    "SELECT COUNT(global_active_power) FROM Power WHERE voltage > 238;",
    "SELECT SUM(global_active_power) FROM Power WHERE voltage > 238;",
    "SELECT AVG(global_active_power) FROM Power WHERE voltage > 238;",
    "SELECT MIN(global_active_power) FROM Power WHERE voltage > 238;",
    "SELECT MAX(global_active_power) FROM Power WHERE voltage > 238;",
    "SELECT MEDIAN(global_active_power) FROM Power WHERE voltage > 238;",
    "SELECT VAR(global_active_power) FROM Power WHERE voltage > 238;",
    "SELECT AVG(global_active_power) FROM Power WHERE voltage > 236 AND \
     global_intensity < 30 AND sub_metering_3 >= 1 OR weekday = 6;",
];

fn main() {
    let out_path = std::env::args().nth(1).unwrap_or_else(|| "BENCH_query_latency.json".into());
    let smoke = std::env::var("PH_BENCH_SMOKE").is_ok();
    let (rows, measure) =
        if smoke { (20_000, Duration::from_millis(200)) } else { (100_000, Duration::from_millis(800)) };
    let cores = std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1);
    // Largest held population: full scale proves the 1000+ datapoint, smoke
    // keeps CI runs to a couple hundred sockets.
    let populations: &[usize] = if smoke { &[16, 256] } else { &[16, 256, 1024] };

    let session = Arc::new(Session::with_config(PairwiseHistConfig {
        ns: rows,
        ..Default::default()
    }));
    session.register(power_with_day(rows)).expect("register Power");
    // Size the executor to the machine: workers beyond the core count only
    // add handoff, and on a single core the cross-thread handoff itself is
    // the bottleneck — there, inline mode (`workers: 0`, the loop executes
    // with a per-drain shared snapshot) is the fastest shape.
    let workers = if cores > 1 { cores.clamp(1, 8) } else { 0 };
    let server = Server::bind(
        session.clone(),
        "127.0.0.1:0",
        ServerConfig {
            workers,
            queue_depth: 256,
            max_connections: 2_048,
            ..Default::default()
        },
    )
    .expect("bind ephemeral port");
    let addr = server.local_addr().to_string();
    let queries: Vec<String> = QUERIES.iter().map(|q| q.to_string()).collect();

    let run = |profile: &LoadProfile| -> LoadReport {
        let report = run_load(&addr, profile, measure, &queries);
        eprintln!(
            "active={} held={} pipeline={}  {:.0} q/s  p50 {:.0} µs  p99 {:.0} µs  ({} errors)",
            report.connections,
            report.held_idle,
            report.pipeline_depth,
            report.qps,
            report.p50_us,
            report.p99_us,
            report.errors
        );
        assert_eq!(report.errors, 0, "bench queries must all serve");
        report
    };

    // Warm the plan cache (and the connection path) before measuring.
    let warm = run_load(
        &addr,
        &LoadProfile { active: 1, held_idle: 0, pipeline_depth: 1 },
        Duration::from_millis(100),
        &queries,
    );
    assert_eq!(warm.errors, 0, "warmup must serve cleanly");

    let mut points: Vec<LoadReport> = Vec::new();
    for active in [1usize, 4, 8] {
        points.push(run(&LoadProfile { active, held_idle: 0, pipeline_depth: 1 }));
    }
    // Pipelining: one connection, 8 requests per round trip.
    points.push(run(&LoadProfile { active: 1, held_idle: 0, pipeline_depth: 8 }));
    // Held keep-alive populations under steady active load.
    for &held_idle in populations {
        let report = run(&LoadProfile { active: 8, held_idle, pipeline_depth: 1 });
        assert_eq!(
            report.held_idle, held_idle,
            "the whole idle population must survive the run"
        );
        points.push(report);
    }
    let rejected = server.rejected();
    server.shutdown();

    // Append (or replace) the server_throughput section, same splice protocol
    // as the `throughput` bin: the section is truncated if present, then
    // re-appended at the tail.
    let mut base = std::fs::read_to_string(&out_path).unwrap_or_else(|_| String::from("{"));
    if let Some(pos) = base.find("  \"server_throughput\"") {
        let head = base[..pos].trim_end();
        let head_len = head.strip_suffix(',').map_or(head.len(), str::len);
        base.truncate(head_len);
    } else {
        while base.ends_with(['\n', ' ']) {
            base.pop();
        }
        if base.ends_with('}') && base.len() > 1 {
            base.pop();
        }
        while base.ends_with(['\n', ' ']) {
            base.pop();
        }
    }
    let lead = if base.trim_end().ends_with('{') { "\n" } else { ",\n" };
    let mut json = String::new();
    json.push_str(&format!("{lead}  \"server_throughput\": {{\n"));
    json.push_str(&format!("    \"rows\": {rows},\n"));
    json.push_str(&format!("    \"available_parallelism\": {cores},\n"));
    json.push_str(&format!("    \"smoke\": {smoke},\n"));
    json.push_str(&format!("    \"rejected_503\": {rejected},\n"));
    json.push_str("    \"points\": [\n");
    for (i, p) in points.iter().enumerate() {
        let comma = if i + 1 < points.len() { "," } else { "" };
        json.push_str(&format!(
            "      {{ \"connections\": {}, \"active\": {}, \"held_idle\": {}, \
             \"pipeline\": {}, \"qps\": {:.0}, \"p50_us\": {:.1}, \"p99_us\": {:.1} }}{comma}\n",
            p.connections + p.held_idle,
            p.connections,
            p.held_idle,
            p.pipeline_depth,
            p.qps,
            p.p50_us,
            p.p99_us
        ));
    }
    json.push_str("    ]\n");
    json.push_str("  }\n}\n");
    std::fs::write(&out_path, base + &json).expect("write summary");
    eprintln!("appended server_throughput to {out_path}");
}
