//! Replays a `PHQL1` query log (written by `ph_server` / `ph-serve --qlog`)
//! against a catalog, reporting replay throughput and how the answers compare
//! to the logged serving run.
//!
//! ```text
//! cargo run --release -p ph-bench --bin logreplay -- LOG [--data-dir DIR] [--demo ROWS]
//! ```
//!
//! The catalog is reopened from `--data-dir` (a `Session::save_dir`
//! directory); without one, the `ph-serve` demo table (`Power`, `--demo ROWS`
//! rows, default 50 000) is rebuilt, so a log captured against the demo server
//! replays out of the box. Only records served 200 are replayed; each must
//! parse and execute again (the log is a regression corpus, not just a trace),
//! and per-status counts plus replay qps are printed.

use std::process::exit;
use std::time::Instant;

use ph_core::Session;
use ph_server::read_query_log;

fn usage() -> ! {
    eprintln!("usage: logreplay LOG [--data-dir DIR] [--demo ROWS]");
    exit(2);
}

fn main() {
    let mut log_path: Option<String> = None;
    let mut data_dir: Option<String> = None;
    let mut demo_rows = 50_000usize;
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--data-dir" => data_dir = Some(it.next().unwrap_or_else(|| usage())),
            "--demo" => {
                demo_rows = it.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| usage())
            }
            "--help" | "-h" => usage(),
            other if log_path.is_none() && !other.starts_with("--") => {
                log_path = Some(other.to_string())
            }
            _ => usage(),
        }
    }
    let Some(log_path) = log_path else { usage() };

    let records = match read_query_log(&log_path) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("cannot read {log_path}: {e}");
            exit(1);
        }
    };
    let session = match &data_dir {
        Some(dir) => match Session::open_dir(dir) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("cannot open {dir}: {e}");
                exit(1);
            }
        },
        None => {
            let s = Session::new();
            let data = ph_datagen::generate("Power", demo_rows, 7).expect("demo dataset");
            s.register(data).expect("demo table registers");
            s
        }
    };

    let total = records.len();
    let served_ok: Vec<_> = records.iter().filter(|r| r.status == 200).collect();
    let logged_err = total - served_ok.len();
    let mut replay_ok = 0usize;
    let mut replay_err = 0usize;
    let t0 = Instant::now();
    for rec in &served_ok {
        match session.sql(&rec.sql) {
            Ok(_) => replay_ok += 1,
            Err(e) => {
                replay_err += 1;
                eprintln!("logged-200 query no longer serves: {} ({e})", rec.sql);
            }
        }
    }
    let secs = t0.elapsed().as_secs_f64();
    let logged_latency_us: u64 = served_ok.iter().map(|r| r.latency_micros).sum();
    println!(
        "log: {total} records ({} served 200, {logged_err} logged errors); replayed {replay_ok} ok, \
         {replay_err} failing, {:.0} q/s (serving run averaged {:.0} µs/query)",
        served_ok.len(),
        replay_ok as f64 / secs.max(1e-9),
        logged_latency_us as f64 / served_ok.len().max(1) as f64,
    );
    if replay_err > 0 {
        exit(1);
    }
}
