//! Table 5 reproduction: median relative error by aggregation function on the
//! scaled-up Power and Flights datasets, for PairwiseHist (1m samples), the
//! DeepDB-like SPN (1m) and the DBEst-like KDE engine (100k — the paper used a
//! smaller sample for DBEst++ because of its prohibitive training time).
//!
//! ```text
//! cargo run -p ph-bench --release --bin table5 [-- --rows 1000000]
//! ```

use ph_baselines::{KdeAqp, KdeConfig, SpnAqp, SpnConfig};
use ph_bench::{
    build_pipeline, ground_truths, kde_templates, median, relative_error, run_baseline,
    run_pairwisehist, scaled_dataset, Args, QueryOutcome, Table,
};
use ph_core::PairwiseHistConfig;
use ph_sql::{AggFunc, Query};
use ph_workload::{generate as gen_workload, WorkloadConfig};

fn per_agg_errors(
    queries: &[Query],
    outcomes: &[QueryOutcome],
    truths: &[Option<f64>],
    agg: AggFunc,
) -> Option<f64> {
    let errs: Vec<f64> = queries
        .iter()
        .zip(outcomes.iter().zip(truths))
        .filter(|(q, (o, _))| q.agg == agg && o.supported)
        .filter_map(|(_, (o, t))| relative_error(o.estimate, *t))
        .collect();
    median(&errs)
}

fn fmt(e: Option<f64>) -> String {
    match e {
        Some(v) => format!("{:.2}%", v * 100.0),
        None => "-".to_string(),
    }
}

fn main() {
    let args = Args::capture();
    let rows: usize = args.get("rows", 1_000_000);
    let seed_rows: usize = args.get("seed-rows", 200_000);
    let seed: u64 = args.get("seed", 10);

    println!("== Table 5: median relative error by aggregation (scaled-up data) ==");
    println!("   rows: {rows} (paper: 10^9)\n");

    for (name, n_queries) in [("Power", 445usize), ("Flights", 427)] {
        let n_queries = args.get("queries", n_queries);
        let data = scaled_dataset(name, seed_rows, rows, seed);
        let queries = gen_workload(&data, &WorkloadConfig::scaled(n_queries, seed ^ 0x7ab));
        let truths = ground_truths(&data, &queries);

        let ph_cfg = PairwiseHistConfig { ns: 1_000_000.min(rows), seed, ..Default::default() };
        let built = build_pipeline(&data, &ph_cfg);
        let ph_out = run_pairwisehist(&built.ph, &queries);

        let spn = SpnAqp::build(
            &data,
            &SpnConfig { sample_n: 1_000_000.min(rows), seed, ..Default::default() },
        );
        let spn_out = run_baseline(&spn, &queries);

        let templates = kde_templates(&queries);
        let kde = KdeAqp::build(
            &data,
            &KdeConfig {
                sample_n: 100_000.min(rows), seed, templates: templates.clone(),
                ..Default::default()
            },
        );
        let kde_out = run_baseline(&kde, &queries);

        println!("{name} dataset ({} queries)", queries.len());
        let mut table = Table::new(&["Aggregation", "PH", "DeepDB", "DBEst++"]);
        for agg in AggFunc::ALL {
            table.row(vec![
                agg.name().to_string(),
                fmt(per_agg_errors(&queries, &ph_out, &truths, agg)),
                fmt(per_agg_errors(&queries, &spn_out, &truths, agg)),
                fmt(per_agg_errors(&queries, &kde_out, &truths, agg)),
            ]);
        }
        let overall = |out: &[QueryOutcome]| -> Option<f64> {
            let errs: Vec<f64> = out
                .iter()
                .zip(&truths)
                .filter(|(o, _)| o.supported)
                .filter_map(|(o, t)| relative_error(o.estimate, *t))
                .collect();
            median(&errs)
        };
        table.row(vec![
            "Overall".to_string(),
            fmt(overall(&ph_out)),
            fmt(overall(&spn_out)),
            fmt(overall(&kde_out)),
        ]);
        table.print();
        let supported = |out: &[QueryOutcome]| out.iter().filter(|o| o.supported).count();
        println!(
            "  supported queries: PH {}/{}  DeepDB {}/{}  DBEst++ {}/{}\n",
            supported(&ph_out),
            queries.len(),
            supported(&spn_out),
            queries.len(),
            supported(&kde_out),
            queries.len(),
        );
    }
    println!(
        "Paper reference: PH overall 0.20% (Power) / 0.43% (Flights) vs DeepDB 0.45%/0.64% \
         and DBEst++ 56.46%/28.42%; DeepDB answers only COUNT/SUM/AVG, DBEst++ adds a \
         near-100%-error VAR."
    );
}
