//! Fig 8 reproduction: median query error and synopsis size across the 11
//! evaluation datasets, for PairwiseHist, the DeepDB-like SPN and the DBEst-like
//! KDE engine at 100k and 10k construction samples.
//!
//! Workload per dataset: 100 single-predicate COUNT/SUM/AVG queries with minimum
//! selectivity 10⁻⁵ (§6.1).
//!
//! ```text
//! cargo run -p ph-bench --release --bin fig8 [-- --rows 200000 --queries 100]
//! ```

use ph_baselines::{AqpBaseline, KdeAqp, KdeConfig, SpnAqp, SpnConfig};
use ph_bench::{
    build_pipeline, error_stats, fmt_bytes, ground_truths, kde_templates, run_baseline,
    run_pairwisehist, Args, Table,
};
use ph_core::PairwiseHistConfig;
use ph_workload::{generate as gen_workload, WorkloadConfig};

fn main() {
    let args = Args::capture();
    let rows: usize = args.get("rows", 200_000);
    let n_queries: usize = args.get("queries", 100);
    let seed: u64 = args.get("seed", 8);

    println!("== Fig 8: initial experiments across 11 datasets ==");
    println!("   rows per dataset: {rows} (paper: full Table 4 sizes)");
    println!();

    let mut err_table = Table::new(&[
        "dataset", "PH 100k", "PH 10k", "DeepDB 100k", "DeepDB 10k", "DBEst 100k", "DBEst 10k",
    ]);
    let mut size_table = Table::new(&[
        "dataset", "PH 100k", "PH 10k", "DeepDB 100k", "DeepDB 10k", "DBEst 100k", "DBEst 10k",
    ]);

    for spec in ph_datagen::all_specs() {
        let n = rows.min(spec.paper_rows);
        let data = ph_datagen::generate(spec.name, n, seed).expect("dataset");
        let queries = gen_workload(
            &data,
            &WorkloadConfig { n_queries, ..WorkloadConfig::initial(seed ^ 0xF18) },
        );
        let truths = ground_truths(&data, &queries);

        let mut errs = vec![spec.name.to_string()];
        let mut sizes = vec![spec.name.to_string()];
        for ns in [100_000usize, 10_000] {
            let cfg = PairwiseHistConfig { ns, seed, ..Default::default() };
            let built = build_pipeline(&data, &cfg);
            let outcomes = run_pairwisehist(&built.ph, &queries);
            let stats = error_stats(&outcomes, &truths);
            errs.push(format!("{:.2}%", stats.median_error * 100.0));
            sizes.push(fmt_bytes(built.ph.synopsis_size().total));
        }
        for ns in [100_000usize, 10_000] {
            let spn = SpnAqp::build(&data, &SpnConfig { sample_n: ns, seed, ..Default::default() });
            let outcomes = run_baseline(&spn, &queries);
            let stats = error_stats(&outcomes, &truths);
            errs.push(format!("{:.2}%", stats.median_error * 100.0));
            sizes.push(fmt_bytes(spn.size_bytes()));
        }
        let templates = kde_templates(&queries);
        for ns in [100_000usize, 10_000] {
            let kde = KdeAqp::build(
                &data,
                &KdeConfig {
                    sample_n: ns, seed, templates: templates.clone(),
                    ..Default::default()
                },
            );
            let outcomes = run_baseline(&kde, &queries);
            let stats = error_stats(&outcomes, &truths);
            errs.push(format!("{:.2}%", stats.median_error * 100.0));
            sizes.push(fmt_bytes(kde.size_bytes()));
        }
        err_table.row(errs);
        size_table.row(sizes);
    }

    println!("(a) Median relative error");
    err_table.print();
    println!();
    println!("(b) Synopsis size");
    size_table.print();
    println!();
    println!(
        "Paper reference: PairwiseHist lowest error on 10/11 datasets; overall medians \
         0.28% (PH) vs 0.73% (DeepDB) vs 28.9% (DBEst++); PH synopses 1-2 orders of \
         magnitude smaller (0.48 MB vs 11.5/36.3 MB mean at 100k)."
    );
}
