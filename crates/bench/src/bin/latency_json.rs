//! Machine-readable query-latency summary: `BENCH_query_latency.json`.
//!
//! Measures the standard Power/100k query set (the Fig 11(c) metric), the
//! factored GROUP BY path against a per-group rescan that emulates unfactored
//! execution (one full scalar query per group — the seed's O(groups × plan)
//! shape), latency scaling in the group count, the `ingest_latency` section —
//! per-batch ingest cost (p50/p99, with the p99 delta against the previous
//! artifact when one exists) on a growing segmented table plus bytes-resident
//! before/after segmentation — and the `codec_compression` section: the
//! per-column codec cascade's compression ratio per codec, next to the
//! GreedyGD store it competes with. Future PRs diff this file's numbers to
//! track the perf trajectory.
//!
//! Usage: `cargo run --release -p ph-bench --bin latency_json [out_path]`
//!
//! With `PH_BENCH_SMOKE=1` only the (shrunk) ingest section runs — the CI
//! build job uses this to keep the section exercised on every push without
//! paying for the full latency sweep; the perf job regenerates the complete
//! artifact.

use std::time::Instant;

use ph_bench::{power_with_day, power_with_groups};
use ph_core::{PairwiseHist, PairwiseHistConfig, Session};
use ph_sql::{parse_query, Query};
use ph_types::Dataset;

/// Median wall-clock microseconds per call over several measured batches.
fn measure_us(mut f: impl FnMut()) -> f64 {
    // Warmup.
    for _ in 0..3 {
        f();
    }
    // Size a batch to ~40ms, then take the median of 5 batch means.
    let t0 = Instant::now();
    f();
    let once = t0.elapsed().as_secs_f64().max(1e-7);
    let per_batch = ((0.04 / once) as usize).clamp(5, 20_000);
    let mut batch_means = Vec::with_capacity(5);
    for _ in 0..5 {
        let t = Instant::now();
        for _ in 0..per_batch {
            f();
        }
        batch_means.push(t.elapsed().as_secs_f64() / per_batch as f64 * 1e6);
    }
    batch_means.sort_by(|a, b| a.total_cmp(b));
    batch_means[2]
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Results of the segmented-ingest benchmark.
struct IngestBench {
    /// Whether each batch was journaled to the ingest WAL before the swap.
    wal: bool,
    base_rows: usize,
    batch_rows: usize,
    batches: usize,
    seal_threshold: usize,
    p50_us: f64,
    p99_us: f64,
    first_half_p50_us: f64,
    second_half_p50_us: f64,
    sealed_segments: usize,
    segments_final: usize,
    raw_retained_rows_bytes: usize,
    synopsis_bytes: usize,
    row_store_bytes: usize,
    delta_bytes: usize,
    resident_bytes: usize,
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    sorted[((sorted.len() as f64 - 1.0) * p).round() as usize]
}

/// Per-batch ingest cost on a growing segmented table, plus bytes-resident
/// before/after segmentation. The table grows several seal-thresholds past its
/// base, so a per-batch cost that scaled with total table size (the old
/// rebuild-on-staleness posture, O(total rows)) would show up as the second
/// half's p50 drifting above the first half's; segmented ingest keeps them
/// level because sealing is O(threshold) and the edge-free path O(batch).
fn bench_ingest(smoke: bool, wal: bool) -> IngestBench {
    let (base_rows, batch_rows, batches, seal_threshold) =
        if smoke { (8_000, 500, 16, 4_000) } else { (50_000, 2_000, 60, 20_000) };
    // One long Power stream, split into the registered base plus a strictly
    // increasing tail of batches: each batch is a *continuation* of the stream
    // (fresh timestamps, same dictionaries), not a bootstrap resample of rows
    // the table already holds — resampling flattered both the codec cascade
    // (duplicate rows re-compress for free) and the seal path.
    let stream = ph_datagen::generate("Power", base_rows + batches * batch_rows, 7)
        .expect("dataset");
    let base = stream.slice(0, base_rows);
    let session =
        Session::with_config(PairwiseHistConfig { ns: base_rows, ..Default::default() });
    session.set_max_staleness(f64::INFINITY); // size-based sealing only
    session.set_seal_threshold(seal_threshold);
    let wal_dir = std::env::temp_dir().join(format!("ph_bench_wal_{}", std::process::id()));
    if wal {
        let _ = std::fs::remove_dir_all(&wal_dir);
        std::fs::create_dir_all(&wal_dir).expect("wal dir");
        session.enable_wal(&wal_dir).expect("enable wal");
    }
    let mut raw_retained_rows_bytes = base.heap_size();
    session.register(base.clone()).expect("register Power");
    // Successive stream slices past the base (see above).
    let batch_sets: Vec<Dataset> = (0..batches)
        .map(|k| stream.slice(base_rows + k * batch_rows, batch_rows))
        .collect();
    let mut per_batch_us = Vec::with_capacity(batches);
    let mut sealed_segments = 0usize;
    for batch in &batch_sets {
        raw_retained_rows_bytes += batch.heap_size();
        let t = Instant::now();
        let r = session.ingest("Power", batch).expect("ingest batch");
        per_batch_us.push(t.elapsed().as_secs_f64() * 1e6);
        sealed_segments += r.sealed_segments;
    }
    let mut sorted = per_batch_us.clone();
    sorted.sort_by(|a, b| a.total_cmp(b));
    let mut first: Vec<f64> = per_batch_us[..batches / 2].to_vec();
    let mut second: Vec<f64> = per_batch_us[batches / 2..].to_vec();
    first.sort_by(|a, b| a.total_cmp(b));
    second.sort_by(|a, b| a.total_cmp(b));
    let report = session.footprint_report("Power").expect("footprint report");
    if wal {
        let _ = std::fs::remove_dir_all(&wal_dir);
    }
    IngestBench {
        wal,
        base_rows,
        batch_rows,
        batches,
        seal_threshold,
        p50_us: percentile(&sorted, 0.5),
        p99_us: percentile(&sorted, 0.99),
        first_half_p50_us: percentile(&first, 0.5),
        second_half_p50_us: percentile(&second, 0.5),
        sealed_segments,
        segments_final: report.segments,
        raw_retained_rows_bytes,
        synopsis_bytes: report.synopsis_bytes,
        row_store_bytes: report.row_store_bytes,
        delta_bytes: report.delta_bytes,
        resident_bytes: report.total,
    }
}

/// Previous artifact's `p99_us` under `key`, so the new artifact can carry
/// the p99 delta across runs without external tooling. Naive string scan — the
/// artifact is hand-rolled JSON with a fixed shape.
fn previous_p99(path: &str, key: &str) -> Option<f64> {
    let text = std::fs::read_to_string(path).ok()?;
    let at = text.find(&format!("\"{key}\""))?;
    let rest = &text[at..];
    let p = rest.find("\"p99_us\":")?;
    let tail = &rest[p + "\"p99_us\":".len()..];
    let end = tail.find([',', '\n', '}'])?;
    tail[..end].trim().parse().ok()
}

/// The `"ingest_latency"` (or `"ingest_latency_wal"`) JSON object — no
/// trailing newline or comma. The `_wal` variant measures the same workload
/// with every batch journaled first, so the delta between the two is the WAL
/// append overhead. When the previous artifact had this section, its p99 and
/// the delta against it ride along.
fn ingest_json(b: &IngestBench, prev_p99: Option<f64>) -> String {
    let key = if b.wal { "ingest_latency_wal" } else { "ingest_latency" };
    let growth = b.second_half_p50_us / b.first_half_p50_us.max(1e-9);
    let ratio = b.resident_bytes as f64 / b.raw_retained_rows_bytes.max(1) as f64;
    let p99_trend = prev_p99
        .map(|prev| {
            format!(
                " \"p99_previous_us\": {prev:.2}, \"p99_delta_us\": {:.2},",
                b.p99_us - prev
            )
        })
        .unwrap_or_default();
    format!(
        "  \"{key}\": {{\n    \"wal_enabled\": {}, \"base_rows\": {}, \"batch_rows\": {}, \"batches\": {}, \"seal_threshold_rows\": {},\n    \"p50_us\": {:.2}, \"p99_us\": {:.2},{p99_trend} \"p99_vs_p50_ratio\": {:.3},\n    \"first_half_p50_us\": {:.2}, \"second_half_p50_us\": {:.2}, \"late_vs_early_p50_ratio\": {growth:.3},\n    \"sealed_segments\": {}, \"segments_final\": {},\n    \"raw_retained_rows_bytes\": {}, \"resident_bytes\": {{ \"synopsis\": {}, \"row_store\": {}, \"delta\": {}, \"total\": {} }},\n    \"resident_vs_raw_ratio\": {ratio:.4}\n  }}",
        b.wal,
        b.base_rows,
        b.batch_rows,
        b.batches,
        b.seal_threshold,
        b.p50_us,
        b.p99_us,
        b.p99_us / b.p50_us.max(1e-9),
        b.first_half_p50_us,
        b.second_half_p50_us,
        b.sealed_segments,
        b.segments_final,
        b.raw_retained_rows_bytes,
        b.synopsis_bytes,
        b.row_store_bytes,
        b.delta_bytes,
        b.resident_bytes,
    )
}

/// The `"codec_compression"` JSON object — the per-column codec cascade
/// measured on a fresh Power sample: per-codec column counts and exact
/// packed-vs-raw ratios, next to the GreedyGD store the cascade competes with
/// at seal time. No trailing newline or comma.
fn codec_compression_json(rows: usize) -> String {
    use ph_gd::Codec;
    let data = ph_datagen::generate("Power", rows, 7).expect("dataset");
    let pre = ph_gd::Preprocessor::fit(&data);
    let matrix = pre.encode(&data);
    let gd_bytes = ph_gd::GdCompressor::new().compress(&matrix).packed_bytes();
    struct Agg {
        columns: usize,
        packed: usize,
        raw: usize,
    }
    let mut per: std::collections::BTreeMap<&'static str, Agg> =
        std::collections::BTreeMap::new();
    let mut columnar_bytes = 0usize;
    for col in &matrix.columns {
        let codec = ph_gd::choose_codec(col);
        columnar_bytes += codec.packed_bytes();
        let e = per.entry(codec.name()).or_insert(Agg { columns: 0, packed: 0, raw: 0 });
        e.columns += 1;
        e.packed += codec.packed_bytes();
        e.raw += col.len() * 8;
    }
    let winner = if columnar_bytes < gd_bytes { "columnar" } else { "greedy-gd" };
    let mut json = format!(
        "  \"codec_compression\": {{\n    \"rows\": {rows}, \"greedy_gd_bytes\": {gd_bytes}, \"columnar_bytes\": {columnar_bytes}, \"winner\": \"{winner}\",\n    \"per_codec\": {{\n"
    );
    let n = per.len();
    for (i, (name, a)) in per.iter().enumerate() {
        let comma = if i + 1 < n { "," } else { "" };
        let ratio = a.packed as f64 / (a.raw as f64).max(1.0);
        json.push_str(&format!(
            "      \"{name}\": {{ \"columns\": {}, \"packed_bytes\": {}, \"raw_bytes\": {}, \"ratio\": {ratio:.4} }}{comma}\n",
            a.columns, a.packed, a.raw
        ));
        eprintln!(
            "codec:{name:<12} {:3} cols  {:>10} B packed  ratio {ratio:.4}",
            a.columns, a.packed
        );
    }
    json.push_str("    }\n  }");
    eprintln!(
        "codec cascade      {columnar_bytes} B vs greedy-gd {gd_bytes} B → winner {winner}"
    );
    json
}

/// Trace-instrumentation overhead: the per-request cost of the tracing
/// pipeline as a fraction of one served request.
///
/// A request's instrumentation bill has two parts, each measured where it
/// can be resolved: **span recording** (origin-anchored trace, install, two
/// clock reads per span across the ≥6-stage breakdown, take), replayed
/// directly as one request's trace lifecycle, and the **sink feed** (per-stage
/// histogram observes plus the varint span-ring push the server performs in
/// `finish_trace`) as a direct micro-measurement of a served query's
/// typical 8-span trace. `overhead_pct` is their sum over the *served-request
/// floor* — the best paired-round loopback latency with tracing off — which
/// is the honest denominator for "what does tracing cost a served query".
///
/// A naive off/on A/B over loopback HTTP is also taken (paired interleaved
/// rounds, best round per mode, reported as `served_*_floor_us`) but it is
/// informational: scheduler jitter on a shared runner is larger than the
/// sub-microsecond signal, so the contract gate keys on the decomposed
/// measurement. The observability contract pins `overhead_pct` below 2%.
fn trace_overhead_json(smoke: bool) -> String {
    use ph_server::{Client, Server, ServerConfig};
    // The probe request is the paper set's representative analytical query
    // (`multi_predicate`) on the full 100 k-row Power table in both modes —
    // the smoke run shrinks the measurement rounds, not the workload, since
    // a toy denominator would overstate the overhead ratio.
    let rows = 100_000;
    let session = std::sync::Arc::new(Session::with_config(PairwiseHistConfig {
        ns: rows,
        ..Default::default()
    }));
    session.register(power_with_day(rows)).expect("register Power");
    let sql = "SELECT AVG(global_active_power) FROM Power WHERE voltage > 236 AND \
               global_intensity < 30 AND sub_metering_3 >= 1 OR weekday = 6;";

    // Component 1: span recording — one request's exact trace lifecycle
    // (origin-anchored trace, the three cross-thread `record_between` stages,
    // install, the nested guard spans a served query opens, take), measured
    // directly so the sub-microsecond cost isn't differenced out of a noisy
    // end-to-end pair.
    use ph_core::obs::{trace, Stage, Trace};
    ph_core::obs::set_tracing(true);
    let span_cost_us = measure_us(|| {
        let t0 = Instant::now();
        let mut t = Trace::with_origin(t0);
        t.record_between(Stage::HttpRead, t0, Instant::now());
        t.record_between(Stage::Admission, t0, Instant::now());
        t.record_between(Stage::QueueWait, t0, Instant::now());
        trace::install(t);
        {
            let _root = trace::span(Stage::Query);
            drop(trace::span(Stage::PlanCacheHit));
            {
                let _exec = trace::span(Stage::Execute);
                drop(trace::span(Stage::Estimate));
            }
            drop(trace::span(Stage::Serialize));
        }
        let _spans = trace::take().map(Trace::into_spans).unwrap_or_default();
    });

    // Component 2: the sink — per-stage histogram feed + span-ring push for a
    // served query's typical 8-span trace, exactly the server's
    // `finish_trace` work.
    let registry = ph_core::obs::Registry::new();
    let stage_hist =
        registry.histogram("bench_stage_seconds", "Sink-cost probe.", 1e-9, &[]);
    let ring = ph_core::obs::SpanRing::new(16 * 1024);
    let spans: Vec<ph_core::obs::SpanRec> = (0..8)
        .map(|i| ph_core::obs::SpanRec {
            id: i + 1,
            parent: u32::from(i != 0),
            stage: ph_core::obs::Stage::Execute,
            start_ns: u64::from(i) * 1_000,
            dur_ns: 800,
        })
        .collect();
    let mut trace_id = 0u64;
    let sink_cost_us = measure_us(|| {
        trace_id += 1;
        for s in &spans {
            stage_hist.observe(s.dur_ns);
        }
        ring.push_trace(trace_id, &spans);
    });

    // Denominator: the served-request floor over loopback HTTP, plus the
    // informational A/B floors.
    let server = Server::bind(
        session,
        "127.0.0.1:0",
        ServerConfig { workers: 2, ..Default::default() },
    )
    .expect("bind bench server");
    let mut client = Client::new(server.local_addr().to_string());
    client.query(sql).expect("warm the served path");
    let (rounds, per_round) = if smoke { (9, 200) } else { (11, 400) };
    let mut pairs: Vec<(f64, f64)> = Vec::with_capacity(rounds);
    for _ in 0..rounds {
        let mut lap = |on: bool| {
            ph_core::obs::set_tracing(on);
            let t = Instant::now();
            for _ in 0..per_round {
                let _ = client.query(sql);
            }
            t.elapsed().as_secs_f64() / per_round as f64 * 1e6
        };
        let off = lap(false);
        let on = lap(true);
        pairs.push((off, on));
    }
    server.shutdown();
    ph_core::obs::set_tracing(true);
    let served_floor_us = pairs.iter().map(|p| p.0).fold(f64::INFINITY, f64::min);
    let served_traced_floor_us = pairs.iter().map(|p| p.1).fold(f64::INFINITY, f64::min);

    let per_request_us = span_cost_us + sink_cost_us;
    let overhead_pct = per_request_us / served_floor_us.max(1e-9) * 100.0;
    eprintln!(
        "trace_overhead     span {span_cost_us:.3} µs + sink {sink_cost_us:.3} µs on a \
         {served_floor_us:.1} µs served floor = {overhead_pct:.2}% (contract <2%)"
    );
    format!(
        "  \"trace_overhead\": {{ \"query\": \"multi_predicate\", \"span_cost_us\": {span_cost_us:.3}, \
         \"sink_cost_us\": {sink_cost_us:.3}, \"served_floor_us\": {served_floor_us:.2}, \
         \"served_traced_floor_us\": {served_traced_floor_us:.2}, \
         \"overhead_pct\": {overhead_pct:.2}, \"contract_pct\": 2.0 }}"
    )
}

fn main() {
    let out_path = std::env::args().nth(1).unwrap_or_else(|| "BENCH_query_latency.json".into());
    let smoke = std::env::var("PH_BENCH_SMOKE").is_ok();
    if smoke {
        // CI's build job: exercise the ingest bench end to end at small scale
        // and write a self-contained (partial) summary; the perf job produces
        // the full artifact.
        let prev = previous_p99(&out_path, "ingest_latency");
        let prev_wal = previous_p99(&out_path, "ingest_latency_wal");
        let ib = bench_ingest(true, false);
        let ibw = bench_ingest(true, true);
        eprintln!(
            "ingest(smoke)      p50 {:.1} µs  p99 {:.1} µs  resident/raw {:.3}  wal p50 {:.1} µs",
            ib.p50_us,
            ib.p99_us,
            ib.resident_bytes as f64 / ib.raw_retained_rows_bytes.max(1) as f64,
            ibw.p50_us,
        );
        let json = format!(
            "{{\n  \"smoke\": true,\n{},\n{},\n{},\n{}\n}}\n",
            ingest_json(&ib, prev),
            ingest_json(&ibw, prev_wal),
            trace_overhead_json(true),
            codec_compression_json(8_000)
        );
        std::fs::write(&out_path, &json).expect("write summary");
        eprintln!("wrote {out_path} (smoke mode: ingest + trace-overhead only)");
        return;
    }
    let rows = 100_000usize;
    let data = power_with_day(rows);
    let ph =
        PairwiseHist::build(&data, &PairwiseHistConfig { ns: rows, ..Default::default() });

    let scalar_queries = [
        ("count", "SELECT COUNT(global_active_power) FROM Power WHERE voltage > 238;"),
        ("sum", "SELECT SUM(global_active_power) FROM Power WHERE voltage > 238;"),
        ("avg", "SELECT AVG(global_active_power) FROM Power WHERE voltage > 238;"),
        ("min", "SELECT MIN(global_active_power) FROM Power WHERE voltage > 238;"),
        ("max", "SELECT MAX(global_active_power) FROM Power WHERE voltage > 238;"),
        ("median", "SELECT MEDIAN(global_active_power) FROM Power WHERE voltage > 238;"),
        ("var", "SELECT VAR(global_active_power) FROM Power WHERE voltage > 238;"),
        (
            "multi_predicate",
            "SELECT AVG(global_active_power) FROM Power WHERE voltage > 236 AND \
             global_intensity < 30 AND sub_metering_3 >= 1 OR weekday = 6;",
        ),
    ];

    let mut entries: Vec<(String, f64)> = Vec::new();
    for (name, sql) in scalar_queries {
        let q = parse_query(sql).expect("valid query");
        let us = measure_us(|| {
            ph.execute(&q).unwrap();
        });
        entries.push((name.to_string(), us));
        eprintln!("{name:<18} {us:10.1} µs");
    }

    // GROUP BY: factored path vs a per-group rescan (one scalar query per
    // group), which re-runs the whole predicate recursion per group exactly
    // like unfactored execution did.
    let grouped =
        parse_query("SELECT COUNT(global_active_power) FROM Power WHERE voltage > 238 GROUP BY day;")
            .expect("valid query");
    let factored_us = measure_us(|| {
        ph.execute(&grouped).unwrap();
    });
    let rescan_queries: Vec<Query> = (1..=7)
        .map(|d| {
            parse_query(&format!(
                "SELECT COUNT(global_active_power) FROM Power WHERE voltage > 238 AND day = 'd{d}';"
            ))
            .expect("valid query")
        })
        .collect();
    let rescan_us = measure_us(|| {
        for q in &rescan_queries {
            ph.execute(q).unwrap();
        }
    });
    let speedup = rescan_us / factored_us;
    eprintln!("group_by(day)      {factored_us:10.1} µs  (per-group rescan {rescan_us:.1} µs, {speedup:.2}x)");
    entries.push(("group_by".into(), factored_us));

    // Prepared (Session plan cache) vs reparse-every-time execution: the same
    // template answered through `Session::sql` (text-cache hit → straight to
    // histogram arithmetic) against the pre-Session posture of `parse_query` +
    // `execute` per call. Measured on the heaviest template (multi-predicate
    // AND/OR) and a single-predicate one.
    let session = Session::with_config(PairwiseHistConfig { ns: rows, ..Default::default() });
    session.register(data.clone()).expect("register Power");
    let mut prepared_cases: Vec<(String, f64, f64)> = Vec::new();
    for (name, sql) in [
        ("count", scalar_queries[0].1),
        ("multi_predicate", scalar_queries[7].1),
    ] {
        let reparsed_us = measure_us(|| {
            let q = parse_query(sql).unwrap();
            ph.execute(&q).unwrap();
        });
        let plan = session.prepare(sql).expect("plan the template once");
        let prepared_us = measure_us(|| {
            session.execute(&plan).unwrap();
        });
        eprintln!(
            "prepared:{name:<11} {prepared_us:10.1} µs  (reparse {reparsed_us:.1} µs, {:.2}x)",
            reparsed_us / prepared_us
        );
        prepared_cases.push((name.to_string(), prepared_us, reparsed_us));
    }

    // Group-count scaling on a slim Power projection.
    let mut scaling: Vec<(usize, f64, f64)> = Vec::new();
    let power = ph_datagen::generate("Power", rows, 2).expect("dataset");
    for n_groups in [8usize, 32, 128, 512] {
        let slim = power_with_groups(&power, n_groups);
        let ph_g = PairwiseHist::build(
            &slim,
            &PairwiseHistConfig { ns: rows, ..Default::default() },
        );
        let q = parse_query(
            "SELECT COUNT(global_active_power) FROM Power WHERE voltage > 238 GROUP BY g;",
        )
        .expect("valid query");
        let us = measure_us(|| {
            ph_g.execute(&q).unwrap();
        });
        let labels: Vec<String> = (0..n_groups).map(|i| format!("g{i:03}")).collect();
        let rescan: Vec<Query> = labels
            .iter()
            .map(|l| {
                parse_query(&format!(
                    "SELECT COUNT(global_active_power) FROM Power WHERE voltage > 238 AND g = '{l}';"
                ))
                .expect("valid query")
            })
            .collect();
        let rescan_us_g = measure_us(|| {
            for q in &rescan {
                ph_g.execute(q).unwrap();
            }
        });
        eprintln!(
            "groups={n_groups:<4}       {us:10.1} µs  (per-group rescan {rescan_us_g:.1} µs, {:.2}x)",
            rescan_us_g / us
        );
        scaling.push((n_groups, us, rescan_us_g));
    }

    // Hand-rolled JSON (no serde in the offline environment).
    let mut json = String::from("{\n");
    json.push_str(&format!("  \"dataset\": \"Power\",\n  \"rows\": {rows},\n"));
    json.push_str("  \"queries\": {\n");
    for (i, (name, us)) in entries.iter().enumerate() {
        let comma = if i + 1 < entries.len() { "," } else { "" };
        json.push_str(&format!("    \"{}\": {us:.2}{comma}\n", json_escape(name)));
    }
    json.push_str("  },\n");
    json.push_str(&format!(
        "  \"group_by_day\": {{ \"factored_us\": {factored_us:.2}, \"per_group_rescan_us\": {rescan_us:.2}, \"speedup\": {speedup:.2} }},\n"
    ));
    json.push_str("  \"prepared_vs_reparse\": [\n");
    for (i, (name, prepared, reparsed)) in prepared_cases.iter().enumerate() {
        let comma = if i + 1 < prepared_cases.len() { "," } else { "" };
        json.push_str(&format!(
            "    {{ \"query\": \"{}\", \"prepared_us\": {prepared:.2}, \"reparsed_us\": {reparsed:.2}, \"speedup\": {:.2} }}{comma}\n",
            json_escape(name),
            reparsed / prepared
        ));
    }
    json.push_str("  ],\n");
    json.push_str("  \"latency_vs_groups\": [\n");
    for (i, (n, us, rescan)) in scaling.iter().enumerate() {
        let comma = if i + 1 < scaling.len() { "," } else { "" };
        json.push_str(&format!(
            "    {{ \"groups\": {n}, \"factored_us\": {us:.2}, \"per_group_rescan_us\": {rescan:.2} }}{comma}\n"
        ));
    }
    json.push_str("  ],\n");

    // Segmented ingest: per-batch cost and bytes-resident (see bench_ingest),
    // then the same workload with the ingest WAL armed — the delta is the
    // durability tax per batch.
    let prev = previous_p99(&out_path, "ingest_latency");
    let prev_wal = previous_p99(&out_path, "ingest_latency_wal");
    let ib = bench_ingest(false, false);
    eprintln!(
        "ingest_latency     p50 {:.1} µs  p99 {:.1} µs  late/early p50 {:.2}  \
         resident/raw {:.3} ({} seals)",
        ib.p50_us,
        ib.p99_us,
        ib.second_half_p50_us / ib.first_half_p50_us.max(1e-9),
        ib.resident_bytes as f64 / ib.raw_retained_rows_bytes.max(1) as f64,
        ib.sealed_segments,
    );
    json.push_str(&ingest_json(&ib, prev));
    json.push_str(",\n");
    let ibw = bench_ingest(false, true);
    eprintln!(
        "ingest_latency_wal p50 {:.1} µs  p99 {:.1} µs  (wal overhead p50 {:+.1} µs)",
        ibw.p50_us,
        ibw.p99_us,
        ibw.p50_us - ib.p50_us,
    );
    json.push_str(&ingest_json(&ibw, prev_wal));
    json.push_str(",\n");
    json.push_str(&trace_overhead_json(false));
    json.push_str(",\n");
    json.push_str(&codec_compression_json(50_000));
    json.push_str("\n}\n");
    std::fs::write(&out_path, &json).expect("write summary");
    eprintln!("wrote {out_path}");
}
