//! Fig 1 / Table 1 style summary: all key metrics for every engine on one scaled
//! dataset, in a single run — the "relative performance comparison" radar chart of
//! the paper's first page, as a table.
//!
//! ```text
//! cargo run -p ph-bench --release --bin summary [-- --rows 500000]
//! ```

use std::time::Instant;

use ph_baselines::{AqpBaseline, KdeAqp, KdeConfig, SamplingAqp, SamplingConfig, SpnAqp, SpnConfig};
use ph_bench::{
    bounds_stats, build_pipeline, error_stats, fmt_bytes, fmt_duration, ground_truths,
    kde_templates, run_baseline, run_pairwisehist, scaled_dataset, Args, Table,
};
use ph_core::PairwiseHistConfig;
use ph_workload::{generate as gen_workload, WorkloadConfig};

fn main() {
    let args = Args::capture();
    let rows: usize = args.get("rows", 500_000);
    let seed_rows: usize = args.get("seed-rows", 200_000);
    let n_queries: usize = args.get("queries", 250);
    let ns: usize = args.get("ns", 100_000);
    let seed: u64 = args.get("seed", 14);

    println!("== Fig 1 / Table 1: all-round comparison (scaled Flights, {rows} rows) ==\n");

    let data = scaled_dataset("Flights", seed_rows, rows, seed);
    let queries = gen_workload(&data, &WorkloadConfig::scaled(n_queries, seed ^ 0x0f1));
    let truths = ground_truths(&data, &queries);

    let mut table = Table::new(&[
        "engine", "median err", "median latency", "bounds correct", "size", "build", "supported",
    ]);

    // PairwiseHist via the full compression pipeline.
    let built = build_pipeline(
        &data,
        &PairwiseHistConfig { ns: ns.min(rows), seed, ..Default::default() },
    );
    let out = run_pairwisehist(&built.ph, &queries);
    let es = error_stats(&out, &truths);
    let bs = bounds_stats(&out, &truths);
    table.row(vec![
        "PairwiseHist".into(),
        format!("{:.2}%", es.median_error * 100.0),
        format!("{:.3} ms", es.median_latency * 1e3),
        format!("{:.0}%", bs.correct_rate * 100.0),
        fmt_bytes(built.ph.synopsis_size().total),
        fmt_duration(built.ph_secs),
        format!("{}/{}", es.supported, queries.len()),
    ]);

    // DeepDB-like SPN.
    let t0 = Instant::now();
    let spn = SpnAqp::build(&data, &SpnConfig { sample_n: ns.min(rows), seed, ..Default::default() });
    let spn_secs = t0.elapsed().as_secs_f64();
    let out = run_baseline(&spn, &queries);
    let es = error_stats(&out, &truths);
    let bs = bounds_stats(&out, &truths);
    table.row(vec![
        "DeepDB (SPN)".into(),
        format!("{:.2}%", es.median_error * 100.0),
        format!("{:.3} ms", es.median_latency * 1e3),
        format!("{:.0}%", bs.correct_rate * 100.0),
        fmt_bytes(spn.size_bytes()),
        fmt_duration(spn_secs),
        format!("{}/{}", es.supported, queries.len()),
    ]);

    // DBEst-like KDE.
    let templates = kde_templates(&queries);
    let t0 = Instant::now();
    let kde = KdeAqp::build(
        &data,
        &KdeConfig {
            sample_n: ns.min(rows), seed, templates: templates.clone(),
            ..Default::default()
        },
    );
    let kde_secs = t0.elapsed().as_secs_f64();
    let out = run_baseline(&kde, &queries);
    let es = error_stats(&out, &truths);
    table.row(vec![
        "DBEst++ (KDE)".into(),
        format!("{:.2}%", es.median_error * 100.0),
        format!("{:.3} ms", es.median_latency * 1e3),
        "-".into(),
        fmt_bytes(kde.size_bytes()),
        fmt_duration(kde_secs),
        format!("{}/{}", es.supported, queries.len()),
    ]);

    // Classical uniform sampling.
    let t0 = Instant::now();
    let sampling = SamplingAqp::build(&data, &SamplingConfig { sample_n: ns.min(rows), seed });
    let sampling_secs = t0.elapsed().as_secs_f64();
    let out = run_baseline(&sampling, &queries);
    let es = error_stats(&out, &truths);
    let bs = bounds_stats(&out, &truths);
    table.row(vec![
        "Sampling".into(),
        format!("{:.2}%", es.median_error * 100.0),
        format!("{:.3} ms", es.median_latency * 1e3),
        format!("{:.0}%", bs.correct_rate * 100.0),
        fmt_bytes(sampling.size_bytes()),
        fmt_duration(sampling_secs),
        format!("{}/{}", es.supported, queries.len()),
    ]);

    table.print();
    println!();
    println!(
        "Paper reference (Fig 1 / Table 1): PairwiseHist dominates on accuracy, latency, \
         synopsis size, construction time and bounds simultaneously; sampling carries \
         the full sample as storage; learned baselines trade versatility for size."
    );
}
