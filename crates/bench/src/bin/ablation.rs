//! Ablations for the design choices DESIGN.md calls out:
//!
//! 1. **Split rule** — equal-width vs equal-depth bin splitting (§4.1 says the
//!    authors tested both and found equal-width slightly better);
//! 2. **GD seeding** — initial bin edges from GreedyGD bases vs from-scratch
//!    min/max edges (§3 says stand-alone construction is slightly slower and less
//!    precise initially);
//! 3. **Storage encoding** — dense vs Golomb-sparse bin-count sections (§4.3).
//!
//! ```text
//! cargo run -p ph-bench --release --bin ablation [-- --rows 400000]
//! ```

use std::sync::Arc;
use std::time::Instant;

use ph_bench::{
    error_stats, fmt_bytes, fmt_duration, ground_truths, run_pairwisehist, scaled_dataset,
    Args, Table,
};
use ph_core::{PairwiseHist, PairwiseHistConfig, SplitRule};
use ph_gd::{GdCompressor, Preprocessor};
use ph_workload::{generate as gen_workload, WorkloadConfig};

fn main() {
    let args = Args::capture();
    let rows: usize = args.get("rows", 400_000);
    let seed_rows: usize = args.get("seed-rows", 200_000);
    let n_queries: usize = args.get("queries", 150);
    let ns: usize = args.get("ns", 100_000);
    let seed: u64 = args.get("seed", 15);

    println!("== Ablations (scaled Power, {rows} rows, Ns = {ns}) ==\n");
    let data = scaled_dataset("Power", seed_rows, rows, seed);
    let queries = gen_workload(&data, &WorkloadConfig::scaled(n_queries, seed ^ 0xab1));
    let truths = ground_truths(&data, &queries);

    let pre = Arc::new(Preprocessor::fit(&data));
    let store = GdCompressor::new().compress(&pre.encode(&data));

    let mut table =
        Table::new(&["variant", "median err", "size", "build", "1-d bins", "2-d cells"]);
    let mut run = |label: &str, ph: PairwiseHist, secs: f64| {
        let out = run_pairwisehist(&ph, &queries);
        let es = error_stats(&out, &truths);
        table.row(vec![
            label.to_string(),
            format!("{:.2}%", es.median_error * 100.0),
            fmt_bytes(ph.synopsis_size().total),
            fmt_duration(secs),
            ph.total_1d_bins().to_string(),
            ph.total_2d_cells().to_string(),
        ]);
    };

    // 1. Split rule.
    for (label, rule) in
        [("equal-width (paper)", SplitRule::EqualWidth), ("equal-depth", SplitRule::EqualDepth)]
    {
        let cfg = PairwiseHistConfig { ns: ns.min(rows), split_rule: rule, seed, ..Default::default() };
        let t0 = Instant::now();
        let ph = PairwiseHist::build_from_gd(&store, pre.clone(), &cfg);
        run(label, ph, t0.elapsed().as_secs_f64());
    }

    // 2. GD-seeded vs from-scratch initial edges.
    let cfg = PairwiseHistConfig { ns: ns.min(rows), seed, ..Default::default() };
    let t0 = Instant::now();
    let ph = PairwiseHist::build(&data, &cfg);
    run("from-scratch edges", ph, t0.elapsed().as_secs_f64());

    table.print();

    // 3. Storage encoding: dense-vs-sparse accounting on the GD-seeded build.
    let ph = PairwiseHist::build_from_gd(&store, pre, &cfg);
    let size = ph.synopsis_size();
    println!("\nStorage breakdown (GD-seeded build):");
    println!("  params: {}", fmt_bytes(size.params));
    println!("  1-d histograms: {}", fmt_bytes(size.hists_1d));
    println!("  2-d extras: {}", fmt_bytes(size.hists_2d));
    println!("  bin counts (dense/sparse per pair): {}", fmt_bytes(size.counts));
    println!("  total: {}", fmt_bytes(size.total));
    println!();
    println!(
        "Paper reference: equal-width splits performed slightly better (S4.1); GD bases \
         speed up construction and sharpen initial bins (S3); sparse Golomb counts keep \
         the count section small when pair matrices are concentrated (S4.3)."
    );
}
