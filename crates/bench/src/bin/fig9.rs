//! Fig 9 reproduction: PairwiseHist parameter sensitivity on the scaled-up Flights
//! dataset — median error and synopsis size as functions of `M`, `α` and `Ns`.
//!
//! ```text
//! cargo run -p ph-bench --release --bin fig9 [-- --rows 1000000]
//! ```

use ph_bench::{
    build_pipeline, error_stats, fmt_bytes, ground_truths, run_pairwisehist, scaled_dataset,
    Args, Table,
};
use ph_core::PairwiseHistConfig;
use ph_workload::{generate as gen_workload, WorkloadConfig};

fn main() {
    let args = Args::capture();
    let rows: usize = args.get("rows", 1_000_000);
    let seed_rows: usize = args.get("seed-rows", 200_000);
    let n_queries: usize = args.get("queries", 120);
    let seed: u64 = args.get("seed", 9);

    println!("== Fig 9: parameter sensitivity (scaled-up Flights) ==");
    println!("   rows: {rows} (paper: 10^9)");
    println!();

    let data = scaled_dataset("Flights", seed_rows, rows, seed);
    let queries = gen_workload(
        &data,
        &WorkloadConfig { n_queries, ..WorkloadConfig::scaled(n_queries, seed ^ 0xF19) },
    );
    let truths = ground_truths(&data, &queries);

    let m_values = [1_000usize, 4_000, 7_000, 10_000];
    let settings: [(usize, f64); 4] =
        [(1_000_000, 0.01), (100_000, 0.001), (100_000, 0.01), (100_000, 0.1)];

    let mut err_table = Table::new(&["M", "1m α=0.01", "100k α=0.001", "100k α=0.01", "100k α=0.1"]);
    let mut size_table =
        Table::new(&["M", "1m α=0.01", "100k α=0.001", "100k α=0.01", "100k α=0.1"]);

    for m in m_values {
        let mut err_row = vec![m.to_string()];
        let mut size_row = vec![m.to_string()];
        for (ns, alpha) in settings {
            let cfg = PairwiseHistConfig {
                ns: ns.min(rows),
                m_absolute: Some(m),
                alpha,
                seed,
                ..Default::default()
            };
            let built = build_pipeline(&data, &cfg);
            let outcomes = run_pairwisehist(&built.ph, &queries);
            let stats = error_stats(&outcomes, &truths);
            err_row.push(format!("{:.2}%", stats.median_error * 100.0));
            size_row.push(fmt_bytes(built.ph.synopsis_size().total));
        }
        err_table.row(err_row);
        size_table.row(size_row);
    }

    println!("(a) Median error by minimum points M");
    err_table.print();
    println!();
    println!("(b) Synopsis size by minimum points M");
    size_table.print();
    println!();
    println!(
        "Paper reference: Ns dominates accuracy, α has near-zero impact, size shrinks \
         as M grows; construction time scales linearly with Ns."
    );
}
