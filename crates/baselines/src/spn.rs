#![allow(clippy::needless_range_loop)] // parallel-array indexing is the clearer idiom here

//! A sum-product network baseline in the style of DeepDB's RSPNs [20].
//!
//! Structure learning follows the standard SPN recipe DeepDB inherits from
//! Molina et al.: try to split **columns** into (nearly) independent groups
//! (product nodes, correlation-threshold partitioning); when no independent split
//! exists, split **rows** by k-means clustering (sum nodes); bottom out in
//! per-column histogram leaves. Queries evaluate bottom-up as expectations:
//! `E[1_P]`, `E[X·1_P]`, `E[X²·1_P]`.
//!
//! Fidelity to the paper's observations about DeepDB (§2, Table 5):
//!
//! * COUNT/SUM/AVG supported; VAR/MIN/MAX/MEDIAN are not (Table 5's dashes);
//! * **OR predicates are rejected** — the paper found DeepDB "does not support OR
//!   relationships between predicates, despite claiming to";
//! * smooth density modelling gives good accuracy on well-behaved (Gaussian-ish)
//!   data and degrades on irregular real-world data — the Fig 10(d) effect.

use rand::seq::index::sample as index_sample;
use rand::{Rng, SeedableRng};

use ph_sql::{AggFunc, CmpOp, Predicate, Query};
use ph_stats::normal_quantile;
use ph_types::{ColumnType, Dataset};

use crate::{AqpBaseline, Estimate, Unsupported};

/// SPN structure-learning parameters.
#[derive(Debug, Clone)]
pub struct SpnConfig {
    /// Sample size used to learn the network.
    pub sample_n: usize,
    /// Minimum rows before a slice stops splitting (DeepDB's `min_instances`).
    pub min_instances: usize,
    /// |Pearson r| above which two columns are considered dependent.
    pub corr_threshold: f64,
    /// Histogram resolution of numeric leaves.
    pub leaf_bins: usize,
    /// Recursion depth cap.
    pub max_depth: u32,
    /// Sampling / clustering seed.
    pub seed: u64,
}

impl Default for SpnConfig {
    fn default() -> Self {
        Self {
            sample_n: 100_000,
            min_instances: 500,
            corr_threshold: 0.3,
            leaf_bins: 64,
            max_depth: 16,
            seed: 0x5350_4e21,
        }
    }
}

/// The learned network plus the schema information needed to route queries.
#[derive(Debug, Clone)]
pub struct SpnAqp {
    root: Node,
    names: Vec<String>,
    types: Vec<ColumnType>,
    dicts: Vec<Option<Vec<String>>>,
    n_total: usize,
    n_sample: usize,
    z: f64,
}

#[derive(Debug, Clone)]
enum Node {
    /// Row-cluster mixture.
    Sum { weights: Vec<f64>, children: Vec<Node> },
    /// Independent column groups.
    Product { children: Vec<Node> },
    /// Single-column histogram.
    Leaf(Leaf),
}

#[derive(Debug, Clone)]
struct Leaf {
    col: usize,
    /// Fraction of slice rows that are null in this column.
    null_frac: f64,
    /// Uniform-width histogram over `[lo, hi]` (numeric) or per-code table
    /// (categorical); probabilities over non-null rows, summing to 1.
    probs: Vec<f64>,
    lo: f64,
    hi: f64,
    categorical: bool,
}

/// Per-column constraint extracted from a conjunctive predicate.
#[derive(Debug, Clone)]
struct Constraint {
    /// Closed real interval for numerics.
    lo: f64,
    hi: f64,
    /// For categoricals: allowed codes (None = unconstrained numerically).
    allowed: Option<Vec<bool>>,
}

impl Constraint {
    fn unconstrained() -> Self {
        Self { lo: f64::NEG_INFINITY, hi: f64::INFINITY, allowed: None }
    }
}

impl SpnAqp {
    /// Learns an SPN from a uniform sample of `data`.
    pub fn build(data: &Dataset, cfg: &SpnConfig) -> Self {
        let sample = data.sample(cfg.sample_n, cfg.seed);
        let d = sample.n_columns();
        // Column-major f64 matrix; NaN marks null; categoricals use their codes.
        let matrix: Vec<Vec<f64>> = (0..d)
            .map(|c| {
                let col = sample.column(c);
                (0..sample.n_rows())
                    .map(|r| {
                        if !col.is_valid(r) {
                            f64::NAN
                        } else {
                            match col.ty() {
                                ColumnType::Categorical => col.code(r).unwrap() as f64,
                                _ => col.numeric(r).unwrap(),
                            }
                        }
                    })
                    .collect()
            })
            .collect();
        let categorical: Vec<bool> = (0..d)
            .map(|c| sample.column(c).ty() == ColumnType::Categorical)
            .collect();
        let n_codes: Vec<usize> = (0..d)
            .map(|c| sample.column(c).dictionary().map_or(0, |d| d.len()))
            .collect();
        let mut rng = rand::rngs::StdRng::seed_from_u64(cfg.seed ^ 0xABCD);
        let rows: Vec<u32> = (0..sample.n_rows() as u32).collect();
        let cols: Vec<usize> = (0..d).collect();
        let learner = Learner { matrix: &matrix, categorical: &categorical, n_codes: &n_codes, cfg };
        let root = learner.learn(&cols, &rows, 0, &mut rng);
        Self {
            root,
            names: sample.columns().iter().map(|c| c.name().to_string()).collect(),
            types: sample.columns().iter().map(|c| c.ty()).collect(),
            dicts: sample
                .columns()
                .iter()
                .map(|c| c.dictionary().map(|d| d.to_vec()))
                .collect(),
            n_total: data.n_rows(),
            n_sample: sample.n_rows(),
            z: normal_quantile(0.99),
        }
    }

    /// Number of nodes (diagnostics).
    pub fn n_nodes(&self) -> usize {
        fn walk(n: &Node) -> usize {
            match n {
                Node::Leaf(_) => 1,
                Node::Sum { children, .. } | Node::Product { children } => {
                    1 + children.iter().map(walk).sum::<usize>()
                }
            }
        }
        walk(&self.root)
    }

    /// Resolves a query against the learned network, rejecting every shape DeepDB
    /// cannot answer — the single source of truth for both `AqpEngine::prepare`
    /// and `execute`.
    fn resolve(&self, query: &Query) -> Result<(usize, Vec<Constraint>), Unsupported> {
        if query.group_by.is_some() {
            return Err(Unsupported::Shape("GROUP BY not implemented".into()));
        }
        match query.agg {
            AggFunc::Count | AggFunc::Sum | AggFunc::Avg => {}
            other => return Err(Unsupported::Aggregate(other.name().into())),
        }
        let agg_col = self
            .names
            .iter()
            .position(|n| n == &query.column)
            .ok_or_else(|| Unsupported::Invalid(format!("unknown column {}", query.column)))?;
        if self.types[agg_col] == ColumnType::Categorical && query.agg != AggFunc::Count {
            return Err(Unsupported::Invalid(format!(
                "{} on categorical column",
                query.agg
            )));
        }
        let mut cons = vec![Constraint::unconstrained(); self.names.len()];
        if let Some(p) = &query.predicate {
            self.constraints(p, &mut cons)?;
        }
        Ok((agg_col, cons))
    }

    /// The cheap shape check behind `AqpEngine::prepare`.
    fn validate(&self, query: &Query) -> Result<(), Unsupported> {
        self.resolve(query).map(|_| ())
    }

    /// Extracts per-column conjunctive constraints; errors on OR (like DeepDB).
    fn constraints(
        &self,
        pred: &Predicate,
        out: &mut Vec<Constraint>,
    ) -> Result<(), Unsupported> {
        match pred {
            Predicate::Or(_) => Err(Unsupported::OrPredicate),
            Predicate::And(children) => {
                for c in children {
                    self.constraints(c, out)?;
                }
                Ok(())
            }
            Predicate::Cond(c) => {
                let col = self
                    .names
                    .iter()
                    .position(|n| n == &c.column)
                    .ok_or_else(|| Unsupported::Invalid(format!("unknown column {}", c.column)))?;
                let cons = &mut out[col];
                if self.types[col] == ColumnType::Categorical {
                    let dict = self.dicts[col].as_ref().expect("categorical dictionary");
                    let s = match &c.value {
                        ph_types::Value::Str(s) => s.clone(),
                        v => {
                            return Err(Unsupported::Invalid(format!(
                                "categorical column {} vs {v}",
                                c.column
                            )))
                        }
                    };
                    let code = dict.iter().position(|d| *d == s);
                    let mut mask = match (&cons.allowed, c.op) {
                        (Some(m), _) => m.clone(),
                        (None, _) => vec![true; dict.len()],
                    };
                    match c.op {
                        CmpOp::Eq => {
                            for (i, b) in mask.iter_mut().enumerate() {
                                *b = *b && Some(i) == code;
                            }
                        }
                        CmpOp::Ne => {
                            if let Some(i) = code {
                                mask[i] = false;
                            }
                        }
                        op => {
                            return Err(Unsupported::Invalid(format!(
                                "range op {op} on categorical {}",
                                c.column
                            )))
                        }
                    }
                    cons.allowed = Some(mask);
                } else {
                    let lit = c.value.as_f64().ok_or_else(|| {
                        Unsupported::Invalid(format!("non-numeric literal on {}", c.column))
                    })?;
                    match c.op {
                        CmpOp::Lt => cons.hi = cons.hi.min(lit - 1e-9),
                        CmpOp::Le => cons.hi = cons.hi.min(lit),
                        CmpOp::Gt => cons.lo = cons.lo.max(lit + 1e-9),
                        CmpOp::Ge => cons.lo = cons.lo.max(lit),
                        CmpOp::Eq => {
                            cons.lo = cons.lo.max(lit);
                            cons.hi = cons.hi.min(lit);
                        }
                        CmpOp::Ne => {
                            // Point removal has measure ~zero under a density model;
                            // DeepDB treats it the same way.
                        }
                    }
                }
                Ok(())
            }
        }
    }
}

impl AqpBaseline for SpnAqp {
    fn name(&self) -> &'static str {
        "spn"
    }

    fn execute(&self, query: &Query) -> Result<Estimate, Unsupported> {
        let (agg_col, cons) = self.resolve(query)?;
        let (p, m1, m2) = eval(&self.root, &cons, agg_col);
        let n = self.n_total as f64;
        let ns = self.n_sample as f64;
        let z = self.z;
        Ok(match query.agg {
            AggFunc::Count => {
                let se = (p.clamp(0.0, 1.0) * (1.0 - p.clamp(0.0, 1.0)) / ns).sqrt();
                Estimate::with_bounds(n * p, (n * (p - z * se)).max(0.0), n * (p + z * se))
            }
            AggFunc::Sum => {
                let se = ((m2 - m1 * m1).max(0.0) / ns).sqrt();
                Estimate::with_bounds(n * m1, n * (m1 - z * se), n * (m1 + z * se))
            }
            AggFunc::Avg => {
                if p <= 1e-12 {
                    return Err(Unsupported::Shape("empty selection".into()));
                }
                let avg = m1 / p;
                let var = (m2 / p - avg * avg).max(0.0);
                let se = (var / (ns * p)).sqrt();
                Estimate::with_bounds(avg, avg - z * se, avg + z * se)
            }
            _ => unreachable!(),
        })
    }

    fn size_bytes(&self) -> usize {
        fn walk(n: &Node) -> usize {
            match n {
                Node::Leaf(l) => 40 + l.probs.len() * 8,
                Node::Sum { weights, children } => {
                    16 + weights.len() * 8 + children.iter().map(walk).sum::<usize>()
                }
                Node::Product { children } => 16 + children.iter().map(walk).sum::<usize>(),
            }
        }
        walk(&self.root)
    }
}

crate::baseline_engine!(SpnAqp);

/// Bottom-up moment evaluation: returns
/// `(E[1_P·v], E[X_a·1_P·v], E[X_a²·1_P·v])` over the node's row slice, where `v`
/// additionally requires the aggregation column to be non-null.
fn eval(node: &Node, cons: &[Constraint], agg_col: usize) -> (f64, f64, f64) {
    match node {
        Node::Sum { weights, children } => {
            let mut acc = (0.0, 0.0, 0.0);
            for (w, ch) in weights.iter().zip(children) {
                let (p, m1, m2) = eval(ch, cons, agg_col);
                acc.0 += w * p;
                acc.1 += w * m1;
                acc.2 += w * m2;
            }
            acc
        }
        Node::Product { children } => {
            // Independence: the aggregation column's moments come from its own
            // subtree; the other subtrees contribute probability factors.
            let mut prob = 1.0;
            let mut moments = (1.0, 1.0, 1.0);
            let mut saw_agg = false;
            for ch in children {
                if subtree_covers(ch, agg_col) {
                    moments = eval(ch, cons, agg_col);
                    saw_agg = true;
                } else {
                    prob *= eval(ch, cons, agg_col).0;
                }
            }
            if saw_agg {
                (prob * moments.0, prob * moments.1, prob * moments.2)
            } else {
                (prob, prob, prob)
            }
        }
        Node::Leaf(l) => leaf_eval(l, cons, agg_col),
    }
}

fn subtree_covers(node: &Node, col: usize) -> bool {
    match node {
        Node::Leaf(l) => l.col == col,
        Node::Sum { children, .. } | Node::Product { children } => {
            children.iter().any(|c| subtree_covers(c, col))
        }
    }
}

fn leaf_eval(l: &Leaf, cons: &[Constraint], agg_col: usize) -> (f64, f64, f64) {
    let c = &cons[l.col];
    let constrained = c.allowed.is_some() || c.lo.is_finite() || c.hi.is_finite();
    let is_agg = l.col == agg_col;
    if !constrained && !is_agg {
        return (1.0, 1.0, 1.0); // unconstrained non-aggregation column: factor 1
    }
    let valid = 1.0 - l.null_frac;
    let mut p = 0.0;
    let mut m1 = 0.0;
    let mut m2 = 0.0;
    if l.categorical {
        for (code, &prob) in l.probs.iter().enumerate() {
            let ok = match &c.allowed {
                Some(mask) => mask.get(code).copied().unwrap_or(false),
                None => true,
            };
            if ok {
                p += prob;
            }
        }
        // Categorical aggregation only occurs under COUNT: moments unused.
        m1 = p;
        m2 = p;
    } else {
        let k = l.probs.len();
        let width = (l.hi - l.lo) / k as f64;
        for (b, &prob) in l.probs.iter().enumerate() {
            let b_lo = l.lo + b as f64 * width;
            let b_hi = b_lo + width;
            let o_lo = b_lo.max(c.lo);
            let o_hi = b_hi.min(c.hi);
            if o_hi <= o_lo && width > 0.0 {
                continue;
            }
            let frac = if width > 0.0 { ((o_hi - o_lo) / width).clamp(0.0, 1.0) } else { 1.0 };
            let centre = if width > 0.0 { 0.5 * (o_lo + o_hi) } else { b_lo };
            p += prob * frac;
            m1 += prob * frac * centre;
            m2 += prob * frac * centre * centre;
        }
    }
    (valid * p, valid * m1, valid * m2)
}

/// Recursive structure learner over a column-major sample matrix.
struct Learner<'a> {
    matrix: &'a [Vec<f64>],
    categorical: &'a [bool],
    n_codes: &'a [usize],
    cfg: &'a SpnConfig,
}

impl Learner<'_> {
    fn learn(
        &self,
        cols: &[usize],
        rows: &[u32],
        depth: u32,
        rng: &mut rand::rngs::StdRng,
    ) -> Node {
        if cols.len() == 1 {
            return Node::Leaf(self.leaf(cols[0], rows));
        }
        if rows.len() < self.cfg.min_instances || depth >= self.cfg.max_depth {
            // Naive factorization: independence assumed below min_instances.
            return Node::Product {
                children: cols.iter().map(|&c| Node::Leaf(self.leaf(c, rows))).collect(),
            };
        }
        // Column split: connected components of the |r| > threshold graph.
        let comps = self.correlation_components(cols, rows, rng);
        if comps.len() > 1 {
            return Node::Product {
                children: comps
                    .into_iter()
                    .map(|group| self.learn(&group, rows, depth + 1, rng))
                    .collect(),
            };
        }
        // Row split: 2-means clustering.
        match self.kmeans_split(cols, rows, rng) {
            Some((a, b)) => {
                let total = rows.len() as f64;
                let wa = a.len() as f64 / total;
                Node::Sum {
                    weights: vec![wa, 1.0 - wa],
                    children: vec![
                        self.learn(cols, &a, depth + 1, rng),
                        self.learn(cols, &b, depth + 1, rng),
                    ],
                }
            }
            None => Node::Product {
                children: cols.iter().map(|&c| Node::Leaf(self.leaf(c, rows))).collect(),
            },
        }
    }

    fn leaf(&self, col: usize, rows: &[u32]) -> Leaf {
        let data = &self.matrix[col];
        let vals: Vec<f64> = rows
            .iter()
            .map(|&r| data[r as usize])
            .filter(|v| !v.is_nan())
            .collect();
        let null_frac = 1.0 - vals.len() as f64 / rows.len().max(1) as f64;
        if self.categorical[col] {
            let k = self.n_codes[col].max(1);
            let mut probs = vec![0.0; k];
            for &v in &vals {
                probs[(v as usize).min(k - 1)] += 1.0;
            }
            let total: f64 = probs.iter().sum();
            if total > 0.0 {
                for p in &mut probs {
                    *p /= total;
                }
            }
            return Leaf { col, null_frac, probs, lo: 0.0, hi: k as f64, categorical: true };
        }
        let (lo, hi) = vals
            .iter()
            .fold((f64::INFINITY, f64::NEG_INFINITY), |(a, b), &v| (a.min(v), b.max(v)));
        let (lo, hi) = if vals.is_empty() { (0.0, 1.0) } else { (lo, hi.max(lo + 1e-9)) };
        let k = self.cfg.leaf_bins;
        let mut probs = vec![0.0; k];
        let width = (hi - lo) / k as f64;
        for &v in &vals {
            let b = (((v - lo) / width) as usize).min(k - 1);
            probs[b] += 1.0;
        }
        let total: f64 = probs.iter().sum();
        if total > 0.0 {
            for p in &mut probs {
                *p /= total;
            }
        }
        Leaf { col, null_frac, probs, lo, hi, categorical: false }
    }

    /// Groups columns into connected components of the dependence graph, estimated
    /// from |Pearson r| on a row subsample.
    fn correlation_components(
        &self,
        cols: &[usize],
        rows: &[u32],
        rng: &mut rand::rngs::StdRng,
    ) -> Vec<Vec<usize>> {
        let probe: Vec<u32> = if rows.len() > 2000 {
            index_sample(rng, rows.len(), 2000).into_iter().map(|i| rows[i]).collect()
        } else {
            rows.to_vec()
        };
        let d = cols.len();
        let mut parent: Vec<usize> = (0..d).collect();
        fn find(parent: &mut Vec<usize>, x: usize) -> usize {
            if parent[x] != x {
                let root = find(parent, parent[x]);
                parent[x] = root;
            }
            parent[x]
        }
        for a in 0..d {
            for b in a + 1..d {
                if self.correlated(cols[a], cols[b], &probe) {
                    let (ra, rb) = (find(&mut parent, a), find(&mut parent, b));
                    if ra != rb {
                        parent[ra] = rb;
                    }
                }
            }
        }
        let mut groups: std::collections::HashMap<usize, Vec<usize>> =
            std::collections::HashMap::new();
        for i in 0..d {
            let root = find(&mut parent, i);
            groups.entry(root).or_default().push(cols[i]);
        }
        let mut out: Vec<Vec<usize>> = groups.into_values().collect();
        out.sort();
        out
    }

    fn correlated(&self, a: usize, b: usize, rows: &[u32]) -> bool {
        let (xa, xb) = (&self.matrix[a], &self.matrix[b]);
        let mut n = 0.0;
        let (mut sa, mut sb, mut saa, mut sbb, mut sab) = (0.0, 0.0, 0.0, 0.0, 0.0);
        for &r in rows {
            let (va, vb) = (xa[r as usize], xb[r as usize]);
            if va.is_nan() || vb.is_nan() {
                continue;
            }
            n += 1.0;
            sa += va;
            sb += vb;
            saa += va * va;
            sbb += vb * vb;
            sab += va * vb;
        }
        if n < 30.0 {
            return false;
        }
        let cov = sab / n - (sa / n) * (sb / n);
        let var_a = saa / n - (sa / n) * (sa / n);
        let var_b = sbb / n - (sb / n) * (sb / n);
        if var_a <= 0.0 || var_b <= 0.0 {
            return false;
        }
        (cov / (var_a * var_b).sqrt()).abs() > self.cfg.corr_threshold
    }

    /// 2-means over z-scored values of the slice; `None` if degenerate.
    fn kmeans_split(
        &self,
        cols: &[usize],
        rows: &[u32],
        rng: &mut rand::rngs::StdRng,
    ) -> Option<(Vec<u32>, Vec<u32>)> {
        // Column scaling from slice statistics.
        let stats: Vec<(f64, f64)> = cols
            .iter()
            .map(|&c| {
                let mut w = ph_stats::Welford::new();
                for &r in rows {
                    let v = self.matrix[c][r as usize];
                    if !v.is_nan() {
                        w.push(v);
                    }
                }
                (w.mean().unwrap_or(0.0), w.variance_population().unwrap_or(1.0).sqrt().max(1e-9))
            })
            .collect();
        let feature = |r: u32, ci: usize| -> f64 {
            let v = self.matrix[cols[ci]][r as usize];
            if v.is_nan() {
                0.0
            } else {
                (v - stats[ci].0) / stats[ci].1
            }
        };
        // Initialise centroids from two random rows.
        let i0 = rng.gen_range(0..rows.len());
        let mut i1 = rng.gen_range(0..rows.len());
        if i1 == i0 {
            i1 = (i1 + 1) % rows.len();
        }
        let mut c0: Vec<f64> = (0..cols.len()).map(|ci| feature(rows[i0], ci)).collect();
        let mut c1: Vec<f64> = (0..cols.len()).map(|ci| feature(rows[i1], ci)).collect();
        let mut assign = vec![false; rows.len()];
        for _ in 0..10 {
            let mut changed = false;
            for (idx, &r) in rows.iter().enumerate() {
                let (mut d0, mut d1) = (0.0, 0.0);
                for ci in 0..cols.len() {
                    let f = feature(r, ci);
                    d0 += (f - c0[ci]) * (f - c0[ci]);
                    d1 += (f - c1[ci]) * (f - c1[ci]);
                }
                let a = d1 < d0;
                if a != assign[idx] {
                    assign[idx] = a;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
            let mut sum0 = vec![0.0; cols.len()];
            let mut sum1 = vec![0.0; cols.len()];
            let (mut n0, mut n1) = (0.0, 0.0);
            for (idx, &r) in rows.iter().enumerate() {
                let target = if assign[idx] { &mut sum1 } else { &mut sum0 };
                for (ci, t) in target.iter_mut().enumerate() {
                    *t += feature(r, ci);
                }
                if assign[idx] {
                    n1 += 1.0;
                } else {
                    n0 += 1.0;
                }
            }
            if n0 == 0.0 || n1 == 0.0 {
                return None;
            }
            for ci in 0..cols.len() {
                c0[ci] = sum0[ci] / n0;
                c1[ci] = sum1[ci] / n1;
            }
        }
        let a: Vec<u32> =
            rows.iter().zip(&assign).filter(|(_, &s)| !s).map(|(&r, _)| r).collect();
        let b: Vec<u32> =
            rows.iter().zip(&assign).filter(|(_, &s)| s).map(|(&r, _)| r).collect();
        // Reject tiny degenerate splits.
        if a.len() < self.cfg.min_instances / 10 || b.len() < self.cfg.min_instances / 10 {
            return None;
        }
        Some((a, b))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ph_sql::parse_query;
    use ph_types::Column;
    use rand::{Rng, SeedableRng};

    fn bimodal_data(n: usize) -> Dataset {
        let mut rng = rand::rngs::StdRng::seed_from_u64(21);
        let x: Vec<Option<i64>> = (0..n)
            .map(|_| {
                Some(if rng.gen_bool(0.6) {
                    rng.gen_range(0..200)
                } else {
                    rng.gen_range(700..1000)
                })
            })
            .collect();
        let y: Vec<Option<i64>> =
            x.iter().map(|v| Some(v.unwrap() * 2 + rng.gen_range(0..50))).collect();
        let z: Vec<Option<i64>> = (0..n).map(|_| Some(rng.gen_range(0..100))).collect();
        Dataset::builder("t")
            .column(Column::from_ints("x", x))
            .unwrap()
            .column(Column::from_ints("y", y))
            .unwrap()
            .column(Column::from_ints("z", z))
            .unwrap()
            .build()
    }

    fn build(data: &Dataset) -> SpnAqp {
        SpnAqp::build(
            data,
            &SpnConfig { sample_n: data.n_rows(), min_instances: 300, ..Default::default() },
        )
    }

    #[test]
    fn count_accuracy_on_clustered_data() {
        let d = bimodal_data(20_000);
        let spn = build(&d);
        let q = parse_query("SELECT COUNT(x) FROM t WHERE x < 300").unwrap();
        let a = spn.execute(&q).unwrap();
        let t = ph_exact::evaluate(&q, &d).unwrap().scalar().unwrap();
        let rel = (a.value - t).abs() / t;
        assert!(rel < 0.05, "{} vs {t} ({rel})", a.value);
    }

    #[test]
    fn avg_with_cross_column_predicate() {
        let d = bimodal_data(20_000);
        let spn = build(&d);
        let q = parse_query("SELECT AVG(x) FROM t WHERE y > 1400").unwrap();
        let a = spn.execute(&q).unwrap();
        let t = ph_exact::evaluate(&q, &d).unwrap().scalar().unwrap();
        let rel = (a.value - t).abs() / t;
        // Correlated columns: the SPN's cluster split should capture the bimodal
        // dependence reasonably (not perfectly).
        assert!(rel < 0.15, "{} vs {t} ({rel})", a.value);
    }

    #[test]
    fn or_predicates_rejected_like_deepdb() {
        let d = bimodal_data(2_000);
        let spn = build(&d);
        let q = parse_query("SELECT COUNT(x) FROM t WHERE x < 100 OR x > 900").unwrap();
        assert_eq!(spn.execute(&q), Err(Unsupported::OrPredicate));
    }

    #[test]
    fn order_statistics_rejected_like_deepdb() {
        let d = bimodal_data(2_000);
        let spn = build(&d);
        for sql in [
            "SELECT MIN(x) FROM t",
            "SELECT MAX(x) FROM t",
            "SELECT MEDIAN(x) FROM t",
            "SELECT VAR(x) FROM t",
        ] {
            let q = parse_query(sql).unwrap();
            assert!(
                matches!(spn.execute(&q), Err(Unsupported::Aggregate(_))),
                "{sql} must be unsupported"
            );
        }
    }

    #[test]
    fn network_has_structure() {
        let d = bimodal_data(20_000);
        let spn = build(&d);
        assert!(spn.n_nodes() > 3, "expected a non-trivial network, got {}", spn.n_nodes());
        assert!(spn.size_bytes() > 0);
    }

    #[test]
    fn sum_estimate_scales_with_population() {
        let d = bimodal_data(10_000);
        let spn = SpnAqp::build(
            &d,
            &SpnConfig { sample_n: 2_000, min_instances: 200, ..Default::default() },
        );
        let q = parse_query("SELECT SUM(x) FROM t").unwrap();
        let a = spn.execute(&q).unwrap();
        let t = ph_exact::evaluate(&q, &d).unwrap().scalar().unwrap();
        let rel = (a.value - t).abs() / t;
        assert!(rel < 0.10, "{} vs {t} ({rel})", a.value);
    }
}
