//! A DBEst-style per-query-template baseline [21, 40]: kernel density estimation of
//! the predicate column plus piecewise regression of the aggregate column.
//!
//! DBEst/DBEst++ train **one model per query template** `(aggregation column,
//! predicate column)` — the structural property behind the paper's storage
//! accounting ("we include all DBEst++ models required to support the same queries
//! as PairwiseHist", §6) and its construction-time blowup. The paper's §2 catalogue
//! of DBEst++ limitations is reproduced here:
//!
//! * no queries involving more than two columns;
//! * no OR between predicates;
//! * no queries on only categorical columns;
//! * no inequality predicates on date/time columns;
//! * no MIN/MAX/MEDIAN (VAR is answered, with the large errors Table 5 shows).

use std::collections::HashMap;

use ph_sql::{AggFunc, CmpOp, Predicate, Query};
use ph_types::{ColumnType, Dataset};

use crate::{AqpBaseline, Estimate, Unsupported};

/// Training parameters, including the query templates to train models for.
#[derive(Debug, Clone)]
pub struct KdeConfig {
    /// Sample size per template.
    pub sample_n: usize,
    /// Density grid resolution.
    pub grid: usize,
    /// Regression bin count.
    pub reg_bins: usize,
    /// Sampling seed.
    pub seed: u64,
    /// `(aggregation column, predicate column)` templates to train. Empty means
    /// "every ordered pair of numeric columns" — the exhaustive model set the
    /// paper charges DBEst++ with when sizing it against PairwiseHist (§6), at the
    /// corresponding construction cost.
    pub templates: Vec<(String, String)>,
}

impl Default for KdeConfig {
    fn default() -> Self {
        Self { sample_n: 10_000, grid: 256, reg_bins: 64, seed: 0x4b44_4521, templates: Vec::new() }
    }
}

impl KdeConfig {
    /// Default parameters with an explicit template list.
    pub fn for_templates(templates: &[(&str, &str)]) -> Self {
        Self {
            templates: templates
                .iter()
                .map(|&(a, p)| (a.to_string(), p.to_string()))
                .collect(),
            ..Default::default()
        }
    }
}

/// One trained template: density of the predicate column + regressions of the
/// aggregate column on it.
#[derive(Debug, Clone)]
struct TemplateModel {
    lo: f64,
    hi: f64,
    /// Normalised density over `grid` cells (sums to 1).
    density: Vec<f64>,
    /// `E[agg | pred ∈ reg bin]`.
    reg_mean: Vec<f64>,
    /// `E[agg² | pred ∈ reg bin]`.
    reg_meansq: Vec<f64>,
    /// Fraction of rows with both columns non-null.
    valid_frac: f64,
}

/// The DBEst-style engine: a set of per-template models over one table.
#[derive(Debug, Clone)]
pub struct KdeAqp {
    models: HashMap<(usize, usize), TemplateModel>,
    names: Vec<String>,
    types: Vec<ColumnType>,
    n_total: usize,
    grid: usize,
}

impl KdeAqp {
    /// Trains one model per `(aggregation column, predicate column)` template in
    /// `cfg.templates` (every ordered numeric pair when the list is empty).
    ///
    /// Template columns must be numeric; categorical-only templates are skipped
    /// (DBEst++ cannot answer them anyway).
    pub fn build(data: &Dataset, cfg: &KdeConfig) -> Self {
        let sample = data.sample(cfg.sample_n, cfg.seed);
        let templates: Vec<(String, String)> = if cfg.templates.is_empty() {
            let numeric: Vec<&str> = data
                .columns()
                .iter()
                .filter(|c| c.ty().is_numeric())
                .map(|c| c.name())
                .collect();
            numeric
                .iter()
                .flat_map(|&a| numeric.iter().map(move |&p| (a.to_string(), p.to_string())))
                .collect()
        } else {
            cfg.templates.clone()
        };
        let mut models = HashMap::new();
        for (agg_name, pred_name) in &templates {
            let (Ok(agg), Ok(pred)) =
                (sample.column_index(agg_name), sample.column_index(pred_name))
            else {
                continue;
            };
            if !sample.column(agg).ty().is_numeric() || !sample.column(pred).ty().is_numeric()
            {
                continue;
            }
            if models.contains_key(&(agg, pred)) {
                continue;
            }
            if let Some(model) = train(&sample, agg, pred, cfg) {
                models.insert((agg, pred), model);
            }
        }
        Self {
            models,
            names: data.columns().iter().map(|c| c.name().to_string()).collect(),
            types: data.columns().iter().map(|c| c.ty()).collect(),
            n_total: data.n_rows(),
            grid: cfg.grid,
        }
    }

    /// Number of trained templates.
    pub fn n_models(&self) -> usize {
        self.models.len()
    }

    /// Resolves a query to its trained template and predicate interval, rejecting
    /// every shape DBEst++ cannot express — the full check `AqpEngine::prepare`
    /// runs, and the front half of `execute`.
    fn resolve(&self, query: &Query) -> Result<(&TemplateModel, f64, f64), Unsupported> {
        if query.group_by.is_some() {
            return Err(Unsupported::Shape("GROUP BY not supported".into()));
        }
        match query.agg {
            AggFunc::Count | AggFunc::Sum | AggFunc::Avg | AggFunc::Var => {}
            other => return Err(Unsupported::Aggregate(other.name().into())),
        }
        let agg = self
            .names
            .iter()
            .position(|n| n == &query.column)
            .ok_or_else(|| Unsupported::Invalid(format!("unknown column {}", query.column)))?;
        if self.types[agg] == ColumnType::Categorical {
            return Err(Unsupported::Shape("categorical-only queries not supported".into()));
        }

        // Predicate shape: a conjunction over exactly one (numeric, non-timestamp-
        // inequality) column — DBEst's two-column template limit.
        let Some(pred) = &query.predicate else {
            return Err(Unsupported::Shape("DBEst templates need a predicate".into()));
        };
        if pred.has_or() {
            return Err(Unsupported::OrPredicate);
        }
        let cols = pred.columns();
        if cols.len() != 1 {
            return Err(Unsupported::Shape(format!(
                "{} predicate columns; templates support one",
                cols.len()
            )));
        }
        let pcol = self
            .names
            .iter()
            .position(|n| n == cols[0])
            .ok_or_else(|| Unsupported::Invalid(format!("unknown column {}", cols[0])))?;
        if self.types[pcol] == ColumnType::Categorical {
            return Err(Unsupported::Shape("categorical predicate columns not supported".into()));
        }
        let (mut a, mut b) = (f64::NEG_INFINITY, f64::INFINITY);
        collect_interval(pred, self.types[pcol], &mut a, &mut b)?;
        let model = self
            .models
            .get(&(agg, pcol))
            .ok_or_else(|| Unsupported::Shape("no model trained for this template".into()))?;
        Ok((model, a, b))
    }

    /// The cheap shape check behind `AqpEngine::prepare`.
    fn validate(&self, query: &Query) -> Result<(), Unsupported> {
        self.resolve(query).map(|_| ())
    }
}

/// Fits the KDE + regressions for one template from rows where both columns are
/// non-null.
fn train(sample: &Dataset, agg: usize, pred: usize, cfg: &KdeConfig) -> Option<TemplateModel> {
    let mut xs = Vec::new();
    let mut ys = Vec::new();
    let (ca, cp) = (sample.column(agg), sample.column(pred));
    for r in 0..sample.n_rows() {
        if let (Some(y), Some(x)) = (ca.numeric(r), cp.numeric(r)) {
            xs.push(x);
            ys.push(y);
        }
    }
    if xs.len() < 30 {
        return None;
    }
    let n = xs.len() as f64;
    let valid_frac = n / sample.n_rows() as f64;
    let (lo, hi) = xs
        .iter()
        .fold((f64::INFINITY, f64::NEG_INFINITY), |(a, b), &v| (a.min(v), b.max(v)));
    let hi = hi.max(lo + 1e-9);

    // Silverman bandwidth.
    let mean = xs.iter().sum::<f64>() / n;
    let sd = (xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n).sqrt().max(
        (hi - lo) / 1000.0,
    );
    let h = 1.06 * sd * n.powf(-0.2);

    // Gaussian KDE evaluated at grid cell centres (the deliberate O(n·grid) training
    // cost that dominates DBEst construction).
    let g = cfg.grid;
    let width = (hi - lo) / g as f64;
    let mut density = vec![0.0; g];
    let inv = 1.0 / (h * (2.0 * std::f64::consts::PI).sqrt());
    for (b, d) in density.iter_mut().enumerate() {
        let centre = lo + (b as f64 + 0.5) * width;
        let mut acc = 0.0;
        for &x in &xs {
            let z = (centre - x) / h;
            acc += (-0.5 * z * z).exp();
        }
        *d = acc * inv / n;
    }
    // Normalise cell masses to sum to 1.
    let total: f64 = density.iter().map(|d| d * width).sum();
    if total > 0.0 {
        for d in &mut density {
            *d = *d * width / total;
        }
    }

    // Piecewise regression of agg on pred.
    let rb = cfg.reg_bins;
    let rw = (hi - lo) / rb as f64;
    let mut sums = vec![0.0; rb];
    let mut sumsq = vec![0.0; rb];
    let mut counts = vec![0.0; rb];
    for (&x, &y) in xs.iter().zip(&ys) {
        let b = (((x - lo) / rw) as usize).min(rb - 1);
        sums[b] += y;
        sumsq[b] += y * y;
        counts[b] += 1.0;
    }
    let global_mean = ys.iter().sum::<f64>() / n;
    let global_meansq = ys.iter().map(|y| y * y).sum::<f64>() / n;
    let reg_mean: Vec<f64> = (0..rb)
        .map(|b| if counts[b] > 0.0 { sums[b] / counts[b] } else { global_mean })
        .collect();
    let reg_meansq: Vec<f64> = (0..rb)
        .map(|b| if counts[b] > 0.0 { sumsq[b] / counts[b] } else { global_meansq })
        .collect();
    Some(TemplateModel { lo, hi, density, reg_mean, reg_meansq, valid_frac })
}

impl TemplateModel {
    /// Integrates `(mass, mass·E[y], mass·E[y²])` over `pred ∈ [a, b]`.
    fn integrate(&self, a: f64, b: f64) -> (f64, f64, f64) {
        let g = self.density.len();
        let width = (self.hi - self.lo) / g as f64;
        let rb = self.reg_mean.len();
        let rw = (self.hi - self.lo) / rb as f64;
        let mut mass = 0.0;
        let mut m1 = 0.0;
        let mut m2 = 0.0;
        for (cell, &p) in self.density.iter().enumerate() {
            let c_lo = self.lo + cell as f64 * width;
            let c_hi = c_lo + width;
            let o_lo = c_lo.max(a);
            let o_hi = c_hi.min(b);
            if o_hi <= o_lo {
                continue;
            }
            let frac = (o_hi - o_lo) / width;
            let centre = 0.5 * (o_lo + o_hi);
            let r = (((centre - self.lo) / rw) as usize).min(rb - 1);
            mass += p * frac;
            m1 += p * frac * self.reg_mean[r];
            m2 += p * frac * self.reg_meansq[r];
        }
        (mass, m1, m2)
    }
}

impl AqpBaseline for KdeAqp {
    fn name(&self) -> &'static str {
        "kde"
    }

    fn execute(&self, query: &Query) -> Result<Estimate, Unsupported> {
        let (model, a, b) = self.resolve(query)?;
        let (mass, m1, m2) = model.integrate(a.max(model.lo), b.min(model.hi));
        let scale = self.n_total as f64 * model.valid_frac;
        let out = match query.agg {
            AggFunc::Count => mass * scale,
            AggFunc::Sum => m1 * scale,
            AggFunc::Avg => {
                if mass <= 1e-12 {
                    return Err(Unsupported::Shape("empty selection".into()));
                }
                m1 / mass
            }
            AggFunc::Var => {
                if mass <= 1e-12 {
                    return Err(Unsupported::Shape("empty selection".into()));
                }
                let mean = m1 / mass;
                (m2 / mass - mean * mean).max(0.0)
            }
            _ => unreachable!(),
        };
        // DBEst++ provides no error bounds (Table 1).
        Ok(Estimate::unbounded(out))
    }

    fn size_bytes(&self) -> usize {
        // Grid + two regressions + constants, per model.
        self.models.len() * (self.grid * 8 + 2 * 64 * 8 + 48)
    }
}

crate::baseline_engine!(KdeAqp);

/// Collects a conjunctive interval on the single predicate column, rejecting the
/// shapes DBEst++ cannot express.
fn collect_interval(
    pred: &Predicate,
    ty: ColumnType,
    lo: &mut f64,
    hi: &mut f64,
) -> Result<(), Unsupported> {
    match pred {
        Predicate::Or(_) => Err(Unsupported::OrPredicate),
        Predicate::And(children) => {
            for c in children {
                collect_interval(c, ty, lo, hi)?;
            }
            Ok(())
        }
        Predicate::Cond(c) => {
            if ty == ColumnType::Timestamp && c.op != CmpOp::Eq {
                return Err(Unsupported::Shape(
                    "inequality predicates on date/time columns not supported".into(),
                ));
            }
            let lit = c.value.as_f64().ok_or_else(|| {
                Unsupported::Invalid(format!("non-numeric literal on {}", c.column))
            })?;
            match c.op {
                CmpOp::Lt => *hi = hi.min(lit - 1e-9),
                CmpOp::Le => *hi = hi.min(lit),
                CmpOp::Gt => *lo = lo.max(lit + 1e-9),
                CmpOp::Ge => *lo = lo.max(lit),
                CmpOp::Eq => {
                    *lo = lo.max(lit - 0.5);
                    *hi = hi.min(lit + 0.5);
                }
                CmpOp::Ne => {
                    return Err(Unsupported::Shape("<> not expressible in a template".into()))
                }
            }
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ph_sql::parse_query;
    use ph_types::Column;
    use rand::{Rng, SeedableRng};

    fn data(n: usize) -> Dataset {
        let mut rng = rand::rngs::StdRng::seed_from_u64(8);
        let x: Vec<Option<i64>> = (0..n)
            .map(|_| {
                let u: f64 = rng.gen();
                Some((u * u * 1000.0) as i64)
            })
            .collect();
        let y: Vec<Option<i64>> =
            x.iter().map(|v| Some(v.unwrap() * 3 + rng.gen_range(0..100))).collect();
        let t: Vec<Option<i64>> = (0..n).map(|i| Some(1_600_000_000 + i as i64)).collect();
        Dataset::builder("t")
            .column(Column::from_ints("x", x))
            .unwrap()
            .column(Column::from_ints("y", y))
            .unwrap()
            .column(Column::from_timestamps("ts", t))
            .unwrap()
            .build()
    }

    fn build(d: &Dataset) -> KdeAqp {
        KdeAqp::build(
            d,
            &KdeConfig {
                sample_n: d.n_rows(),
                ..KdeConfig::for_templates(&[("y", "x"), ("x", "x"), ("x", "ts")])
            },
        )
    }

    #[test]
    fn count_and_avg_track_truth() {
        let d = data(20_000);
        let kde = build(&d);
        // Tolerances are loose: Silverman-bandwidth KDE over-smooths skewed data,
        // which is exactly the mediocre-accuracy behaviour the paper reports for
        // DBEst-style engines.
        for (sql, tol) in [
            ("SELECT COUNT(y) FROM t WHERE x > 500", 0.12),
            ("SELECT AVG(y) FROM t WHERE x > 250 AND x < 750", 0.08),
            ("SELECT SUM(y) FROM t WHERE x <= 400", 0.12),
        ] {
            let q = parse_query(sql).unwrap();
            let a = kde.execute(&q).unwrap();
            let t = ph_exact::evaluate(&q, &d).unwrap().scalar().unwrap();
            let rel = (a.value - t).abs() / t.abs();
            assert!(rel < tol, "{sql}: {} vs {t} ({rel})", a.value);
        }
    }

    #[test]
    fn unsupported_shapes_match_dbest_limitations() {
        let d = data(5_000);
        let kde = build(&d);
        // OR.
        let q = parse_query("SELECT COUNT(y) FROM t WHERE x < 10 OR x > 900").unwrap();
        assert_eq!(kde.execute(&q), Err(Unsupported::OrPredicate));
        // More than one predicate column (3-column query).
        let q = parse_query("SELECT COUNT(y) FROM t WHERE x > 1 AND ts > 5").unwrap();
        assert!(matches!(kde.execute(&q), Err(Unsupported::Shape(_))));
        // Inequality on a timestamp.
        let q = parse_query("SELECT COUNT(x) FROM t WHERE ts > 1600000500").unwrap();
        assert!(matches!(kde.execute(&q), Err(Unsupported::Shape(_))));
        // MIN/MAX/MEDIAN.
        let q = parse_query("SELECT MIN(y) FROM t WHERE x > 10").unwrap();
        assert!(matches!(kde.execute(&q), Err(Unsupported::Aggregate(_))));
        // No predicate at all.
        let q = parse_query("SELECT COUNT(y) FROM t").unwrap();
        assert!(matches!(kde.execute(&q), Err(Unsupported::Shape(_))));
    }

    #[test]
    fn missing_template_is_reported() {
        let d = data(5_000);
        let kde = KdeAqp::build(&d, &KdeConfig::for_templates(&[("y", "x")]));
        let q = parse_query("SELECT COUNT(x) FROM t WHERE y > 100").unwrap();
        assert!(matches!(kde.execute(&q), Err(Unsupported::Shape(_))));
    }

    #[test]
    fn storage_grows_with_templates() {
        let d = data(5_000);
        let one = KdeAqp::build(&d, &KdeConfig::for_templates(&[("y", "x")]));
        let three = build(&d);
        assert!(three.n_models() > one.n_models());
        assert!(three.size_bytes() > one.size_bytes());
    }

    #[test]
    fn var_is_supported_but_weak() {
        // The paper's Table 5 shows DBEst++ VAR errors near 100%; ours only needs to
        // be defined, not good.
        let d = data(10_000);
        let kde = build(&d);
        let q = parse_query("SELECT VAR(y) FROM t WHERE x > 100").unwrap();
        assert!(kde.execute(&q).unwrap().value >= 0.0);
    }
}
