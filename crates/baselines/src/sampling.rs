//! Classical uniform-sampling AQP with CLT confidence bounds.

use ph_sql::{AggFunc, Query};
use ph_stats::{normal_quantile, Welford};
use ph_types::Dataset;

use crate::{AqpBaseline, Estimate, Unsupported};

/// Construction parameters for the sampling baseline.
#[derive(Debug, Clone)]
pub struct SamplingConfig {
    /// Rows to sample.
    pub sample_n: usize,
    /// Sampling seed (deterministic).
    pub seed: u64,
}

impl Default for SamplingConfig {
    fn default() -> Self {
        Self { sample_n: 100_000, seed: 0x5341_4d50 }
    }
}

/// Uniform row sample + scan-time estimation (the classical AQP recipe behind
/// BlinkDB/VerdictDB-style systems).
///
/// COUNT and SUM estimates scale by `1/ρ`; confidence bounds come from the central
/// limit theorem with the finite-population correction. MIN/MAX/MEDIAN are the sample
/// statistics (no useful CLT bounds exist for extremes — the usual sampling-AQP
/// weakness the paper contrasts with histogram synopses' outlier recall).
#[derive(Debug, Clone)]
pub struct SamplingAqp {
    sample: Dataset,
    n_total: usize,
    z: f64,
}

impl SamplingAqp {
    /// Draws a uniform sample of `data` per `cfg` (deterministic in the seed).
    pub fn build(data: &Dataset, cfg: &SamplingConfig) -> Self {
        Self {
            sample: data.sample(cfg.sample_n, cfg.seed),
            n_total: data.n_rows(),
            z: normal_quantile(0.99),
        }
    }

    /// Resolves a query against the sample schema, rejecting everything `execute`
    /// cannot answer — the single source of truth for both `AqpEngine::prepare`
    /// and the scan itself.
    fn resolve(
        &self,
        query: &Query,
    ) -> Result<(usize, Option<ph_exact::CompiledPredicate>), Unsupported> {
        if query.group_by.is_some() {
            return Err(Unsupported::Shape("GROUP BY handled per-group by the harness".into()));
        }
        let agg_col = self
            .sample
            .column_index(&query.column)
            .map_err(|e| Unsupported::Invalid(e.to_string()))?;
        let pred = match &query.predicate {
            Some(p) => Some(
                ph_exact::CompiledPredicate::compile(p, &self.sample)
                    .map_err(|e| Unsupported::Invalid(e.to_string()))?,
            ),
            None => None,
        };
        Ok((agg_col, pred))
    }

    /// The cheap shape check behind `AqpEngine::prepare`.
    fn validate(&self, query: &Query) -> Result<(), Unsupported> {
        self.resolve(query).map(|_| ())
    }

    /// Sampling ratio `ρ`.
    pub fn rho(&self) -> f64 {
        (self.sample.n_rows() as f64 / self.n_total as f64).min(1.0)
    }

    fn fpc(&self) -> f64 {
        let n = self.n_total as f64;
        let ns = self.sample.n_rows() as f64;
        if ns >= n || n <= 1.0 {
            0.0
        } else {
            (n - ns) / (n - 1.0)
        }
    }
}

impl AqpBaseline for SamplingAqp {
    fn name(&self) -> &'static str {
        "sampling"
    }

    fn execute(&self, query: &Query) -> Result<Estimate, Unsupported> {
        let (agg_col, pred) = self.resolve(query)?;

        let ns = self.sample.n_rows();
        let col = self.sample.column(agg_col);
        let rho = self.rho();
        let fpc = self.fpc();

        // One scan: matched non-null values + the per-row contribution accumulator
        // needed for the CLT standard error of the scaled estimators.
        let mut matched: Vec<f64> = Vec::new();
        let mut contrib = Welford::new(); // per-sample-row contribution (0 for misses)
        for r in 0..ns {
            let pass = pred.as_ref().is_none_or(|p| p.eval(&self.sample, r));
            let v = if col.ty() == ph_types::ColumnType::Categorical {
                col.is_valid(r).then_some(0.0)
            } else {
                col.numeric(r)
            };
            match (pass, v) {
                (true, Some(x)) => {
                    matched.push(x);
                    contrib.push(match query.agg {
                        AggFunc::Count => 1.0,
                        AggFunc::Sum => x,
                        _ => 1.0,
                    });
                }
                _ => contrib.push(0.0),
            }
        }
        let m = matched.len() as f64;

        let approx = match query.agg {
            AggFunc::Count | AggFunc::Sum => {
                let est = contrib.mean().unwrap_or(0.0) * ns as f64 / rho;
                let sd = contrib.variance_sample().unwrap_or(0.0).sqrt();
                let se = sd * (ns as f64).sqrt() / rho * fpc.sqrt();
                Estimate::with_bounds(est, est - self.z * se, est + self.z * se)
            }
            AggFunc::Avg => {
                if matched.is_empty() {
                    return Err(Unsupported::Shape("empty selection".into()));
                }
                let mut w = Welford::new();
                for &x in &matched {
                    w.push(x);
                }
                let est = w.mean().unwrap();
                let se = (w.variance_sample().unwrap_or(0.0) / m).sqrt() * fpc.sqrt();
                Estimate::with_bounds(est, est - self.z * se, est + self.z * se)
            }
            AggFunc::Var => {
                if matched.is_empty() {
                    return Err(Unsupported::Shape("empty selection".into()));
                }
                let mut w = Welford::new();
                for &x in &matched {
                    w.push(x);
                }
                let est = w.variance_population().unwrap();
                // Asymptotic se of the variance under normality: var·√(2/m).
                let se = est * (2.0 / m).sqrt();
                Estimate::with_bounds(est, (est - self.z * se).max(0.0), est + self.z * se)
            }
            AggFunc::Min | AggFunc::Max => {
                if matched.is_empty() {
                    return Err(Unsupported::Shape("empty selection".into()));
                }
                let est = matched
                    .iter()
                    .copied()
                    .fold(if query.agg == AggFunc::Min { f64::INFINITY } else { f64::NEG_INFINITY }, |a, b| {
                        if query.agg == AggFunc::Min {
                            a.min(b)
                        } else {
                            a.max(b)
                        }
                    });
                Estimate::unbounded(est)
            }
            AggFunc::Median => {
                if matched.is_empty() {
                    return Err(Unsupported::Shape("empty selection".into()));
                }
                matched.sort_by(|a, b| a.total_cmp(b));
                let mid = matched.len() / 2;
                let est = if matched.len() % 2 == 1 {
                    matched[mid]
                } else {
                    0.5 * (matched[mid - 1] + matched[mid])
                };
                // Order-statistic confidence interval: ranks m/2 ± z√m/2.
                let spread = (self.z * m.sqrt() / 2.0).ceil() as usize;
                let lo_idx = mid.saturating_sub(spread);
                let hi_idx = (mid + spread).min(matched.len() - 1);
                Estimate::with_bounds(est, matched[lo_idx], matched[hi_idx])
            }
        };
        Ok(approx)
    }

    fn size_bytes(&self) -> usize {
        self.sample.heap_size()
    }
}

crate::baseline_engine!(SamplingAqp);

#[cfg(test)]
mod tests {
    use super::*;
    use ph_sql::parse_query;
    use ph_types::Column;
    use rand::{Rng, SeedableRng};

    fn data(n: usize) -> Dataset {
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        Dataset::builder("t")
            .column(Column::from_ints(
                "x",
                (0..n).map(|_| Some(rng.gen_range(0..1000))).collect(),
            ))
            .unwrap()
            .build()
    }

    #[test]
    fn count_estimate_and_bounds() {
        let d = data(100_000);
        let s = SamplingAqp::build(&d, &SamplingConfig { sample_n: 10_000, seed: 1 });
        let q = parse_query("SELECT COUNT(x) FROM t WHERE x < 500").unwrap();
        let a = s.execute(&q).unwrap();
        let truth = ph_exact::evaluate(&q, &d).unwrap().scalar().unwrap();
        assert!((a.value - truth).abs() / truth < 0.05, "{} vs {truth}", a.value);
        assert!(a.contains(truth), "CLT bounds should contain the truth");
    }

    #[test]
    fn avg_tracks_truth() {
        let d = data(50_000);
        let s = SamplingAqp::build(&d, &SamplingConfig { sample_n: 5_000, seed: 2 });
        let q = parse_query("SELECT AVG(x) FROM t WHERE x >= 250").unwrap();
        let a = s.execute(&q).unwrap();
        let truth = ph_exact::evaluate(&q, &d).unwrap().scalar().unwrap();
        assert!((a.value - truth).abs() / truth < 0.03);
    }

    #[test]
    fn full_sample_has_zero_width_count_bounds() {
        let d = data(1_000);
        let s = SamplingAqp::build(&d, &SamplingConfig { sample_n: 1_000, seed: 3 });
        let q = parse_query("SELECT COUNT(x) FROM t").unwrap();
        let a = s.execute(&q).unwrap();
        assert_eq!(a.value, 1000.0);
        assert_eq!(a.lo, a.hi, "fpc = 0 for a full sample");
    }

    #[test]
    fn min_is_biased_upward_on_small_samples() {
        // The classical sampling failure: sample MIN >= true MIN always.
        let d = data(100_000);
        let s = SamplingAqp::build(&d, &SamplingConfig { sample_n: 100, seed: 4 });
        let q = parse_query("SELECT MIN(x) FROM t").unwrap();
        let a = s.execute(&q).unwrap();
        let truth = ph_exact::evaluate(&q, &d).unwrap().scalar().unwrap();
        assert!(a.value >= truth);
    }

    #[test]
    fn empty_selection_unsupported_for_avg() {
        let d = data(1_000);
        let s = SamplingAqp::build(&d, &SamplingConfig { sample_n: 1_000, seed: 5 });
        let q = parse_query("SELECT AVG(x) FROM t WHERE x > 99999").unwrap();
        assert!(s.execute(&q).is_err());
    }
}
