//! Baseline AQP engines the paper evaluates PairwiseHist against.
//!
//! Three families, each reproducing the *defining behaviour* of its published
//! counterpart (full fidelity notes in DESIGN.md §2):
//!
//! * [`SamplingAqp`] — classical uniform-sampling AQP with CLT confidence bounds,
//!   the reference point behind BlinkDB/VerdictDB-style systems (Table 1 context);
//! * [`SpnAqp`] — a sum-product network in the style of DeepDB's RSPNs \[20\]:
//!   k-means row clustering at sum nodes, correlation-partitioned column groups at
//!   product nodes, per-column histogram leaves. Like DeepDB it supports
//!   COUNT/SUM/AVG and **rejects OR predicates** (§2 of the paper documents that
//!   DeepDB does not support OR despite claiming to);
//! * [`KdeAqp`] — DBEst-style per-query-template models \[21, 40\]: kernel density
//!   estimator for the predicate column plus piecewise regression of the aggregate
//!   column, with DBEst's structural limits (one model per template, ≤ 2 columns,
//!   no OR, no MIN/MAX/MEDIAN).
//!
//! All three expose [`AqpBaseline`] (the scalar-only baseline interface the bench
//! harness drives) **and** the workspace-wide [`ph_core::AqpEngine`] trait, so any
//! engine in the workspace — PairwiseHist, the exact scan, or a baseline — answers
//! the same parsed queries and returns the same [`Estimate`]/`AqpAnswer` types.

// Debug/scaffolding egress is banned in library code: a stray println corrupts
// bin protocols (ph-serve speaks HTTP on stdout-adjacent fds) and dbg!/todo!
// are development leftovers. ph-lint R2 bans the panicking macros; these
// clippy denies catch the printing/scaffolding ones.
#![deny(clippy::dbg_macro, clippy::todo, clippy::unimplemented)]
#![deny(clippy::print_stdout, clippy::print_stderr)]
mod kde;
mod sampling;
mod spn;

pub use kde::{KdeAqp, KdeConfig};
pub use sampling::{SamplingAqp, SamplingConfig};
pub use spn::{SpnAqp, SpnConfig};

/// The shared bounded-estimate type all engines answer with.
pub use ph_core::Estimate;

/// Former baseline-only answer type, now unified with [`ph_core::Estimate`]
/// (identical fields; `unbounded` and `contains` moved with it).
#[deprecated(since = "0.2.0", note = "use ph_core::Estimate (re-exported here as Estimate)")]
pub type Approx = Estimate;

/// Why a baseline declined a query — the paper's §2/§6 catalogue of unsupported
/// query shapes drives workload support accounting.
#[derive(Debug, Clone, PartialEq)]
pub enum Unsupported {
    /// OR connectives (DeepDB, DBEst++).
    OrPredicate,
    /// Aggregate function outside the engine's repertoire.
    Aggregate(String),
    /// Too many / wrong-column predicates for the model.
    Shape(String),
    /// Malformed query for this schema.
    Invalid(String),
}

impl std::fmt::Display for Unsupported {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Unsupported::OrPredicate => write!(f, "OR predicates not supported"),
            Unsupported::Aggregate(a) => write!(f, "aggregate {a} not supported"),
            Unsupported::Shape(s) => write!(f, "unsupported query shape: {s}"),
            Unsupported::Invalid(s) => write!(f, "invalid query: {s}"),
        }
    }
}

impl std::error::Error for Unsupported {}

impl From<Unsupported> for ph_types::PhError {
    fn from(e: Unsupported) -> Self {
        match e {
            Unsupported::Invalid(s) => ph_types::PhError::InvalidQuery(s),
            other => ph_types::PhError::Unsupported(other.to_string()),
        }
    }
}

/// Common baseline interface: answer a parsed query approximately, or say why not.
pub trait AqpBaseline {
    /// Engine name for experiment tables.
    fn name(&self) -> &'static str;

    /// Executes a (scalar) query.
    fn execute(&self, query: &ph_sql::Query) -> Result<Estimate, Unsupported>;

    /// Serialized model size in bytes (the paper's synopsis-size metric).
    fn size_bytes(&self) -> usize;
}

/// Implements [`ph_core::AqpEngine`] for a baseline on top of [`AqpBaseline`] plus
/// a per-engine `validate(&self, &Query) -> Result<(), Unsupported>` method (the
/// cheap shape check `prepare` runs instead of a full execution).
macro_rules! baseline_engine {
    ($ty:ty) => {
        impl ph_core::AqpEngine for $ty {
            fn name(&self) -> &'static str {
                crate::AqpBaseline::name(self)
            }

            fn footprint(&self) -> usize {
                self.size_bytes()
            }

            fn prepare(
                &self,
                query: &ph_sql::Query,
            ) -> Result<ph_core::Prepared, ph_types::PhError> {
                self.validate(query)?;
                Ok(ph_core::Prepared::new(
                    crate::AqpBaseline::name(self),
                    query.clone(),
                    Box::new(()),
                ))
            }

            fn execute(
                &self,
                prepared: &ph_core::Prepared,
            ) -> Result<ph_core::AqpAnswer, ph_types::PhError> {
                prepared.check_engine(crate::AqpBaseline::name(self))?;
                let est = crate::AqpBaseline::execute(self, prepared.query())?;
                Ok(ph_core::AqpAnswer::Scalar(Some(est)))
            }
        }
    };
}
pub(crate) use baseline_engine;

#[cfg(test)]
mod tests {
    use super::*;

    /// `ph_core::AqpEngine` carries `Send + Sync` as a supertrait: every baseline
    /// must stay shareable across reader threads (no interior mutability). This
    /// pins that at compile time for all three engines.
    #[test]
    fn baselines_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SamplingAqp>();
        assert_send_sync::<SpnAqp>();
        assert_send_sync::<KdeAqp>();
        assert_send_sync::<Box<dyn ph_core::AqpEngine>>();
    }
}
