//! Baseline AQP engines the paper evaluates PairwiseHist against.
//!
//! Three families, each reproducing the *defining behaviour* of its published
//! counterpart (full fidelity notes in DESIGN.md §2):
//!
//! * [`SamplingAqp`] — classical uniform-sampling AQP with CLT confidence bounds,
//!   the reference point behind BlinkDB/VerdictDB-style systems (Table 1 context);
//! * [`SpnAqp`] — a sum-product network in the style of DeepDB's RSPNs [20]:
//!   k-means row clustering at sum nodes, correlation-partitioned column groups at
//!   product nodes, per-column histogram leaves. Like DeepDB it supports
//!   COUNT/SUM/AVG and **rejects OR predicates** (§2 of the paper documents that
//!   DeepDB does not support OR despite claiming to);
//! * [`KdeAqp`] — DBEst-style per-query-template models [21, 40]: kernel density
//!   estimator for the predicate column plus piecewise regression of the aggregate
//!   column, with DBEst's structural limits (one model per template, ≤ 2 columns,
//!   no OR, no MIN/MAX/MEDIAN).
//!
//! All three expose [`AqpBaseline`], so the benchmark harness can drive every engine
//! with the same parsed queries it gives PairwiseHist and the exact engine.

mod kde;
mod sampling;
mod spn;

pub use kde::{KdeAqp, KdeConfig};
pub use sampling::SamplingAqp;
pub use spn::{SpnAqp, SpnConfig};

/// An approximate answer from a baseline engine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Approx {
    /// Point estimate.
    pub value: f64,
    /// Lower confidence bound (equal to `value` for engines without bounds).
    pub lo: f64,
    /// Upper confidence bound.
    pub hi: f64,
}

impl Approx {
    /// An estimate without bounds.
    pub fn unbounded(value: f64) -> Self {
        Self { value, lo: value, hi: value }
    }

    /// Whether the engine's bounds contain `truth`.
    pub fn contains(&self, truth: f64) -> bool {
        self.lo <= truth && truth <= self.hi
    }
}

/// Why a baseline declined a query — the paper's §2/§6 catalogue of unsupported
/// query shapes drives workload support accounting.
#[derive(Debug, Clone, PartialEq)]
pub enum Unsupported {
    /// OR connectives (DeepDB, DBEst++).
    OrPredicate,
    /// Aggregate function outside the engine's repertoire.
    Aggregate(String),
    /// Too many / wrong-column predicates for the model.
    Shape(String),
    /// Malformed query for this schema.
    Invalid(String),
}

impl std::fmt::Display for Unsupported {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Unsupported::OrPredicate => write!(f, "OR predicates not supported"),
            Unsupported::Aggregate(a) => write!(f, "aggregate {a} not supported"),
            Unsupported::Shape(s) => write!(f, "unsupported query shape: {s}"),
            Unsupported::Invalid(s) => write!(f, "invalid query: {s}"),
        }
    }
}

/// Common baseline interface: answer a parsed query approximately, or say why not.
pub trait AqpBaseline {
    /// Engine name for experiment tables.
    fn name(&self) -> &'static str;

    /// Executes a (scalar) query.
    fn execute(&self, query: &ph_sql::Query) -> Result<Approx, Unsupported>;

    /// Serialized model size in bytes (the paper's synopsis-size metric).
    fn size_bytes(&self) -> usize;
}
