//! Concurrency and exposition contracts for the observability substrate:
//!
//! 1. **Monotone counters** — readers sampling a counter while writers
//!    increment it never observe a decrease, and the final value is exact.
//! 2. **Exposition well-formedness** — a registry scraped mid-write renders
//!    Prometheus text that parses line by line: every line is a `# HELP`,
//!    a `# TYPE`, or a `name{labels} value` sample with a finite value.
//! 3. **Slow-ring cap** — concurrent offers never grow the ring past its cap.
//! 4. **Span-ring torn reads** — snapshots taken while other threads push
//!    traces only ever decode self-consistent records (property-tested:
//!    every span's payload is a checksum of its identity, so a torn or
//!    misframed read cannot go unnoticed).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use proptest::prelude::*;

use ph_obs::trace::ALL_STAGES;
use ph_obs::{Registry, SlowQuery, SlowRing, SpanRec, SpanRing, Stage};

#[test]
fn counters_are_monotone_under_concurrent_readers() {
    const WRITERS: usize = 4;
    const INCS: u64 = 20_000;
    let registry = Registry::new();
    let counter = registry.counter("ph_test_total", "Test increments.", &[]);
    let done = AtomicBool::new(false);

    std::thread::scope(|scope| {
        for _ in 0..WRITERS {
            let counter = Arc::clone(&counter);
            scope.spawn(move || {
                for _ in 0..INCS {
                    counter.inc();
                }
            });
        }
        let reader = Arc::clone(&counter);
        let done = &done;
        scope.spawn(move || {
            let mut last = 0u64;
            while !done.load(Ordering::Relaxed) {
                let now = reader.get();
                assert!(now >= last, "counter went backwards: {last} -> {now}");
                last = now;
            }
        });
        // Writers joined by scope exit would race the reader's `done` check;
        // spawn a closer that flips the flag once the count stabilises.
        let closer = Arc::clone(&counter);
        scope.spawn(move || {
            while closer.get() < WRITERS as u64 * INCS {
                std::thread::yield_now();
            }
            done.store(true, Ordering::Relaxed);
        });
    });
    assert_eq!(counter.get(), WRITERS as u64 * INCS);
}

/// Splits one sample line into (name, labels, value-text), or panics with the
/// offending line. Grammar: `name['{'k="v",...'}'] ' ' float`.
fn parse_sample(line: &str) -> (String, Vec<(String, String)>, f64) {
    let (head, value) = line.rsplit_once(' ').unwrap_or_else(|| panic!("no value: {line:?}"));
    let value: f64 = value.parse().unwrap_or_else(|e| panic!("bad value in {line:?}: {e}"));
    let (name, labels) = match head.split_once('{') {
        None => (head.to_string(), Vec::new()),
        Some((name, rest)) => {
            let body = rest.strip_suffix('}').unwrap_or_else(|| panic!("unclosed {{: {line:?}"));
            let labels = body
                .split(',')
                .filter(|p| !p.is_empty())
                .map(|pair| {
                    let (k, v) = pair.split_once('=').unwrap_or_else(|| panic!("bad label in {line:?}"));
                    let v = v.strip_prefix('"').and_then(|v| v.strip_suffix('"'));
                    (k.to_string(), v.unwrap_or_else(|| panic!("unquoted label in {line:?}")).to_string())
                })
                .collect();
            (name.to_string(), labels)
        }
    };
    assert!(
        name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':'),
        "bad metric name in {line:?}"
    );
    (name, labels, value)
}

#[test]
fn exposition_parses_line_by_line_while_writers_run() {
    let registry = Arc::new(Registry::new());
    let hits = registry.counter("ph_hits_total", "Hits.", &[("endpoint", "query")]);
    let open = registry.gauge("ph_open", "Open connections.", &[]);
    let lat = registry.histogram("ph_lat_seconds", "Latency.", 1e-6, &[("endpoint", "query")]);
    let done = AtomicBool::new(false);

    std::thread::scope(|scope| {
        let done = &done;
        scope.spawn(|| {
            let mut i = 0u64;
            while !done.load(Ordering::Relaxed) {
                hits.inc();
                open.set((i % 7) as i64);
                lat.observe(i % 100_000);
                i += 1;
            }
        });
        for _ in 0..50 {
            let text = registry.render();
            let mut seen_help = std::collections::HashSet::new();
            let mut seen_type = std::collections::HashSet::new();
            for line in text.lines() {
                if let Some(rest) = line.strip_prefix("# HELP ") {
                    let (family, help) = rest.split_once(' ').expect("HELP without text");
                    assert!(!help.trim().is_empty(), "empty help for {family}");
                    seen_help.insert(family.to_string());
                } else if let Some(rest) = line.strip_prefix("# TYPE ") {
                    let (family, kind) = rest.split_once(' ').expect("TYPE without kind");
                    assert!(matches!(kind, "counter" | "gauge" | "histogram"), "{line:?}");
                    assert!(seen_help.contains(family), "TYPE before HELP: {line:?}");
                    seen_type.insert(family.to_string());
                } else if !line.is_empty() {
                    let (name, labels, value) = parse_sample(line);
                    let family = name
                        .strip_suffix("_bucket")
                        .or_else(|| name.strip_suffix("_sum"))
                        .or_else(|| name.strip_suffix("_count"))
                        .filter(|f| seen_type.contains(*f))
                        .unwrap_or(&name);
                    assert!(seen_type.contains(family), "sample before TYPE: {line:?}");
                    assert!(value.is_finite() || value.is_infinite(), "NaN sample: {line:?}");
                    if name.ends_with("_bucket") {
                        assert!(labels.iter().any(|(k, _)| k == "le"), "bucket without le: {line:?}");
                    }
                }
            }
            // All three families made it out, including the +Inf bucket.
            for f in ["ph_hits_total", "ph_open", "ph_lat_seconds"] {
                assert!(seen_type.contains(f), "missing family {f}");
            }
            assert!(text.contains("le=\"+Inf\""), "histogram without +Inf bucket");
        }
        done.store(true, Ordering::Relaxed);
    });
}

#[test]
fn slow_ring_never_exceeds_cap_under_concurrent_offers() {
    const CAP: usize = 16;
    let ring = SlowRing::new(CAP, 100);
    let done = AtomicBool::new(false);

    std::thread::scope(|scope| {
        let ring = &ring;
        let done = &done;
        for t in 0..4u64 {
            scope.spawn(move || {
                for i in 0..5_000u64 {
                    ring.offer(SlowQuery {
                        fingerprint: t << 32 | i,
                        total_us: 100 + i, // all at/over threshold
                        status: 200,
                        unix_ms: 0,
                        spans: Vec::new(),
                    });
                }
            });
        }
        scope.spawn(move || {
            while !done.load(Ordering::Relaxed) {
                assert!(ring.len() <= CAP, "ring grew past cap: {}", ring.len());
                assert!(ring.snapshot().len() <= CAP);
            }
        });
        scope.spawn(|| {
            while ring.len() < CAP {
                std::thread::yield_now();
            }
            done.store(true, Ordering::Relaxed);
        });
    });
    assert_eq!(ring.len(), CAP);
    // Sub-threshold offers are filtered even with room conceptually "free".
    assert!(!ring.offer(SlowQuery { fingerprint: 0, total_us: 99, status: 200, unix_ms: 0, spans: Vec::new() }));
}

/// The self-checking span payload: `dur_ns` is a hash of the span's identity,
/// so any torn/misframed decode breaks the relation.
fn check_dur(trace_id: u64, id: u32) -> u64 {
    trace_id.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(u64::from(id)) % 1_000_000
}

fn mk_trace(trace_id: u64, n_spans: usize) -> Vec<SpanRec> {
    (0..n_spans)
        .map(|i| {
            let id = (i + 1) as u32;
            SpanRec {
                id,
                parent: if i == 0 { 0 } else { 1 },
                stage: ALL_STAGES[(trace_id as usize + i) % ALL_STAGES.len()],
                start_ns: trace_id.wrapping_mul(10_000) + (i as u64) * 100,
                dur_ns: check_dur(trace_id, id),
            }
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Concurrent `push_trace` / `snapshot`: every decoded span satisfies the
    /// identity checksum, the cap holds at every observation point, and after
    /// the writers finish the newest spans decode exactly.
    #[test]
    fn span_ring_snapshots_are_torn_read_safe(
        cap in 2usize..400,
        traces_per_writer in 1u64..120,
        spans_per_trace in 1usize..6,
    ) {
        let ring = SpanRing::new(cap);
        std::thread::scope(|scope| {
            for w in 0..2u64 {
                let ring = &ring;
                scope.spawn(move || {
                    for t in 0..traces_per_writer {
                        let trace_id = (w << 48) | t;
                        ring.push_trace(trace_id, &mk_trace(trace_id, spans_per_trace));
                    }
                });
            }
            // Reader races the writers; validity must hold on every snapshot.
            let ring = &ring;
            scope.spawn(move || {
                for _ in 0..200 {
                    let snap = ring.snapshot();
                    assert!(snap.len() <= ring.cap(), "{} > cap {}", snap.len(), ring.cap());
                    for d in &snap {
                        assert_eq!(
                            d.rec.dur_ns,
                            check_dur(d.trace_id, d.rec.id),
                            "torn decode: {d:?}"
                        );
                    }
                }
            });
        });

        // Quiescent: full re-validation, including stage/start reconstruction.
        let snap = ring.snapshot();
        prop_assert!(snap.len() <= ring.cap());
        prop_assert!(ring.len() == snap.len());
        for d in &snap {
            let i = (d.rec.id - 1) as usize;
            prop_assert_eq!(d.rec.dur_ns, check_dur(d.trace_id, d.rec.id));
            prop_assert_eq!(d.rec.stage, ALL_STAGES[(d.trace_id as usize + i) % ALL_STAGES.len()]);
            prop_assert_eq!(d.rec.start_ns, d.trace_id.wrapping_mul(10_000) + (i as u64) * 100);
        }
        // The encoded rings stay within the structural byte budget: two half
        // buffers of ~14 bytes/span each, with Vec-doubling headroom.
        prop_assert!(ring.mem_bytes() <= ring.cap() * 28 + 256, "{} bytes", ring.mem_bytes());
    }

    /// Traces built through the public span API stay well-formed: IDs unique,
    /// parents precede children, nesting reflected in parent links.
    #[test]
    fn trace_span_nesting_is_well_formed(depth in 1usize..6, breadth in 1usize..4) {
        ph_obs::trace::install(ph_obs::Trace::new());
        fn nest(depth: usize, breadth: usize) {
            if depth == 0 {
                return;
            }
            for _ in 0..breadth {
                let _g = ph_obs::span(Stage::Execute);
                nest(depth - 1, breadth);
            }
        }
        nest(depth, breadth);
        let trace = ph_obs::trace::take().expect("trace stays installed");
        let spans = trace.into_spans();
        let mut n = 0usize;
        for d in (0..depth).rev() {
            n += breadth.pow((depth - d) as u32);
        }
        prop_assert_eq!(spans.len(), n);
        let mut ids: Vec<u32> = spans.iter().map(|s| s.id).collect();
        ids.sort_unstable();
        ids.dedup();
        prop_assert_eq!(ids.len(), spans.len(), "duplicate span IDs");
        for s in &spans {
            prop_assert!(s.parent < s.id, "parent {} !< id {}", s.parent, s.id);
        }
    }
}
