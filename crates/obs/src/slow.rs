//! Slow-query forensics: the last N requests whose total latency crossed a
//! threshold, each with its full stage breakdown.
//!
//! Entries carry the query's **SQL fingerprint** (the same canonical-form
//! FNV the plan cache and PHQL1 query log key on), never raw text — the
//! surface stays log-compatible and leaks no literals. The ring is a mutexed
//! `VecDeque` touched only when a query is actually slow, so the fast path
//! pays one threshold comparison.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, PoisonError};

use crate::trace::SpanRec;

/// One slow request: identity, outcome, and where the time went.
#[derive(Debug, Clone)]
pub struct SlowQuery {
    /// Canonical SQL fingerprint (plan-cache / query-log compatible).
    pub fingerprint: u64,
    /// End-to-end latency in microseconds.
    pub total_us: u64,
    /// HTTP status the request resolved to.
    pub status: u16,
    /// Wall-clock completion time, milliseconds since the Unix epoch
    /// (captured by the caller — the ring itself never reads a clock).
    pub unix_ms: u64,
    /// Full span breakdown of the request.
    pub spans: Vec<SpanRec>,
}

/// Bounded ring of recent slow queries with a runtime-adjustable threshold.
#[derive(Debug)]
pub struct SlowRing {
    entries: Mutex<VecDeque<SlowQuery>>,
    cap: usize,
    threshold_us: AtomicU64,
}

impl SlowRing {
    /// A ring keeping the most recent `cap` queries slower than
    /// `threshold_us` microseconds.
    pub fn new(cap: usize, threshold_us: u64) -> SlowRing {
        SlowRing {
            entries: Mutex::new(VecDeque::with_capacity(cap.max(1))),
            cap: cap.max(1),
            threshold_us: AtomicU64::new(threshold_us),
        }
    }

    /// Current threshold in microseconds.
    pub fn threshold_us(&self) -> u64 {
        self.threshold_us.load(Ordering::Relaxed)
    }

    /// Adjusts the threshold (takes effect for subsequent offers).
    pub fn set_threshold_us(&self, v: u64) {
        self.threshold_us.store(v, Ordering::Relaxed);
    }

    /// Maximum retained entries.
    pub fn cap(&self) -> usize {
        self.cap
    }

    /// Records `q` if it crossed the threshold; returns whether it was kept.
    /// The oldest entry is evicted once the ring is full.
    pub fn offer(&self, q: SlowQuery) -> bool {
        if q.total_us < self.threshold_us() {
            return false;
        }
        let mut entries = self.entries.lock().unwrap_or_else(PoisonError::into_inner);
        while entries.len() >= self.cap {
            entries.pop_front();
        }
        entries.push_back(q);
        true
    }

    /// All retained entries, most recent last.
    pub fn snapshot(&self) -> Vec<SlowQuery> {
        self.entries.lock().unwrap_or_else(PoisonError::into_inner).iter().cloned().collect()
    }

    /// Number of retained entries.
    pub fn len(&self) -> usize {
        self.entries.lock().unwrap_or_else(PoisonError::into_inner).len()
    }

    /// Whether the ring is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q(fp: u64, total_us: u64) -> SlowQuery {
        SlowQuery { fingerprint: fp, total_us, status: 200, unix_ms: 0, spans: Vec::new() }
    }

    #[test]
    fn threshold_filters_and_cap_holds() {
        let ring = SlowRing::new(3, 1000);
        assert!(!ring.offer(q(1, 999)));
        for i in 0..10 {
            assert!(ring.offer(q(i, 1000 + i)));
        }
        assert_eq!(ring.len(), 3);
        let snap = ring.snapshot();
        let fps: Vec<u64> = snap.iter().map(|e| e.fingerprint).collect();
        assert_eq!(fps, vec![7, 8, 9]);
    }

    #[test]
    fn threshold_is_adjustable() {
        let ring = SlowRing::new(4, u64::MAX);
        assert!(!ring.offer(q(1, 5_000_000)));
        ring.set_threshold_us(0);
        assert!(ring.offer(q(2, 1)));
        assert_eq!(ring.threshold_us(), 0);
    }
}
