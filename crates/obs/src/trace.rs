//! Structured tracing: per-request span trees on a monotonic clock.
//!
//! A [`Trace`] is an owned buffer of [`SpanRec`]s for one request. The server
//! creates it when a request arrives (so cross-thread stages like HTTP read
//! and executor queue wait can be recorded explicitly with
//! [`Trace::record_between`]), then *installs* it in the executing thread's
//! slot; library code anywhere below — parser, plan cache, segment fan-out,
//! WAL — calls [`span`] and gets a guard that records its interval into the
//! installed trace on drop. Parent IDs follow lexical nesting via a stack.
//!
//! Cost contract: an active span is two `Instant::now()` calls plus a `Vec`
//! push. With no trace installed, [`span`] is one thread-local read and *no*
//! clock reads. With the `off` feature the guard is inert at compile time.

use std::cell::RefCell;
use std::time::Instant;

/// Pipeline stages a span can label. Codes are stable across the wire (span
/// ring encoding); names are what `/metrics` and `/debug/slow` expose.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum Stage {
    /// Whole-request root (query).
    Query = 0,
    /// Reading + parsing the HTTP request off the socket.
    HttpRead = 1,
    /// Admission decision (queue/connection caps).
    Admission = 2,
    /// Waiting in the executor queue.
    QueueWait = 3,
    /// SQL text → AST.
    Parse = 4,
    /// Plan-cache lookup that hit.
    PlanCacheHit = 5,
    /// Plan-cache miss: parse + plan + insert.
    PlanCacheMiss = 6,
    /// Planning a parsed query against the table snapshot.
    Plan = 7,
    /// Executing a prepared plan (fan-out + merge).
    Execute = 8,
    /// One segment's (or the delta's) estimate.
    Estimate = 9,
    /// Merging per-segment partial answers.
    Merge = 10,
    /// Rendering the answer to wire bytes.
    Serialize = 11,
    /// Whole-request root (ingest).
    Ingest = 12,
    /// WAL record encode + append.
    WalAppend = 13,
    /// WAL fsync.
    WalFsync = 14,
    /// Sealing a delta slice into an immutable segment.
    Seal = 15,
    /// Codec cascade: choosing + encoding the sealed row store.
    Codec = 16,
    /// Folding ingested rows into the active delta synopsis.
    Fold = 17,
}

/// Every stage, for registering per-stage metric families.
pub const ALL_STAGES: &[Stage] = &[
    Stage::Query,
    Stage::HttpRead,
    Stage::Admission,
    Stage::QueueWait,
    Stage::Parse,
    Stage::PlanCacheHit,
    Stage::PlanCacheMiss,
    Stage::Plan,
    Stage::Execute,
    Stage::Estimate,
    Stage::Merge,
    Stage::Serialize,
    Stage::Ingest,
    Stage::WalAppend,
    Stage::WalFsync,
    Stage::Seal,
    Stage::Codec,
    Stage::Fold,
];

impl Stage {
    /// Stable wire code.
    #[inline]
    pub fn code(self) -> u8 {
        self as u8
    }

    /// Inverse of [`Stage::code`]; `None` for unknown codes (forward compat
    /// when decoding a ring written by a newer build).
    pub fn from_code(code: u8) -> Option<Stage> {
        ALL_STAGES.iter().copied().find(|s| s.code() == code)
    }

    /// Label value used in metric families and JSON breakdowns.
    pub fn name(self) -> &'static str {
        match self {
            Stage::Query => "query",
            Stage::HttpRead => "http_read",
            Stage::Admission => "admission",
            Stage::QueueWait => "queue_wait",
            Stage::Parse => "parse",
            Stage::PlanCacheHit => "plan_cache_hit",
            Stage::PlanCacheMiss => "plan_cache_miss",
            Stage::Plan => "plan",
            Stage::Execute => "execute",
            Stage::Estimate => "estimate",
            Stage::Merge => "merge",
            Stage::Serialize => "serialize",
            Stage::Ingest => "ingest",
            Stage::WalAppend => "wal_append",
            Stage::WalFsync => "wal_fsync",
            Stage::Seal => "seal",
            Stage::Codec => "codec",
            Stage::Fold => "fold",
        }
    }
}

/// One recorded span: a stage interval relative to the trace origin.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanRec {
    /// 1-based span ID, unique within the trace.
    pub id: u32,
    /// Parent span ID; 0 for roots.
    pub parent: u32,
    /// What this interval covers.
    pub stage: Stage,
    /// Start offset from the trace origin, nanoseconds.
    pub start_ns: u64,
    /// Duration, nanoseconds.
    pub dur_ns: u64,
}

/// An owned span buffer for one request.
#[derive(Debug)]
pub struct Trace {
    origin: Instant,
    spans: Vec<SpanRec>,
    next_id: u32,
    /// Open-span stack: the top is the parent for newly started spans.
    stack: Vec<u32>,
}

impl Default for Trace {
    fn default() -> Self {
        Trace::new()
    }
}

impl Trace {
    /// A fresh trace whose origin is now.
    pub fn new() -> Trace {
        Trace::with_origin(Instant::now())
    }

    /// A fresh trace anchored at `origin` (e.g. the request's first byte, so
    /// the HTTP-read span starts at offset zero).
    pub fn with_origin(origin: Instant) -> Trace {
        Trace { origin, spans: Vec::with_capacity(16), next_id: 0, stack: Vec::with_capacity(8) }
    }

    #[inline]
    fn rel_ns(&self, t: Instant) -> u64 {
        t.saturating_duration_since(self.origin).as_nanos() as u64
    }

    /// Records a closed interval measured externally (cross-thread stages:
    /// HTTP read on the loop thread, queue wait between threads). Parent is
    /// the currently open span, or root. Returns the new span's ID.
    pub fn record_between(&mut self, stage: Stage, start: Instant, end: Instant) -> u32 {
        self.next_id += 1;
        let id = self.next_id;
        let parent = self.stack.last().copied().unwrap_or(0);
        let start_ns = self.rel_ns(start);
        self.spans.push(SpanRec {
            id,
            parent,
            stage,
            start_ns,
            dur_ns: self.rel_ns(end).saturating_sub(start_ns),
        });
        id
    }

    /// Opens a span: allocates its ID and makes it the parent of anything
    /// started before the matching [`Trace::end`].
    fn begin(&mut self) -> u32 {
        self.next_id += 1;
        let id = self.next_id;
        self.stack.push(id);
        id
    }

    /// Closes the span opened as `id`, recording its interval.
    fn end(&mut self, id: u32, stage: Stage, start: Instant) {
        let end = Instant::now();
        // Unwind to this span's frame; a missed pop (a guard leaked across
        // threads) must not corrupt later parentage.
        while let Some(top) = self.stack.pop() {
            if top == id {
                break;
            }
        }
        let parent = self.stack.last().copied().unwrap_or(0);
        let start_ns = self.rel_ns(start);
        self.spans.push(SpanRec {
            id,
            parent,
            stage,
            start_ns,
            dur_ns: self.rel_ns(end).saturating_sub(start_ns),
        });
    }

    /// The recorded spans, in completion order.
    pub fn spans(&self) -> &[SpanRec] {
        &self.spans
    }

    /// Consumes the trace, yielding its spans.
    pub fn into_spans(self) -> Vec<SpanRec> {
        self.spans
    }

    /// Origin instant (offset zero for every span).
    pub fn origin(&self) -> Instant {
        self.origin
    }
}

thread_local! {
    static ACTIVE: RefCell<Option<Trace>> = const { RefCell::new(None) };
}

/// Installs `t` as this thread's active trace; [`span`] guards record into it
/// until [`take`]. Replaces any previous trace (dropped silently). No-op when
/// tracing is off (runtime switch or `off` feature).
pub fn install(t: Trace) {
    if !crate::tracing_on() {
        return;
    }
    ACTIVE.with(|a| *a.borrow_mut() = Some(t));
}

/// Removes and returns this thread's active trace, if any.
pub fn take() -> Option<Trace> {
    ACTIVE.with(|a| a.borrow_mut().take())
}

/// Whether a trace is installed on this thread.
pub fn is_active() -> bool {
    ACTIVE.with(|a| a.borrow().is_some())
}

/// Starts a span for `stage` on the active trace. With no trace installed the
/// guard is inert — no clock reads, nothing recorded.
#[inline]
pub fn span(stage: Stage) -> SpanGuard {
    if cfg!(feature = "off") {
        return SpanGuard { id: 0, stage, start: None };
    }
    let id = ACTIVE.with(|a| a.borrow_mut().as_mut().map(Trace::begin)).unwrap_or(0);
    if id == 0 {
        return SpanGuard { id: 0, stage, start: None };
    }
    SpanGuard { id, stage, start: Some(Instant::now()) }
}

/// RAII guard for an open span: records its interval on drop.
#[derive(Debug)]
pub struct SpanGuard {
    id: u32,
    stage: Stage,
    start: Option<Instant>,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(start) = self.start else { return };
        let (id, stage) = (self.id, self.stage);
        ACTIVE.with(|a| {
            if let Some(t) = a.borrow_mut().as_mut() {
                t.end(id, stage, start);
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_codes_roundtrip() {
        for s in ALL_STAGES {
            assert_eq!(Stage::from_code(s.code()), Some(*s));
            assert!(!s.name().is_empty());
        }
        assert_eq!(Stage::from_code(200), None);
    }

    #[test]
    fn nested_guards_set_parent_ids() {
        install(Trace::new());
        {
            let _root = span(Stage::Query);
            {
                let _parse = span(Stage::Parse);
            }
            {
                let _exec = span(Stage::Execute);
                let _est = span(Stage::Estimate);
            }
        }
        let spans = take().expect("trace installed").into_spans();
        assert_eq!(spans.len(), 4);
        let by_stage = |st: Stage| spans.iter().find(|s| s.stage == st).copied().expect("span");
        let root = by_stage(Stage::Query);
        assert_eq!(root.parent, 0);
        assert_eq!(by_stage(Stage::Parse).parent, root.id);
        let exec = by_stage(Stage::Execute);
        assert_eq!(exec.parent, root.id);
        assert_eq!(by_stage(Stage::Estimate).parent, exec.id);
    }

    #[test]
    fn span_without_trace_is_inert() {
        assert!(take().is_none());
        let g = span(Stage::Parse);
        drop(g);
        assert!(take().is_none());
    }

    #[test]
    fn record_between_anchors_to_origin() {
        let t0 = Instant::now();
        let mut t = Trace::with_origin(t0);
        let id = t.record_between(Stage::HttpRead, t0, Instant::now());
        assert_eq!(id, 1);
        let s = t.spans()[0];
        assert_eq!(s.start_ns, 0);
        assert_eq!(s.parent, 0);
    }

    #[test]
    fn take_clears_the_slot() {
        install(Trace::new());
        assert!(is_active());
        assert!(take().is_some());
        assert!(!is_active());
    }
}
