//! `ph_obs`: the observability substrate for the PairwiseHist serving stack.
//!
//! Three pieces, all dependency-free and cheap enough for the serving path:
//!
//! * **[`Registry`]** — process-wide metric families (`Counter` / `Gauge` /
//!   `Histogram`), registered once at startup with a name, help text and
//!   optional labels, rendered in Prometheus text exposition format. Handles
//!   are plain relaxed atomics: an increment is one `fetch_add`, histograms
//!   are fixed log₂ buckets (mergeable bucket-wise), and a scrape walks the
//!   registry without stopping writers.
//!
//! * **Tracing spans** — [`trace::span`] records a stage interval (two
//!   monotonic clock reads + one `Vec` push) into the thread's active
//!   [`Trace`], with parent IDs maintained by lexical nesting. Finished
//!   traces drain into a [`SpanRing`] flight recorder whose records are
//!   varint/delta encoded (a 64k-span ring stays under 1 MB) and into per-
//!   stage histograms. When no trace is installed a span is a no-op that
//!   never touches the clock.
//!
//! * **Forensics rings** — [`SlowRing`] keeps the last N queries whose total
//!   latency crossed a configurable threshold, identified by SQL fingerprint
//!   (never raw text) with their full stage breakdown; [`SpanRing`] keeps the
//!   most recent spans from every traced request.
//!
//! The overhead contract: spans cost two `Instant::now()` calls and a ring
//! write, tracing can be disabled at runtime ([`set_tracing`]) or compiled
//! out entirely with the `off` feature, and the bench artifact pins the
//! instrumented-vs-off throughput delta below 2%.

// Debug/scaffolding egress is banned in library code: a stray println corrupts
// bin protocols (ph-serve speaks HTTP on stdout-adjacent fds) and dbg!/todo!
// are development leftovers. ph-lint R2 bans the panicking macros; these
// clippy denies catch the printing/scaffolding ones.
#![deny(clippy::dbg_macro, clippy::todo, clippy::unimplemented)]
#![deny(clippy::print_stdout, clippy::print_stderr)]

mod metrics;
mod ring;
mod slow;
pub mod trace;

pub use metrics::{push_header, push_sample, Counter, Gauge, Histogram, Kind, Registry, HIST_BUCKETS};
pub use ring::{DecodedSpan, SpanRing};
pub use slow::{SlowQuery, SlowRing};
pub use trace::{span, SpanGuard, SpanRec, Stage, Trace};

use std::sync::atomic::{AtomicBool, Ordering};

/// Process-wide tracing switch. `true` by default; flipping it off makes
/// [`trace::install`] a no-op so subsequent requests run untraced (spans on a
/// thread that already has an active trace still record). With the `off`
/// feature this is compiled to constant `false`.
static TRACING: AtomicBool = AtomicBool::new(true);

/// Enables or disables trace installation at runtime.
pub fn set_tracing(on: bool) {
    TRACING.store(on, Ordering::Relaxed);
}

/// Whether new traces may be installed.
#[inline]
pub fn tracing_on() -> bool {
    !cfg!(feature = "off") && TRACING.load(Ordering::Relaxed)
}
