//! The span flight recorder: a bounded ring of recent spans, varint/delta
//! encoded so a 64k-span ring stays under 1 MB.
//!
//! Layout is a **flip buffer**: records append to `cur`; when `cur` reaches
//! half the byte or span budget it becomes `prev` and a fresh `cur` starts
//! (dropping the old `prev`). Eviction is therefore whole-buffer, which lets
//! each buffer be a self-contained delta stream — the first record encodes
//! absolute values, later ones delta against their predecessor (trace IDs
//! repeat, span starts are near-monotone), so a typical record is 7–10 bytes:
//!
//! ```text
//! ivarint(trace_id Δ) · stage u8 · uvarint(id) · uvarint(parent)
//!   · ivarint(start_ns Δ) · uvarint(dur_ns)
//! ```
//!
//! Readers snapshot under the same mutex writers take, so a decode never sees
//! a torn record (property-tested under concurrent push/snapshot).

use ph_encoding::{read_ivarint, read_uvarint, write_ivarint, write_uvarint};
use std::sync::{Mutex, PoisonError};

use crate::trace::{SpanRec, Stage};

/// Worst-case encoded record: two 10-byte ivarints, two 5-byte uvarints, one
/// 10-byte uvarint, one stage byte.
const MAX_REC: usize = 41;

/// Byte budget per retained span (both halves together): 14 bytes/span keeps
/// a 64k-span ring at ≤ 896 KiB while typical 8-byte records leave headroom.
const BYTES_PER_SPAN: usize = 14;

/// One decoded ring entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DecodedSpan {
    /// The trace (request) this span belongs to.
    pub trace_id: u64,
    /// The span itself.
    pub rec: SpanRec,
}

/// Per-buffer encoder/decoder state: delta bases reset on every flip.
#[derive(Debug, Default, Clone, Copy)]
struct DeltaState {
    trace_id: u64,
    start_ns: u64,
}

#[derive(Debug)]
struct RingInner {
    cur: Vec<u8>,
    cur_spans: usize,
    prev: Vec<u8>,
    prev_spans: usize,
    state: DeltaState,
    total: u64,
}

/// A bounded, compact ring of the most recent spans across all traces.
#[derive(Debug)]
pub struct SpanRing {
    inner: Mutex<RingInner>,
    cap_spans: usize,
    half_bytes: usize,
}

impl SpanRing {
    /// A ring retaining at most `cap_spans` spans (and roughly
    /// `cap_spans · 14` bytes of encoded records).
    pub fn new(cap_spans: usize) -> SpanRing {
        let cap_spans = cap_spans.max(2);
        let half_bytes = cap_spans * BYTES_PER_SPAN / 2;
        SpanRing {
            inner: Mutex::new(RingInner {
                cur: Vec::with_capacity(half_bytes),
                cur_spans: 0,
                prev: Vec::new(),
                prev_spans: 0,
                state: DeltaState::default(),
                total: 0,
            }),
            cap_spans,
            half_bytes,
        }
    }

    /// Maximum spans retained.
    pub fn cap(&self) -> usize {
        self.cap_spans
    }

    /// Appends every span of one finished trace.
    pub fn push_trace(&self, trace_id: u64, spans: &[SpanRec]) {
        if spans.is_empty() {
            return;
        }
        let mut inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        for s in spans {
            // Flip before the record that would overflow this half, so each
            // buffer is a self-contained delta stream within budget.
            if inner.cur.len() + MAX_REC > self.half_bytes
                || inner.cur_spans >= (self.cap_spans / 2).max(1)
            {
                let RingInner { cur, cur_spans, prev, prev_spans, state, .. } = &mut *inner;
                std::mem::swap(cur, prev);
                *prev_spans = *cur_spans;
                cur.clear();
                *cur_spans = 0;
                *state = DeltaState::default();
            }
            let st = inner.state;
            let buf = &mut inner.cur;
            write_ivarint(buf, trace_id.wrapping_sub(st.trace_id) as i64);
            buf.push(s.stage.code());
            write_uvarint(buf, u64::from(s.id));
            write_uvarint(buf, u64::from(s.parent));
            write_ivarint(buf, s.start_ns.wrapping_sub(st.start_ns) as i64);
            write_uvarint(buf, s.dur_ns);
            inner.state = DeltaState { trace_id, start_ns: s.start_ns };
            inner.cur_spans += 1;
            inner.total += 1;
        }
    }

    /// Decodes every retained span, oldest first.
    pub fn snapshot(&self) -> Vec<DecodedSpan> {
        let inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        let mut out = Vec::with_capacity(inner.prev_spans + inner.cur_spans);
        decode_buf(&inner.prev, &mut out);
        decode_buf(&inner.cur, &mut out);
        out
    }

    /// Number of spans currently retained.
    pub fn len(&self) -> usize {
        let inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        inner.prev_spans + inner.cur_spans
    }

    /// Whether no spans are retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Spans ever recorded (monotone; not capped).
    pub fn total_recorded(&self) -> u64 {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner).total
    }

    /// Bytes held by the encoded buffers (capacity, i.e. real memory).
    pub fn mem_bytes(&self) -> usize {
        let inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        inner.cur.capacity() + inner.prev.capacity()
    }
}

/// Decodes one self-contained buffer, appending well-formed records to `out`.
/// A truncated or unknown-stage record ends the buffer (no resync attempted —
/// the encoder only ever writes whole records, so this is forward-compat
/// hygiene, not an expected path).
fn decode_buf(buf: &[u8], out: &mut Vec<DecodedSpan>) {
    let mut pos = 0usize;
    let mut st = DeltaState::default();
    while pos < buf.len() {
        let Some(tid_d) = read_ivarint(buf, &mut pos) else { return };
        let Some(&stage_code) = buf.get(pos) else { return };
        pos += 1;
        let Some(stage) = Stage::from_code(stage_code) else { return };
        let Some(id) = read_uvarint(buf, &mut pos) else { return };
        let Some(parent) = read_uvarint(buf, &mut pos) else { return };
        let Some(start_d) = read_ivarint(buf, &mut pos) else { return };
        let Some(dur_ns) = read_uvarint(buf, &mut pos) else { return };
        let trace_id = st.trace_id.wrapping_add(tid_d as u64);
        let start_ns = st.start_ns.wrapping_add(start_d as u64);
        st = DeltaState { trace_id, start_ns };
        out.push(DecodedSpan {
            trace_id,
            rec: SpanRec {
                id: id as u32,
                parent: parent as u32,
                stage,
                start_ns,
                dur_ns,
            },
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mk(id: u32, parent: u32, stage: Stage, start_ns: u64, dur_ns: u64) -> SpanRec {
        SpanRec { id, parent, stage, start_ns, dur_ns }
    }

    #[test]
    fn roundtrips_spans_in_order() {
        let ring = SpanRing::new(1024);
        let spans = vec![
            mk(1, 0, Stage::Query, 0, 5_000),
            mk(2, 1, Stage::Parse, 100, 900),
            mk(3, 1, Stage::Execute, 1_100, 3_000),
        ];
        ring.push_trace(42, &spans);
        let got = ring.snapshot();
        assert_eq!(got.len(), 3);
        for (g, s) in got.iter().zip(spans.iter()) {
            assert_eq!(g.trace_id, 42);
            assert_eq!(g.rec, *s);
        }
    }

    #[test]
    fn never_exceeds_span_cap_and_memory_budget() {
        let ring = SpanRing::new(64 * 1024);
        let mut start = 0u64;
        for t in 0..40_000u64 {
            let spans: Vec<SpanRec> = (0..4)
                .map(|i| {
                    start += 2_500;
                    mk(i + 1, if i == 0 { 0 } else { 1 }, Stage::Estimate, start, 1_200)
                })
                .collect();
            ring.push_trace(t, &spans);
        }
        assert_eq!(ring.total_recorded(), 160_000);
        assert!(ring.len() <= 64 * 1024, "len={}", ring.len());
        assert!(ring.mem_bytes() < 1024 * 1024, "mem={}", ring.mem_bytes());
        // Retention stays meaningful: the byte budget holds tens of thousands
        // of typical records, not a handful.
        assert!(ring.len() > 16 * 1024, "len={}", ring.len());
        let snap = ring.snapshot();
        assert_eq!(snap.len(), ring.len());
        // Oldest-first: trace ids non-decreasing across the snapshot.
        for w in snap.windows(2) {
            assert!(w[0].trace_id <= w[1].trace_id);
        }
    }

    #[test]
    fn tiny_cap_still_works() {
        let ring = SpanRing::new(2);
        for t in 0..100 {
            ring.push_trace(t, &[mk(1, 0, Stage::Query, t * 1000, 10)]);
        }
        assert!(ring.len() <= 2);
        let snap = ring.snapshot();
        assert_eq!(snap.last().map(|d| d.trace_id), Some(99));
    }
}
