//! The metrics registry: lock-free `Counter` / `Gauge` / `Histogram` handles
//! registered once at startup, rendered as Prometheus text exposition.
//!
//! Handles are relaxed atomics — an increment never takes a lock and a scrape
//! never stops a writer. Histograms are fixed log₂ buckets (bucket *i* counts
//! observations in `[2^i, 2^{i+1})` of the base unit), which makes them
//! mergeable bucket-wise and keeps `observe` at one `leading_zeros` plus one
//! `fetch_add`. The registry itself is a mutex over the family list, touched
//! only at registration (startup) and scrape (1 Hz), never per-request.

use std::fmt::Write as _;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

/// Number of log₂ histogram buckets: `2^0 .. 2^26` of the base unit plus a
/// final catch-all. With microsecond observations the top finite bound is
/// ~67 s, far beyond any serving deadline.
pub const HIST_BUCKETS: usize = 28;

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A fresh counter at zero (usable standalone, without a registry).
    pub fn new() -> Self {
        Counter(AtomicU64::new(0))
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge: a value that can go up and down.
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// A fresh gauge at zero.
    pub fn new() -> Self {
        Gauge(AtomicI64::new(0))
    }

    /// Sets the value.
    #[inline]
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adds `n` (may be negative via [`Gauge::sub`]).
    #[inline]
    pub fn add(&self, n: i64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Subtracts `n`.
    #[inline]
    pub fn sub(&self, n: i64) {
        self.0.fetch_sub(n, Ordering::Relaxed);
    }

    /// Raises the value to `v` if larger (high-water marks).
    #[inline]
    pub fn set_max(&self, v: i64) {
        self.0.fetch_max(v, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A fixed log₂-bucket histogram. Bucket *i* counts observations `v` with
/// `⌊log₂ max(v,1)⌋ = i` (so bucket 0 holds 0 and 1); the last bucket absorbs
/// everything larger. Mergeable: two histograms add bucket-wise.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HIST_BUCKETS],
    /// Sum of raw observed values (base units), for the Prometheus `_sum`.
    sum: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram { buckets: std::array::from_fn(|_| AtomicU64::new(0)), sum: AtomicU64::new(0) }
    }
}

impl Histogram {
    /// A fresh, empty histogram (usable standalone, without a registry).
    pub fn new() -> Self {
        Histogram::default()
    }

    /// Records one observation of `v` base units.
    #[inline]
    pub fn observe(&self, v: u64) {
        let idx = (63 - v.max(1).leading_zeros() as usize).min(HIST_BUCKETS - 1);
        if let Some(b) = self.buckets.get(idx) {
            b.fetch_add(1, Ordering::Relaxed);
        }
        self.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).sum()
    }

    /// Sum of all observed values in base units.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Per-bucket counts (non-cumulative), index = `⌊log₂ v⌋`.
    pub fn bucket_counts(&self) -> [u64; HIST_BUCKETS] {
        std::array::from_fn(|i| {
            self.buckets.get(i).map(|b| b.load(Ordering::Relaxed)).unwrap_or(0)
        })
    }

    /// Adds every bucket and the sum of `other` into `self`.
    pub fn merge_from(&self, other: &Histogram) {
        for (dst, src) in self.buckets.iter().zip(other.buckets.iter()) {
            dst.fetch_add(src.load(Ordering::Relaxed), Ordering::Relaxed);
        }
        self.sum.fetch_add(other.sum.load(Ordering::Relaxed), Ordering::Relaxed);
    }

    /// Quantile estimate in base units: the geometric midpoint of the bucket
    /// holding the rank-`q` observation (0 when empty). Matches the log₂
    /// endpoint histograms `/stats` has always served.
    pub fn quantile(&self, q: f64) -> f64 {
        let counts = self.bucket_counts();
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return 0.0;
        }
        let rank = (q.clamp(0.0, 1.0) * (total - 1) as f64).round() as u64;
        let mut seen = 0u64;
        for (i, c) in counts.iter().enumerate() {
            seen += c;
            if seen > rank {
                return 2f64.powi(i as i32) * std::f64::consts::SQRT_2;
            }
        }
        2f64.powi(HIST_BUCKETS as i32 - 1)
    }
}

/// Metric family kinds, matching the Prometheus `# TYPE` vocabulary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kind {
    /// Monotone counter (`_total` naming convention).
    Counter,
    /// Point-in-time value.
    Gauge,
    /// Cumulative-bucket distribution.
    Histogram,
}

impl Kind {
    fn as_str(self) -> &'static str {
        match self {
            Kind::Counter => "counter",
            Kind::Gauge => "gauge",
            Kind::Histogram => "histogram",
        }
    }
}

enum Handle {
    C(Arc<Counter>),
    G(Arc<Gauge>),
    H(Arc<Histogram>),
}

struct Child {
    labels: Vec<(String, String)>,
    handle: Handle,
}

struct Family {
    name: String,
    help: String,
    kind: Kind,
    /// Multiplier from histogram base units to the exposition unit (e.g.
    /// `1e-6` for microsecond observations exposed as seconds). `1.0` for
    /// unitless histograms and ignored for counters/gauges.
    scale: f64,
    children: Vec<Child>,
}

/// The process-wide metric registry. Register handles once at startup, render
/// on scrape. Registering the same family name again with more labels appends
/// a labeled child (the first registration's help text wins).
#[derive(Default)]
pub struct Registry {
    families: Mutex<Vec<Family>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// Registers (or extends) a counter family. `help` must be non-empty —
    /// enforced by the `metric-help` lint at the call site.
    pub fn counter(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Counter> {
        let c = Arc::new(Counter::new());
        self.push_child(name, help, Kind::Counter, 1.0, labels, Handle::C(Arc::clone(&c)));
        c
    }

    /// Registers (or extends) a gauge family.
    pub fn gauge(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Gauge> {
        let g = Arc::new(Gauge::new());
        self.push_child(name, help, Kind::Gauge, 1.0, labels, Handle::G(Arc::clone(&g)));
        g
    }

    /// Registers (or extends) a histogram family whose observations are in
    /// base units of `scale` exposition units (e.g. observe microseconds with
    /// `scale = 1e-6` to expose seconds).
    pub fn histogram(
        &self,
        name: &str,
        help: &str,
        scale: f64,
        labels: &[(&str, &str)],
    ) -> Arc<Histogram> {
        let h = Arc::new(Histogram::new());
        self.push_child(name, help, Kind::Histogram, scale, labels, Handle::H(Arc::clone(&h)));
        h
    }

    fn push_child(
        &self,
        name: &str,
        help: &str,
        kind: Kind,
        scale: f64,
        labels: &[(&str, &str)],
        handle: Handle,
    ) {
        debug_assert!(!help.is_empty(), "metric {name} registered without help text");
        let child = Child {
            labels: labels.iter().map(|(k, v)| ((*k).to_owned(), (*v).to_owned())).collect(),
            handle,
        };
        let mut fams = self.families.lock().unwrap_or_else(PoisonError::into_inner);
        if let Some(f) = fams.iter_mut().find(|f| f.name == name) {
            debug_assert!(f.kind == kind, "metric {name} re-registered with a different kind");
            f.children.push(child);
        } else {
            fams.push(Family {
                name: name.to_owned(),
                help: help.to_owned(),
                kind,
                scale,
                children: vec![child],
            });
        }
    }

    /// Renders every family in Prometheus text exposition format (v0.0.4).
    pub fn render(&self) -> String {
        let mut out = String::with_capacity(4096);
        let fams = self.families.lock().unwrap_or_else(PoisonError::into_inner);
        for f in fams.iter() {
            push_header(&mut out, &f.name, &f.help, f.kind);
            for c in &f.children {
                let labels: Vec<(&str, &str)> =
                    c.labels.iter().map(|(k, v)| (k.as_str(), v.as_str())).collect();
                match &c.handle {
                    Handle::C(h) => push_sample(&mut out, &f.name, &labels, h.get() as f64),
                    Handle::G(h) => push_sample(&mut out, &f.name, &labels, h.get() as f64),
                    Handle::H(h) => render_histogram(&mut out, &f.name, &labels, f.scale, h),
                }
            }
        }
        out
    }
}

/// Appends cumulative `_bucket` lines plus `_sum`/`_count` for one histogram
/// child. Bucket *i* holds `v < 2^{i+1}` base units, so its `le` bound is
/// `2^{i+1} · scale`; the final bucket is `+Inf`.
fn render_histogram(
    out: &mut String,
    name: &str,
    labels: &[(&str, &str)],
    scale: f64,
    h: &Histogram,
) {
    let counts = h.bucket_counts();
    let bucket_name = format!("{name}_bucket");
    let mut cum = 0u64;
    for (i, c) in counts.iter().enumerate() {
        cum += c;
        let le = if i + 1 == HIST_BUCKETS {
            "+Inf".to_owned()
        } else {
            format!("{}", 2f64.powi(i as i32 + 1) * scale)
        };
        let mut ls: Vec<(&str, &str)> = labels.to_vec();
        ls.push(("le", le.as_str()));
        push_sample(out, &bucket_name, &ls, cum as f64);
    }
    push_sample(out, &format!("{name}_sum"), labels, h.sum() as f64 * scale);
    push_sample(out, &format!("{name}_count"), labels, cum as f64);
}

/// Appends a `# HELP` / `# TYPE` header for a family. Public so dynamically
/// computed families (table footprints, plan-cache stats) can share the same
/// exposition path as registered handles.
pub fn push_header(out: &mut String, name: &str, help: &str, kind: Kind) {
    let mut escaped = String::with_capacity(help.len());
    for ch in help.chars() {
        match ch {
            '\\' => escaped.push_str("\\\\"),
            '\n' => escaped.push_str("\\n"),
            c => escaped.push(c),
        }
    }
    let _ = writeln!(out, "# HELP {name} {escaped}");
    let _ = writeln!(out, "# TYPE {name} {}", kind.as_str());
}

/// Appends one `name{labels} value` sample line.
pub fn push_sample(out: &mut String, name: &str, labels: &[(&str, &str)], value: f64) {
    out.push_str(name);
    if !labels.is_empty() {
        out.push('{');
        for (i, (k, v)) in labels.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(k);
            out.push_str("=\"");
            for ch in v.chars() {
                match ch {
                    '\\' => out.push_str("\\\\"),
                    '"' => out.push_str("\\\""),
                    '\n' => out.push_str("\\n"),
                    c => out.push(c),
                }
            }
            out.push('"');
        }
        out.push('}');
    }
    let _ = writeln!(out, " {value}");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_roundtrip() {
        let r = Registry::new();
        let c = r.counter("ph_test_total", "test counter", &[]);
        let g = r.gauge("ph_test_open", "test gauge", &[("kind", "a")]);
        c.inc();
        c.add(2);
        g.set(5);
        g.sub(2);
        g.set_max(4);
        assert_eq!(c.get(), 3);
        assert_eq!(g.get(), 4);
        let text = r.render();
        assert!(text.contains("# TYPE ph_test_total counter"));
        assert!(text.contains("ph_test_total 3"));
        assert!(text.contains("ph_test_open{kind=\"a\"} 4"));
    }

    #[test]
    fn histogram_buckets_are_cumulative_and_mergeable() {
        let h = Histogram::new();
        h.observe(0);
        h.observe(1);
        h.observe(2);
        h.observe(1000);
        assert_eq!(h.count(), 4);
        assert_eq!(h.sum(), 1003);
        let h2 = Histogram::new();
        h2.observe(2);
        h2.merge_from(&h);
        assert_eq!(h2.count(), 5);
        let counts = h2.bucket_counts();
        assert_eq!(counts[0], 2); // 0 and 1
        assert_eq!(counts[1], 2); // the two 2s
        assert_eq!(counts[9], 1); // 1000 ∈ [512, 1024)
    }

    #[test]
    fn quantile_matches_log2_midpoint() {
        let h = Histogram::new();
        for _ in 0..100 {
            h.observe(100); // bucket 6: [64, 128)
        }
        let p50 = h.quantile(0.5);
        assert!((p50 - 64.0 * std::f64::consts::SQRT_2).abs() < 1e-9);
        assert_eq!(Histogram::new().quantile(0.5), 0.0);
    }

    #[test]
    fn labeled_children_share_a_family_header() {
        let r = Registry::new();
        let a = r.counter("ph_reqs_total", "requests", &[("endpoint", "query")]);
        let b = r.counter("ph_reqs_total", "requests", &[("endpoint", "ingest")]);
        a.inc();
        b.add(2);
        let text = r.render();
        assert_eq!(text.matches("# TYPE ph_reqs_total counter").count(), 1);
        assert!(text.contains("ph_reqs_total{endpoint=\"query\"} 1"));
        assert!(text.contains("ph_reqs_total{endpoint=\"ingest\"} 2"));
    }

    #[test]
    fn histogram_exposition_has_inf_sum_count() {
        let r = Registry::new();
        let h = r.histogram("ph_lat_seconds", "latency", 1e-6, &[]);
        h.observe(3); // 3 µs
        let text = r.render();
        assert!(text.contains("ph_lat_seconds_bucket{le=\"+Inf\"} 1"));
        assert!(text.contains("ph_lat_seconds_count 1"));
        assert!(text.contains("ph_lat_seconds_sum 0.000003"));
    }

    #[test]
    fn label_values_are_escaped() {
        let mut out = String::new();
        push_sample(&mut out, "m", &[("k", "a\"b\\c\nd")], 1.0);
        assert_eq!(out, "m{k=\"a\\\"b\\\\c\\nd\"} 1\n");
    }
}
