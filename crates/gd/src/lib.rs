//! GreedyGD: Generalized Deduplication compression with direct-analytics bases.
//!
//! Generalized Deduplication (GD) splits each data chunk — here, a table row — into a
//! **base** (the most significant bits of each attribute) and a **deviation** (the
//! remaining bits). Bases are deduplicated; deviations are stored verbatim with an ID
//! linking each row to its base (paper Fig 3). Compression results whenever many rows
//! share a base. GreedyGD \[8\] is the variant that greedily chooses, per column, how
//! many low-order bits go to the deviation so that total compressed size is minimised.
//!
//! Two properties matter for the AQP framework of the paper (§3):
//!
//! 1. the deduplicated **bases double as a coarse data synopsis** — PairwiseHist seeds
//!    its initial histogram bin edges from them, which speeds up construction;
//! 2. rows remain **randomly accessible** without decompressing the whole store, so
//!    the synopsis builder can decode just its `Ns`-row sample.
//!
//! Pipeline: [`Preprocessor::fit`] learns per-column lossless transforms (minimum
//! subtraction, float→integer conversion, frequency-ranked categorical codes, missing
//! value encoding — §3 "Data Compression"), [`Preprocessor::encode`] produces an
//! [`EncodedMatrix`] of non-negative integers, and [`GdCompressor`] picks the
//! base/deviation split and builds a [`GdStore`].

// Debug/scaffolding egress is banned in library code: a stray println corrupts
// bin protocols (ph-serve speaks HTTP on stdout-adjacent fds) and dbg!/todo!
// are development leftovers. ph-lint R2 bans the panicking macros; these
// clippy denies catch the printing/scaffolding ones.
#![deny(clippy::dbg_macro, clippy::todo, clippy::unimplemented)]
#![deny(clippy::print_stdout, clippy::print_stderr)]
mod codec;
mod greedy;
mod matrix;
mod preprocess;
mod store;

pub use codec::{
    choose_codec, choose_store, BitPackCodec, Codec, ColumnCodec, ColumnarStore, DeltaCodec,
    DictCodec, EncodedPred, RowStore, RunEndCodec, SymbolTable,
};
pub use greedy::{GdCompressor, GdConfig};
pub use matrix::EncodedMatrix;
pub use preprocess::{ColumnTransform, EncodeScratch, EncodedLiteral, GdError, Preprocessor};
pub use store::{CompressionStats, GdStore};
