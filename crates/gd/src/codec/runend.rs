//! Run-end encoding: one (value, exclusive end) pair per run.
//!
//! Sorted or bursty categorical columns collapse to a handful of runs, and a
//! predicate is evaluated once per *run* — matching runs contribute their whole
//! length with one addition, so selective scans skip millions of rows.

use ph_encoding::{read_uvarint, write_uvarint, BitReader, BitWriter};

use super::{uvarint_len, width_for, Codec, EncodedPred, MAX_CODEC_ROWS};

/// Run-end column store.
///
/// Wire layout: `uvarint n_rows | uvarint n_runs | uvarint min | u8 val_width |
/// u8 end_width | packed` — run values (`min`-subtracted, `val_width` bits)
/// then exclusive run ends (`end_width` bits, strictly increasing, last one
/// equal to `n_rows`).
#[derive(Debug, Clone)]
pub struct RunEndCodec {
    n_rows: usize,
    values: Vec<u64>,
    ends: Vec<u64>,
    min: u64,
    val_width: u32,
}

impl RunEndCodec {
    /// Encodes a column slice by collapsing consecutive equal values.
    pub fn encode(column: &[u64]) -> Self {
        let mut values = Vec::new();
        let mut ends = Vec::new();
        for (i, &v) in column.iter().enumerate() {
            if values.last() == Some(&v) {
                *ends.last_mut().unwrap() = i as u64 + 1;
            } else {
                values.push(v);
                ends.push(i as u64 + 1);
            }
        }
        let min = values.iter().copied().min().unwrap_or(0);
        let max = values.iter().copied().max().unwrap_or(0);
        Self {
            n_rows: column.len(),
            values,
            ends,
            min,
            val_width: width_for(max - min),
        }
    }

    /// Exact serialized size given run count and the value range of the runs.
    pub fn size_for(n_rows: usize, n_runs: usize, min: u64, max: u64) -> usize {
        let vw = width_for(max.saturating_sub(min)) as usize;
        let ew = width_for(n_rows as u64) as usize;
        let bits = n_runs * (vw + ew);
        uvarint_len(n_rows as u64)
            + uvarint_len(n_runs as u64)
            + uvarint_len(min)
            + 2
            + bits.div_ceil(8)
    }

    /// Number of runs.
    pub fn n_runs(&self) -> usize {
        self.values.len()
    }

    #[inline]
    fn end_width(&self) -> u32 {
        width_for(self.n_rows as u64)
    }
}

impl Codec for RunEndCodec {
    fn n_rows(&self) -> usize {
        self.n_rows
    }

    fn get(&self, row: usize) -> Option<u64> {
        if row >= self.n_rows {
            return None;
        }
        let run = self.ends.partition_point(|&e| e <= row as u64);
        self.values.get(run).copied()
    }

    fn decode(&self) -> Vec<u64> {
        let mut out = Vec::with_capacity(self.n_rows);
        let mut prev = 0u64;
        for (&v, &e) in self.values.iter().zip(&self.ends) {
            out.resize(out.len() + (e - prev) as usize, v);
            prev = e;
        }
        out
    }

    fn packed_bytes(&self) -> usize {
        let bits = self.values.len() * (self.val_width + self.end_width()) as usize;
        uvarint_len(self.n_rows as u64)
            + uvarint_len(self.values.len() as u64)
            + uvarint_len(self.min)
            + 2
            + bits.div_ceil(8)
    }

    fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.packed_bytes());
        write_uvarint(&mut out, self.n_rows as u64);
        write_uvarint(&mut out, self.values.len() as u64);
        write_uvarint(&mut out, self.min);
        out.push(self.val_width as u8);
        out.push(self.end_width() as u8);
        let mut w = BitWriter::new();
        for &v in &self.values {
            w.write_bits(v - self.min, self.val_width);
        }
        for &e in &self.ends {
            w.write_bits(e, self.end_width());
        }
        out.extend_from_slice(&w.finish());
        out
    }

    fn from_bytes(data: &[u8]) -> Option<Self> {
        let mut pos = 0;
        let n_rows = read_uvarint(data, &mut pos)? as usize;
        if n_rows > MAX_CODEC_ROWS {
            return None;
        }
        let n_runs = read_uvarint(data, &mut pos)? as usize;
        if n_runs > n_rows || (n_rows > 0 && n_runs == 0) {
            return None;
        }
        let min = read_uvarint(data, &mut pos)?;
        let val_width = *data.get(pos)? as u32;
        let end_width = *data.get(pos + 1)? as u32;
        pos += 2;
        if val_width > 64 || end_width != width_for(n_rows as u64) {
            return None;
        }
        let payload = data.get(pos..)?;
        let bits = n_runs * (val_width + end_width) as usize;
        if payload.len() != bits.div_ceil(8) {
            return None;
        }
        let mut r = BitReader::new(payload);
        let mut values = Vec::with_capacity(n_runs);
        for _ in 0..n_runs {
            let residual = r.read_bits(val_width)?;
            values.push(min.checked_add(residual)?);
        }
        let mut ends = Vec::with_capacity(n_runs);
        let mut prev = 0u64;
        for _ in 0..n_runs {
            let e = r.read_bits(end_width)?;
            if e <= prev {
                // Strictly increasing, so the first end is ≥ 1 (prev starts 0).
                return None;
            }
            prev = e;
            ends.push(e);
        }
        if ends.last().copied().unwrap_or(0) != n_rows as u64 {
            return None;
        }
        Some(Self { n_rows, values, ends, min, val_width })
    }

    fn count_matching(&self, pred: &EncodedPred) -> u64 {
        let mut count = 0u64;
        let mut prev = 0u64;
        for (&v, &e) in self.values.iter().zip(&self.ends) {
            if pred.matches(v) {
                count += e - prev;
            }
            prev = e;
        }
        count
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn collapses_runs_and_roundtrips() {
        let vals: Vec<u64> =
            [5u64; 300].iter().chain([9u64; 200].iter()).chain([5u64; 100].iter()).copied().collect();
        let c = RunEndCodec::encode(&vals);
        assert_eq!(c.n_runs(), 3);
        assert_eq!(c.decode(), vals);
        assert_eq!(c.packed_bytes(), c.to_bytes().len());
        let restored = RunEndCodec::from_bytes(&c.to_bytes()).unwrap();
        assert_eq!(restored.decode(), vals);
        assert_eq!(restored.get(0), Some(5));
        assert_eq!(restored.get(299), Some(5));
        assert_eq!(restored.get(300), Some(9));
        assert_eq!(restored.get(599), Some(5));
        assert_eq!(restored.get(600), None);
        assert_eq!(RunEndCodec::size_for(600, 3, 5, 9), c.to_bytes().len());
    }

    #[test]
    fn run_skipping_counts() {
        let vals: Vec<u64> =
            [1u64; 1000].iter().chain([2u64; 500].iter()).chain([1u64; 250].iter()).copied().collect();
        let c = RunEndCodec::encode(&vals);
        assert_eq!(c.count_matching(&EncodedPred::Eq(1)), 1250);
        assert_eq!(c.count_matching(&EncodedPred::Eq(2)), 500);
        assert_eq!(c.count_matching(&EncodedPred::Eq(3)), 0);
        let r = EncodedPred::Range { lo: Some(2), hi: None };
        assert_eq!(c.count_matching(&r), 500);
    }

    #[test]
    fn empty_column() {
        let c = RunEndCodec::encode(&[]);
        assert_eq!(c.n_rows(), 0);
        assert_eq!(c.decode(), Vec::<u64>::new());
        let restored = RunEndCodec::from_bytes(&c.to_bytes()).unwrap();
        assert_eq!(restored.n_rows(), 0);
    }

    #[test]
    fn from_bytes_rejects_non_monotone_ends() {
        let vals = vec![1u64, 1, 2, 2, 3];
        let good = RunEndCodec::encode(&vals).to_bytes();
        assert!(RunEndCodec::from_bytes(&good).is_some());
        for cut in 0..good.len() {
            assert!(RunEndCodec::from_bytes(&good[..cut]).is_none(), "cut {cut}");
        }
        // Hand-build ends that do not reach n_rows.
        let mut bad = Vec::new();
        write_uvarint(&mut bad, 4); // n_rows
        write_uvarint(&mut bad, 1); // n_runs
        write_uvarint(&mut bad, 7); // min
        bad.push(0); // val_width
        bad.push(3); // end_width = width_for(4)
        let mut w = BitWriter::new();
        w.write_bits(2, 3); // end = 2 ≠ n_rows
        bad.extend_from_slice(&w.finish());
        assert!(RunEndCodec::from_bytes(&bad).is_none());
    }
}
