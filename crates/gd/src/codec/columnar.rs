//! The columnar row store: one adaptively-chosen codec per column, plus the
//! [`RowStore`] enum that lets a sealed segment hold either this or the
//! GreedyGD store — whichever the size model says is smaller.

use ph_encoding::{read_uvarint, write_uvarint};

use crate::{EncodedMatrix, GdStore};

use super::column::{choose_codec, ColumnCodec};
use super::{uvarint_len, Codec, EncodedPred, MAX_CODEC_ROWS};

/// A sealed segment's rows, one codec per column.
///
/// Wire layout: `uvarint n_rows | uvarint n_cols | per column: u8 tag |
/// uvarint payload_len | payload`. The CRC trailer lives one level up in the
/// `PSG3` segment blob, like every other persisted unit.
#[derive(Debug, Clone)]
pub struct ColumnarStore {
    n_rows: usize,
    columns: Vec<ColumnCodec>,
}

impl ColumnarStore {
    /// Encodes every column of the matrix through [`choose_codec`].
    pub fn encode(matrix: &EncodedMatrix) -> Self {
        Self {
            n_rows: matrix.n_rows,
            columns: matrix.columns.iter().map(|c| choose_codec(c)).collect(),
        }
    }

    /// Rows held.
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Columns held.
    pub fn n_columns(&self) -> usize {
        self.columns.len()
    }

    /// The codec sealed over column `c`.
    pub fn column(&self, c: usize) -> Option<&ColumnCodec> {
        self.columns.get(c)
    }

    /// Random access to one cell.
    pub fn get(&self, row: usize, col: usize) -> Option<u64> {
        self.columns.get(col)?.get(row)
    }

    /// Full decode back to the encoded-domain matrix. Total on any store that
    /// exists in memory (encoded here or validated by `from_bytes`).
    pub fn decompress(&self) -> EncodedMatrix {
        EncodedMatrix {
            columns: self.columns.iter().map(|c| c.decode()).collect(),
            n_rows: self.n_rows,
        }
    }

    /// Serialized size in bytes, O(columns) arithmetic — no encoding.
    pub fn packed_bytes(&self) -> usize {
        uvarint_len(self.n_rows as u64)
            + uvarint_len(self.columns.len() as u64)
            + self
                .columns
                .iter()
                .map(|c| {
                    let len = c.packed_bytes();
                    1 + uvarint_len(len as u64) + len
                })
                .sum::<usize>()
    }

    /// Serializes the store.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.packed_bytes());
        write_uvarint(&mut out, self.n_rows as u64);
        write_uvarint(&mut out, self.columns.len() as u64);
        for c in &self.columns {
            let payload = c.to_bytes();
            out.push(c.tag());
            write_uvarint(&mut out, payload.len() as u64);
            out.extend_from_slice(&payload);
        }
        out
    }

    /// Restores a store; `None` on any malformed column, row-count mismatch,
    /// or trailing bytes. Decode paths are total afterwards.
    pub fn from_bytes(data: &[u8]) -> Option<Self> {
        let mut pos = 0;
        let n_rows = read_uvarint(data, &mut pos)? as usize;
        if n_rows > MAX_CODEC_ROWS {
            return None;
        }
        let n_cols = read_uvarint(data, &mut pos)? as usize;
        if n_cols > 1 << 16 {
            return None;
        }
        let mut columns = Vec::with_capacity(n_cols);
        for _ in 0..n_cols {
            let tag = *data.get(pos)?;
            pos += 1;
            let len = read_uvarint(data, &mut pos)? as usize;
            let payload = data.get(pos..pos.checked_add(len)?)?;
            pos += len;
            let codec = ColumnCodec::from_tag_bytes(tag, payload)?;
            if codec.n_rows() != n_rows {
                return None;
            }
            columns.push(codec);
        }
        if pos != data.len() {
            return None;
        }
        Some(Self { n_rows, columns })
    }

    /// Rows of column `col` matching `pred`, evaluated on encoded data.
    pub fn count_matching(&self, col: usize, pred: &EncodedPred) -> Option<u64> {
        Some(self.columns.get(col)?.count_matching(pred))
    }

    /// Codec name per column, for `/stats` and bench reporting.
    pub fn codec_names(&self) -> Vec<&'static str> {
        self.columns.iter().map(|c| c.name()).collect()
    }
}

/// A sealed segment's retained rows under whichever scheme won at seal time.
#[derive(Debug, Clone)]
pub enum RowStore {
    /// GreedyGD base/deviation store (the paper's scheme; also what every
    /// pre-PSG3 blob deserializes to).
    Gd(GdStore),
    /// Per-column adaptive codecs.
    Columnar(ColumnarStore),
}

impl RowStore {
    /// Rows held.
    pub fn n_rows(&self) -> usize {
        match self {
            RowStore::Gd(s) => s.n_rows(),
            RowStore::Columnar(s) => s.n_rows(),
        }
    }

    /// Columns held.
    pub fn n_columns(&self) -> usize {
        match self {
            RowStore::Gd(s) => s.n_columns(),
            RowStore::Columnar(s) => s.n_columns(),
        }
    }

    /// Serialized size in bytes, O(columns).
    pub fn packed_bytes(&self) -> usize {
        match self {
            RowStore::Gd(s) => s.packed_bytes(),
            RowStore::Columnar(s) => s.packed_bytes(),
        }
    }

    /// Full decode back to the encoded-domain matrix.
    pub fn decompress(&self) -> EncodedMatrix {
        match self {
            RowStore::Gd(s) => s.decompress(),
            RowStore::Columnar(s) => s.decompress(),
        }
    }

    /// Codec name per column (`"greedy-gd"` for every column of a GD store).
    pub fn codec_names(&self) -> Vec<&'static str> {
        match self {
            RowStore::Gd(s) => vec!["greedy-gd"; s.n_columns()],
            RowStore::Columnar(s) => s.codec_names(),
        }
    }

    /// Rows of column `col` matching `pred`. The columnar store evaluates on
    /// encoded data (dict code intervals, run skipping); the GD store scans
    /// its decoded rows — correct either way, fast where the codecs allow.
    pub fn count_matching(&self, col: usize, pred: &EncodedPred) -> Option<u64> {
        match self {
            RowStore::Gd(s) => {
                if col >= s.n_columns() {
                    return None;
                }
                let m = s.decompress();
                Some(m.columns[col].iter().filter(|&&v| pred.matches(v)).count() as u64)
            }
            RowStore::Columnar(s) => s.count_matching(col, pred),
        }
    }
}

/// Seals the smaller of the two stores over a segment's rows. The GD store is
/// built anyway for synopsis seeding, so this only adds the columnar encode;
/// GD stays the fallback whenever whole-row redundancy beats per-column shape.
pub fn choose_store(matrix: &EncodedMatrix, gd: GdStore) -> RowStore {
    let columnar = ColumnarStore::encode(matrix);
    if columnar.packed_bytes() < gd.packed_bytes() {
        RowStore::Columnar(columnar)
    } else {
        RowStore::Gd(gd)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GdCompressor;
    use proptest::prelude::*;

    fn matrix(columns: Vec<Vec<u64>>) -> EncodedMatrix {
        let n_rows = columns.first().map_or(0, |c| c.len());
        EncodedMatrix { columns, n_rows }
    }

    #[test]
    fn store_roundtrips_mixed_columns() {
        let m = matrix(vec![
            (0..2_000u64).map(|i| 1_700_000_000 + i * 30).collect(), // delta
            (0..2_000u64).map(|i| i % 7).collect(),                  // dict
            vec![42; 2_000],                                         // runend
            (0..2_000u64).map(|i| i.wrapping_mul(0x9E37_79B9) >> 12).collect(), // bitpack
        ]);
        let s = ColumnarStore::encode(&m);
        assert_eq!(s.decompress().columns, m.columns);
        assert_eq!(s.packed_bytes(), s.to_bytes().len());
        let restored = ColumnarStore::from_bytes(&s.to_bytes()).unwrap();
        assert_eq!(restored.decompress().columns, m.columns);
        assert_eq!(restored.codec_names(), s.codec_names());
        for (c, col) in m.columns.iter().enumerate() {
            for &row in &[0usize, 1, 999, 1_999] {
                assert_eq!(restored.get(row, c), Some(col[row]));
            }
            assert_eq!(restored.get(2_000, c), None);
        }
    }

    #[test]
    fn from_bytes_rejects_corruption() {
        let m = matrix(vec![(0..100u64).collect(), vec![5; 100]]);
        let bytes = ColumnarStore::encode(&m).to_bytes();
        assert!(ColumnarStore::from_bytes(&bytes).is_some());
        for cut in 0..bytes.len() {
            assert!(ColumnarStore::from_bytes(&bytes[..cut]).is_none(), "cut {cut}");
        }
        let mut extra = bytes.clone();
        extra.push(0);
        assert!(ColumnarStore::from_bytes(&extra).is_none());
        let mut bad_tag = bytes.clone();
        // First column tag byte sits right after the two header uvarints.
        bad_tag[2] = 9;
        assert!(ColumnarStore::from_bytes(&bad_tag).is_none());
    }

    #[test]
    fn choose_store_prefers_smaller() {
        // Structured columns: the cascade should crush GD here.
        let m = matrix(vec![
            (0..5_000u64).map(|i| 1_000_000 + i).collect(),
            (0..5_000u64).map(|i| i % 3).collect(),
        ]);
        let gd = GdCompressor::new().compress(&m);
        let gd_bytes = gd.packed_bytes();
        let store = choose_store(&m, gd);
        assert!(matches!(store, RowStore::Columnar(_)));
        assert!(store.packed_bytes() < gd_bytes);
        assert_eq!(store.decompress().columns, m.columns);
        assert_eq!(store.codec_names().len(), 2);
    }

    #[test]
    fn gd_store_count_matching_matches_scan() {
        let m = matrix(vec![(0..400u64).map(|i| i % 10).collect()]);
        let gd = RowStore::Gd(GdCompressor::new().compress(&m));
        assert_eq!(gd.count_matching(0, &EncodedPred::Eq(3)), Some(40));
        assert_eq!(gd.count_matching(1, &EncodedPred::Eq(3)), None);
        assert_eq!(gd.codec_names(), vec!["greedy-gd"]);
    }

    // -- property tests: every codec round-trips bit-identically, random access
    //    agrees with full decode, sizes are exact, predicates match a scan. --

    /// Generates one of four column shapes per case: low cardinality, runs,
    /// near-arithmetic sequences, or arbitrary u64s (incl. extremes).
    struct ColumnStrategy;

    impl Strategy for ColumnStrategy {
        type Value = Vec<u64>;

        fn generate(&self, rng: &mut proptest::TestRng) -> Vec<u64> {
            match rng.below(4) {
                0 => (0..rng.below(300)).map(|_| rng.below(8)).collect(),
                1 => {
                    let mut out = Vec::new();
                    for _ in 0..rng.below(40) {
                        let v = rng.below(5);
                        let n = 1 + rng.below(19) as usize;
                        out.extend(std::iter::repeat_n(v, n));
                    }
                    out
                }
                2 => {
                    let base = rng.below(1 << 40);
                    let step = rng.below(1000);
                    (0..rng.below(300))
                        .map(|i| base + i * step + rng.below(16))
                        .collect()
                }
                _ => (0..rng.below(120)).map(|_| rng.next_u64()).collect(),
            }
        }
    }

    fn column_strategy() -> impl Strategy<Value = Vec<u64>> {
        ColumnStrategy
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn prop_every_codec_roundtrips(vals in column_strategy()) {
            use super::super::{BitPackCodec, DeltaCodec, DictCodec, RunEndCodec};
            macro_rules! check {
                ($ty:ty) => {{
                    let c = <$ty>::encode(&vals);
                    prop_assert_eq!(c.decode(), vals.clone());
                    prop_assert_eq!(c.packed_bytes(), c.to_bytes().len());
                    let restored = <$ty>::from_bytes(&c.to_bytes());
                    prop_assert!(restored.is_some());
                    let restored = restored.unwrap();
                    prop_assert_eq!(restored.decode(), vals.clone());
                    for (i, &v) in vals.iter().enumerate() {
                        prop_assert_eq!(restored.get(i), Some(v));
                    }
                    prop_assert_eq!(restored.get(vals.len()), None);
                }};
            }
            check!(BitPackCodec);
            check!(DeltaCodec);
            check!(DictCodec);
            check!(RunEndCodec);
        }

        #[test]
        fn prop_chosen_codec_roundtrips_and_counts(
            vals in column_strategy(),
            lo in 0u64..40,
            span in 0u64..40,
        ) {
            let c = choose_codec(&vals);
            prop_assert_eq!(c.decode(), vals.clone());
            prop_assert_eq!(c.packed_bytes(), c.to_bytes().len());
            for pred in [
                EncodedPred::Eq(lo),
                EncodedPred::Range { lo: Some(lo), hi: Some(lo + span) },
                EncodedPred::Range { lo: None, hi: Some(lo) },
                EncodedPred::Range { lo: Some(lo), hi: None },
            ] {
                let want = vals.iter().filter(|&&v| pred.matches(v)).count() as u64;
                prop_assert_eq!(c.count_matching(&pred), want, "pred {:?}", pred);
            }
        }

        #[test]
        fn prop_columnar_store_roundtrips(
            cols in proptest::collection::vec(column_strategy(), 1..4)
        ) {
            let n = cols.iter().map(|c| c.len()).min().unwrap_or(0);
            let cols: Vec<Vec<u64>> =
                cols.into_iter().map(|mut c| { c.truncate(n); c }).collect();
            let m = matrix(cols);
            let s = ColumnarStore::encode(&m);
            prop_assert_eq!(s.packed_bytes(), s.to_bytes().len());
            let restored = ColumnarStore::from_bytes(&s.to_bytes());
            prop_assert!(restored.is_some());
            prop_assert_eq!(restored.unwrap().decompress().columns, m.columns);
        }
    }
}
