//! Dictionary + bit-packed codes for low-cardinality columns.
//!
//! The dictionary is the **sorted** distinct value set, so code order equals
//! value order: equality predicates binary-search the dictionary and compare
//! codes, range predicates become a contiguous code interval — both evaluate
//! on the packed codes without materializing a single value.

use ph_encoding::{read_uvarint, write_uvarint, BitReader, BitWriter};

use super::{uvarint_len, width_for, Codec, EncodedPred, MAX_CODEC_ROWS};

/// Sorted-dictionary column store.
///
/// Wire layout: `uvarint n_rows | uvarint k | dict | u8 code_width | packed
/// codes`, where `dict` is `uvarint dict[0]` followed by `k-1` uvarint gaps
/// (`dict[i] - dict[i-1]`, each ≥ 1 — strictly ascending by construction).
#[derive(Debug, Clone)]
pub struct DictCodec {
    n_rows: usize,
    dict: Vec<u64>,
    code_width: u32,
    codes: Vec<u8>,
    dict_bytes: usize,
}

fn dict_payload_len(dict: &[u64]) -> usize {
    match dict.first() {
        None => 0,
        Some(&first) => {
            uvarint_len(first)
                + dict.windows(2).map(|w| uvarint_len(w[1] - w[0])).sum::<usize>()
        }
    }
}

impl DictCodec {
    /// Encodes a column slice through its sorted distinct-value dictionary.
    pub fn encode(values: &[u64]) -> Self {
        let mut dict: Vec<u64> = values.to_vec();
        dict.sort_unstable();
        dict.dedup();
        let code_width = width_for(dict.len().saturating_sub(1) as u64);
        let mut w = BitWriter::new();
        if code_width > 0 {
            for &v in values {
                // Present by construction: dict is the distinct set of values.
                let code = dict.binary_search(&v).unwrap_or(0) as u64;
                w.write_bits(code, code_width);
            }
        }
        let dict_bytes = dict_payload_len(&dict);
        Self { n_rows: values.len(), dict, code_width, codes: w.finish(), dict_bytes }
    }

    /// Exact serialized size given the sorted distinct set of the column.
    pub fn size_for(n_rows: usize, sorted_distinct: &[u64]) -> usize {
        let k = sorted_distinct.len();
        let cw = width_for(k.saturating_sub(1) as u64) as usize;
        uvarint_len(n_rows as u64)
            + uvarint_len(k as u64)
            + dict_payload_len(sorted_distinct)
            + 1
            + (n_rows * cw).div_ceil(8)
    }

    /// Number of distinct values.
    pub fn n_distinct(&self) -> usize {
        self.dict.len()
    }

    /// The code interval `[lo, hi)` whose dictionary values satisfy `pred`,
    /// empty if none do. Valid because the dictionary is sorted ascending.
    fn code_interval(&self, pred: &EncodedPred) -> (u64, u64) {
        match *pred {
            EncodedPred::Eq(v) => match self.dict.binary_search(&v) {
                Ok(c) => (c as u64, c as u64 + 1),
                Err(_) => (0, 0),
            },
            EncodedPred::Range { lo, hi } => {
                let start = match lo {
                    Some(l) => self.dict.partition_point(|&d| d < l),
                    None => 0,
                };
                let end = match hi {
                    Some(h) => self.dict.partition_point(|&d| d <= h),
                    None => self.dict.len(),
                };
                (start as u64, end.max(start) as u64)
            }
        }
    }
}

impl Codec for DictCodec {
    fn n_rows(&self) -> usize {
        self.n_rows
    }

    fn get(&self, row: usize) -> Option<u64> {
        if row >= self.n_rows {
            return None;
        }
        if self.code_width == 0 {
            return self.dict.first().copied();
        }
        let mut r = BitReader::new(&self.codes);
        r.seek(row as u64 * self.code_width as u64);
        let code = r.read_bits(self.code_width)? as usize;
        // from_bytes validated every packed code < k.
        self.dict.get(code).copied()
    }

    fn decode(&self) -> Vec<u64> {
        if self.code_width == 0 {
            return vec![self.dict.first().copied().unwrap_or(0); self.n_rows];
        }
        let mut out = Vec::with_capacity(self.n_rows);
        let mut r = BitReader::new(&self.codes);
        for _ in 0..self.n_rows {
            let code = r.read_bits(self.code_width).unwrap_or(0) as usize;
            out.push(self.dict.get(code).copied().unwrap_or(0));
        }
        out
    }

    fn packed_bytes(&self) -> usize {
        uvarint_len(self.n_rows as u64)
            + uvarint_len(self.dict.len() as u64)
            + self.dict_bytes
            + 1
            + self.codes.len()
    }

    fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.packed_bytes());
        write_uvarint(&mut out, self.n_rows as u64);
        write_uvarint(&mut out, self.dict.len() as u64);
        if let Some(&first) = self.dict.first() {
            write_uvarint(&mut out, first);
            for w in self.dict.windows(2) {
                write_uvarint(&mut out, w[1] - w[0]);
            }
        }
        out.push(self.code_width as u8);
        out.extend_from_slice(&self.codes);
        out
    }

    fn from_bytes(data: &[u8]) -> Option<Self> {
        let mut pos = 0;
        let n_rows = read_uvarint(data, &mut pos)? as usize;
        if n_rows > MAX_CODEC_ROWS {
            return None;
        }
        let k = read_uvarint(data, &mut pos)? as usize;
        if k > MAX_CODEC_ROWS {
            return None;
        }
        let mut dict = Vec::with_capacity(k);
        if k > 0 {
            let mut v = read_uvarint(data, &mut pos)?;
            dict.push(v);
            for _ in 1..k {
                let gap = read_uvarint(data, &mut pos)?;
                if gap == 0 {
                    return None; // must be strictly ascending
                }
                v = v.checked_add(gap)?;
                dict.push(v);
            }
        }
        let code_width = *data.get(pos)? as u32;
        pos += 1;
        if code_width != width_for(k.saturating_sub(1) as u64) {
            return None;
        }
        if k == 0 && n_rows > 0 {
            return None;
        }
        let payload = data.get(pos..)?;
        if payload.len() != (n_rows * code_width as usize).div_ceil(8) {
            return None;
        }
        // Validate every code up-front so get/decode stay total.
        if code_width > 0 {
            let mut r = BitReader::new(payload);
            for _ in 0..n_rows {
                let code = r.read_bits(code_width)? as usize;
                if code >= k {
                    return None;
                }
            }
        }
        let dict_bytes = dict_payload_len(&dict);
        Some(Self { n_rows, dict, code_width, codes: payload.to_vec(), dict_bytes })
    }

    fn count_matching(&self, pred: &EncodedPred) -> u64 {
        let (lo, hi) = self.code_interval(pred);
        if lo >= hi {
            return 0;
        }
        if self.code_width == 0 {
            // Single dict entry and it matched: every row does.
            return self.n_rows as u64;
        }
        let mut r = BitReader::new(&self.codes);
        let mut count = 0u64;
        for _ in 0..self.n_rows {
            let code = r.read_bits(self.code_width).unwrap_or(0);
            if code >= lo && code < hi {
                count += 1;
            }
        }
        count
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_low_cardinality() {
        let vals: Vec<u64> = (0..600).map(|i| [3u64, 900, 7, 3, 100][i % 5]).collect();
        let c = DictCodec::encode(&vals);
        assert_eq!(c.n_distinct(), 4);
        assert_eq!(c.decode(), vals);
        assert_eq!(c.packed_bytes(), c.to_bytes().len());
        let restored = DictCodec::from_bytes(&c.to_bytes()).unwrap();
        assert_eq!(restored.decode(), vals);
        for (i, &v) in vals.iter().enumerate() {
            assert_eq!(restored.get(i), Some(v));
        }
        let mut distinct = vals.clone();
        distinct.sort_unstable();
        distinct.dedup();
        assert_eq!(DictCodec::size_for(vals.len(), &distinct), c.to_bytes().len());
    }

    #[test]
    fn single_value_column_has_no_code_bits() {
        let c = DictCodec::encode(&[9; 512]);
        assert_eq!(c.code_width, 0);
        assert_eq!(c.decode(), vec![9; 512]);
        assert_eq!(c.get(511), Some(9));
        assert_eq!(c.count_matching(&EncodedPred::Eq(9)), 512);
        assert_eq!(c.count_matching(&EncodedPred::Eq(8)), 0);
        let restored = DictCodec::from_bytes(&c.to_bytes()).unwrap();
        assert_eq!(restored.decode(), vec![9; 512]);
    }

    #[test]
    fn predicates_resolve_to_code_intervals() {
        let vals = vec![10u64, 20, 30, 20, 10, 40, 40, 40];
        let c = DictCodec::encode(&vals);
        assert_eq!(c.count_matching(&EncodedPred::Eq(20)), 2);
        assert_eq!(c.count_matching(&EncodedPred::Eq(25)), 0);
        let r = EncodedPred::Range { lo: Some(15), hi: Some(35) };
        assert_eq!(c.count_matching(&r), 3);
        let open = EncodedPred::Range { lo: None, hi: Some(10) };
        assert_eq!(c.count_matching(&open), 2);
    }

    #[test]
    fn from_bytes_rejects_corruption() {
        let c = DictCodec::encode(&[1u64, 5, 9, 5, 1]);
        let bytes = c.to_bytes();
        assert!(DictCodec::from_bytes(&bytes).is_some());
        for cut in 0..bytes.len() {
            assert!(DictCodec::from_bytes(&bytes[..cut]).is_none(), "cut {cut}");
        }
        // Zero gap (duplicate dict entry) must be rejected.
        let mut zero_gap = Vec::new();
        write_uvarint(&mut zero_gap, 2); // n_rows
        write_uvarint(&mut zero_gap, 2); // k
        write_uvarint(&mut zero_gap, 5); // dict[0]
        write_uvarint(&mut zero_gap, 0); // gap of 0 — invalid
        zero_gap.push(1); // code_width
        zero_gap.push(0x00);
        assert!(DictCodec::from_bytes(&zero_gap).is_none());
    }
}
