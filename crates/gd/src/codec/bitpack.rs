//! Frame-of-reference bit packing: subtract the column minimum, store residuals
//! at the fixed width of the largest residual. Constant columns cost 0 bits/row.

use ph_encoding::{read_uvarint, write_uvarint, BitReader, BitWriter};

use super::{uvarint_len, width_for, Codec, EncodedPred, MAX_CODEC_ROWS};

/// Minimum-subtracted fixed-width column store.
///
/// Wire layout: `uvarint n_rows | uvarint min | u8 width | packed residuals`
/// (`n_rows * width` bits, zero-padded to a byte boundary).
#[derive(Debug, Clone)]
pub struct BitPackCodec {
    n_rows: usize,
    min: u64,
    width: u32,
    packed: Vec<u8>,
}

impl BitPackCodec {
    /// Encodes a column slice. Residual reconstruction uses wrapping addition,
    /// so even `min > 0` with width-64 residuals round-trips.
    pub fn encode(values: &[u64]) -> Self {
        let min = values.iter().copied().min().unwrap_or(0);
        let max = values.iter().copied().max().unwrap_or(0);
        let width = width_for(max - min);
        let mut w = BitWriter::new();
        if width > 0 {
            for &v in values {
                w.write_bits(v - min, width);
            }
        }
        Self { n_rows: values.len(), min, width, packed: w.finish() }
    }

    /// Exact serialized size for a column with the given stats — lets
    /// [`choose_codec`](super::choose_codec) cost this codec without encoding.
    pub fn size_for(n_rows: usize, min: u64, max: u64) -> usize {
        let width = width_for(max - min) as usize;
        uvarint_len(n_rows as u64) + uvarint_len(min) + 1 + (n_rows * width).div_ceil(8)
    }
}

impl Codec for BitPackCodec {
    fn n_rows(&self) -> usize {
        self.n_rows
    }

    fn get(&self, row: usize) -> Option<u64> {
        if row >= self.n_rows {
            return None;
        }
        if self.width == 0 {
            return Some(self.min);
        }
        let mut r = BitReader::new(&self.packed);
        r.seek(row as u64 * self.width as u64);
        let residual = r.read_bits(self.width)?;
        Some(self.min.wrapping_add(residual))
    }

    fn decode(&self) -> Vec<u64> {
        if self.width == 0 {
            return vec![self.min; self.n_rows];
        }
        let mut out = Vec::with_capacity(self.n_rows);
        let mut r = BitReader::new(&self.packed);
        for _ in 0..self.n_rows {
            // from_bytes validated payload length, encode wrote every row.
            let residual = r.read_bits(self.width).unwrap_or(0);
            out.push(self.min.wrapping_add(residual));
        }
        out
    }

    fn packed_bytes(&self) -> usize {
        uvarint_len(self.n_rows as u64) + uvarint_len(self.min) + 1 + self.packed.len()
    }

    fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.packed_bytes());
        write_uvarint(&mut out, self.n_rows as u64);
        write_uvarint(&mut out, self.min);
        out.push(self.width as u8);
        out.extend_from_slice(&self.packed);
        out
    }

    fn from_bytes(data: &[u8]) -> Option<Self> {
        let mut pos = 0;
        let n_rows = read_uvarint(data, &mut pos)? as usize;
        if n_rows > MAX_CODEC_ROWS {
            return None;
        }
        let min = read_uvarint(data, &mut pos)?;
        let width = *data.get(pos)? as u32;
        pos += 1;
        if width > 64 {
            return None;
        }
        let payload = data.get(pos..)?;
        if payload.len() != (n_rows * width as usize).div_ceil(8) {
            return None;
        }
        Some(Self { n_rows, min, width, packed: payload.to_vec() })
    }

    fn count_matching(&self, pred: &EncodedPred) -> u64 {
        if self.width == 0 {
            return if pred.matches(self.min) { self.n_rows as u64 } else { 0 };
        }
        let mut r = BitReader::new(&self.packed);
        let mut count = 0u64;
        for _ in 0..self.n_rows {
            let residual = r.read_bits(self.width).unwrap_or(0);
            if pred.matches(self.min.wrapping_add(residual)) {
                count += 1;
            }
        }
        count
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_column_is_header_only() {
        let c = BitPackCodec::encode(&[42; 1000]);
        assert_eq!(c.packed_bytes(), c.to_bytes().len());
        // uvarint(1000)=2 + uvarint(42)=1 + width byte: no per-row cost.
        assert_eq!(c.packed_bytes(), 4);
        assert_eq!(c.decode(), vec![42; 1000]);
        assert_eq!(c.get(999), Some(42));
        assert_eq!(c.get(1000), None);
    }

    #[test]
    fn roundtrip_with_extremes() {
        let vals = vec![5, u64::MAX, 5, 1 << 52, 77];
        let c = BitPackCodec::encode(&vals);
        let restored = BitPackCodec::from_bytes(&c.to_bytes()).unwrap();
        assert_eq!(restored.decode(), vals);
        for (i, &v) in vals.iter().enumerate() {
            assert_eq!(restored.get(i), Some(v));
        }
        assert_eq!(c.packed_bytes(), c.to_bytes().len());
        assert_eq!(
            BitPackCodec::size_for(vals.len(), 5, u64::MAX),
            c.to_bytes().len()
        );
    }

    #[test]
    fn from_bytes_rejects_bad_payload_length() {
        let c = BitPackCodec::encode(&[1, 2, 3, 4]);
        let mut bytes = c.to_bytes();
        bytes.push(0);
        assert!(BitPackCodec::from_bytes(&bytes).is_none());
        bytes.truncate(bytes.len() - 2);
        assert!(BitPackCodec::from_bytes(&bytes).is_none());
        assert!(BitPackCodec::from_bytes(&[]).is_none());
    }

    #[test]
    fn count_matching_agrees_with_scan() {
        let vals: Vec<u64> = (0..500).map(|i| (i * 7) % 40).collect();
        let c = BitPackCodec::encode(&vals);
        let pred = EncodedPred::Range { lo: Some(10), hi: Some(20) };
        let want = vals.iter().filter(|&&v| pred.matches(v)).count() as u64;
        assert_eq!(c.count_matching(&pred), want);
    }
}
