//! Per-column codec selection from one pass of cheap statistics.

use super::bitpack::BitPackCodec;
use super::delta::{DeltaCodec, DELTA_BLOCK};
use super::dict::DictCodec;
use super::runend::RunEndCodec;
use super::{Codec, EncodedPred};

/// Distinct values tracked before a column is declared high-cardinality and
/// the dictionary codec drops out of the race.
const MAX_DISTINCT: usize = 65_536;

/// A sealed column under whichever codec won selection.
#[derive(Debug, Clone)]
pub enum ColumnCodec {
    /// Frame-of-reference fixed-width packing.
    BitPack(BitPackCodec),
    /// Blocked zigzag-delta packing.
    Delta(DeltaCodec),
    /// Sorted dictionary + packed codes.
    Dict(DictCodec),
    /// Run values + exclusive run ends.
    RunEnd(RunEndCodec),
}

impl ColumnCodec {
    /// Wire tag identifying the variant inside a columnar store blob.
    pub fn tag(&self) -> u8 {
        match self {
            ColumnCodec::BitPack(_) => 0,
            ColumnCodec::Delta(_) => 1,
            ColumnCodec::Dict(_) => 2,
            ColumnCodec::RunEnd(_) => 3,
        }
    }

    /// Stable human-readable codec name, for `/stats` and bench reporting.
    pub fn name(&self) -> &'static str {
        match self {
            ColumnCodec::BitPack(_) => "bitpack",
            ColumnCodec::Delta(_) => "delta",
            ColumnCodec::Dict(_) => "dict",
            ColumnCodec::RunEnd(_) => "runend",
        }
    }

    /// Restores a column payload previously written under `tag`.
    pub fn from_tag_bytes(tag: u8, data: &[u8]) -> Option<Self> {
        match tag {
            0 => BitPackCodec::from_bytes(data).map(ColumnCodec::BitPack),
            1 => DeltaCodec::from_bytes(data).map(ColumnCodec::Delta),
            2 => DictCodec::from_bytes(data).map(ColumnCodec::Dict),
            3 => RunEndCodec::from_bytes(data).map(ColumnCodec::RunEnd),
            _ => None,
        }
    }
}

impl Codec for ColumnCodec {
    fn n_rows(&self) -> usize {
        match self {
            ColumnCodec::BitPack(c) => c.n_rows(),
            ColumnCodec::Delta(c) => c.n_rows(),
            ColumnCodec::Dict(c) => c.n_rows(),
            ColumnCodec::RunEnd(c) => c.n_rows(),
        }
    }

    fn get(&self, row: usize) -> Option<u64> {
        match self {
            ColumnCodec::BitPack(c) => c.get(row),
            ColumnCodec::Delta(c) => c.get(row),
            ColumnCodec::Dict(c) => c.get(row),
            ColumnCodec::RunEnd(c) => c.get(row),
        }
    }

    fn decode(&self) -> Vec<u64> {
        match self {
            ColumnCodec::BitPack(c) => c.decode(),
            ColumnCodec::Delta(c) => c.decode(),
            ColumnCodec::Dict(c) => c.decode(),
            ColumnCodec::RunEnd(c) => c.decode(),
        }
    }

    fn packed_bytes(&self) -> usize {
        match self {
            ColumnCodec::BitPack(c) => c.packed_bytes(),
            ColumnCodec::Delta(c) => c.packed_bytes(),
            ColumnCodec::Dict(c) => c.packed_bytes(),
            ColumnCodec::RunEnd(c) => c.packed_bytes(),
        }
    }

    fn to_bytes(&self) -> Vec<u8> {
        match self {
            ColumnCodec::BitPack(c) => c.to_bytes(),
            ColumnCodec::Delta(c) => c.to_bytes(),
            ColumnCodec::Dict(c) => c.to_bytes(),
            ColumnCodec::RunEnd(c) => c.to_bytes(),
        }
    }

    /// Not meaningful without a tag; use [`ColumnCodec::from_tag_bytes`].
    fn from_bytes(_data: &[u8]) -> Option<Self> {
        None
    }

    fn count_matching(&self, pred: &EncodedPred) -> u64 {
        match self {
            ColumnCodec::BitPack(c) => c.count_matching(pred),
            ColumnCodec::Delta(c) => c.count_matching(pred),
            ColumnCodec::Dict(c) => c.count_matching(pred),
            ColumnCodec::RunEnd(c) => c.count_matching(pred),
        }
    }
}

/// One-pass column statistics feeding the exact size model of every codec.
#[derive(Debug)]
pub struct ColumnStats {
    /// Row count.
    pub n_rows: usize,
    /// Minimum value.
    pub min: u64,
    /// Maximum value.
    pub max: u64,
    /// Number of runs of consecutive equal values.
    pub n_runs: usize,
    /// Minimum zigzag delta over non-anchor rows.
    pub min_zz: u64,
    /// Maximum zigzag delta over non-anchor rows.
    pub max_zz: u64,
    /// Sorted distinct values, `None` once more than [`MAX_DISTINCT`] seen.
    pub distinct: Option<Vec<u64>>,
}

impl ColumnStats {
    /// Gathers stats in one pass plus one bounded sort for the distinct set.
    pub fn gather(values: &[u64]) -> Self {
        let mut min = u64::MAX;
        let mut max = 0u64;
        let mut n_runs = 0usize;
        let mut min_zz = u64::MAX;
        let mut max_zz = 0u64;
        let mut any_delta = false;
        for (r, &v) in values.iter().enumerate() {
            min = min.min(v);
            max = max.max(v);
            if r == 0 || v != values[r - 1] {
                n_runs += 1;
            }
            if r > 0 && r % DELTA_BLOCK != 0 {
                let d = v.wrapping_sub(values[r - 1]) as i64;
                let zz = ((d << 1) ^ (d >> 63)) as u64;
                min_zz = min_zz.min(zz);
                max_zz = max_zz.max(zz);
                any_delta = true;
            }
        }
        if values.is_empty() {
            min = 0;
        }
        if !any_delta {
            min_zz = 0;
        }
        let mut sorted = values.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        let distinct = (sorted.len() <= MAX_DISTINCT).then_some(sorted);
        Self { n_rows: values.len(), min, max, n_runs, min_zz, max_zz, distinct }
    }
}

/// Picks the smallest codec for a column by exact serialized-size accounting.
/// Ties break toward the more predicate-friendly representation (run-skipping,
/// then code-interval evaluation) in the order run-end, dict, bitpack, delta.
pub fn choose_codec(values: &[u64]) -> ColumnCodec {
    let stats = ColumnStats::gather(values);
    let mut best_size =
        RunEndCodec::size_for(stats.n_rows, stats.n_runs, stats.min, stats.max);
    let mut best = 3u8;
    if let Some(distinct) = &stats.distinct {
        let s = DictCodec::size_for(stats.n_rows, distinct);
        if s < best_size {
            best_size = s;
            best = 2;
        }
    }
    let s = BitPackCodec::size_for(stats.n_rows, stats.min, stats.max);
    if s < best_size {
        best_size = s;
        best = 0;
    }
    let s = DeltaCodec::size_for(stats.n_rows, stats.max, stats.min_zz, stats.max_zz);
    if s < best_size {
        best = 1;
    }
    match best {
        0 => ColumnCodec::BitPack(BitPackCodec::encode(values)),
        1 => ColumnCodec::Delta(DeltaCodec::encode(values)),
        2 => ColumnCodec::Dict(DictCodec::encode(values)),
        _ => ColumnCodec::RunEnd(RunEndCodec::encode(values)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_column_costs_only_a_header() {
        // Bitpack's width-0 layout beats even run-end here: 4 header bytes.
        let c = choose_codec(&[7; 10_000]);
        assert_eq!(c.name(), "bitpack");
        assert!(c.packed_bytes() <= 4, "got {}", c.packed_bytes());
        assert_eq!(c.decode(), vec![7; 10_000]);
    }

    #[test]
    fn long_runs_pick_runend() {
        // Two alternating values in long runs: run-end stores 20 runs, while
        // bitpack/dict pay 1 bit/row and delta pays for every boundary.
        let vals: Vec<u64> = (0..10_000u64).map(|i| (i / 500) % 2).collect();
        let c = choose_codec(&vals);
        assert_eq!(c.name(), "runend", "chosen {}", c.name());
        assert_eq!(c.decode(), vals);
    }

    #[test]
    fn fixed_step_timestamps_pick_delta() {
        let vals: Vec<u64> = (0..10_000u64).map(|i| 1_700_000_000 + i * 60).collect();
        let c = choose_codec(&vals);
        assert_eq!(c.name(), "delta", "chosen {}", c.name());
        assert_eq!(c.decode(), vals);
    }

    #[test]
    fn shuffled_low_cardinality_picks_dict_or_better() {
        // Wide values (need 40+ bits raw) but only 8 distinct, no run structure.
        let vals: Vec<u64> = (0..8_192u64).map(|i| (i * 2_654_435_761) % 8 * (1 << 40)).collect();
        let c = choose_codec(&vals);
        assert_eq!(c.decode(), vals);
        // 3-bit codes beat 43-bit packing; dict should win.
        assert_eq!(c.name(), "dict", "chosen {}", c.name());
    }

    #[test]
    fn dense_noise_falls_back_to_bitpack() {
        // Properly mixed 32-bit noise (a raw Weyl sequence i*K would have a
        // constant delta and hand the column to the delta codec).
        let vals: Vec<u64> = (0..4_096u64)
            .map(|i| {
                let mut z = i.wrapping_add(0x9E37_79B9_7F4A_7C15);
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                (z ^ (z >> 31)) >> 32
            })
            .collect();
        let c = choose_codec(&vals);
        assert_eq!(c.decode(), vals);
        assert_eq!(c.name(), "bitpack", "chosen {}", c.name());
    }

    #[test]
    fn chosen_size_is_minimal_among_candidates() {
        let cases: Vec<Vec<u64>> = vec![
            (0..500u64).collect(),
            vec![3; 500],
            (0..500u64).map(|i| i % 4).collect(),
            (0..500u64).map(|i| i.wrapping_mul(0x5851_F42D_4C95_7F2D) >> 48).collect(),
        ];
        for vals in cases {
            let chosen = choose_codec(&vals);
            let all = [
                ColumnCodec::BitPack(BitPackCodec::encode(&vals)),
                ColumnCodec::Delta(DeltaCodec::encode(&vals)),
                ColumnCodec::Dict(DictCodec::encode(&vals)),
                ColumnCodec::RunEnd(RunEndCodec::encode(&vals)),
            ];
            let min = all.iter().map(|c| c.packed_bytes()).min().unwrap();
            assert_eq!(chosen.packed_bytes(), min, "codec {}", chosen.name());
        }
    }

    #[test]
    fn tag_dispatch_roundtrips() {
        let vals: Vec<u64> = (0..300u64).map(|i| i % 5).collect();
        for codec in [
            ColumnCodec::BitPack(BitPackCodec::encode(&vals)),
            ColumnCodec::Delta(DeltaCodec::encode(&vals)),
            ColumnCodec::Dict(DictCodec::encode(&vals)),
            ColumnCodec::RunEnd(RunEndCodec::encode(&vals)),
        ] {
            let restored =
                ColumnCodec::from_tag_bytes(codec.tag(), &codec.to_bytes()).unwrap();
            assert_eq!(restored.decode(), vals);
            assert_eq!(restored.name(), codec.name());
            assert_eq!(codec.packed_bytes(), codec.to_bytes().len());
        }
        assert!(ColumnCodec::from_tag_bytes(9, &[]).is_none());
    }
}
