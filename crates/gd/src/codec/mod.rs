//! Adaptive per-column codecs for sealed-segment row stores.
//!
//! GreedyGD treats a row as one unit: every column contributes bits to a shared
//! base/deviation split, and compression comes from whole-row redundancy. Real
//! machine-generated tables are *column*-heterogeneous — a timestamp advances by
//! a fixed step, a sub-metering column is 90 % zeros, a categorical column has a
//! dozen distinct values, a voltage column is dense noise — and each shape has a
//! specialist encoder that beats the row-wise split on that column alone
//! ("High-Ratio Compression for Machine-Generated Data", PAPERS.md).
//!
//! This module provides those specialists behind one [`Codec`] contract:
//!
//! * [`BitPackCodec`] — frame-of-reference: minimum subtracted, residuals at a
//!   fixed bit width (degenerates to **0 bits/row** on constant columns);
//! * [`DeltaCodec`] — zigzag deltas with their own frame of reference, plus
//!   periodic absolute anchors for random access (0 bits/row on fixed-step
//!   timestamps);
//! * [`DictCodec`] — sorted distinct-value dictionary + bit-packed codes; code
//!   order equals value order, so equality *and* range predicates evaluate on
//!   the codes without materializing values;
//! * [`RunEndCodec`] — run values + exclusive run ends; predicates skip whole
//!   runs.
//!
//! [`choose_codec`] picks per column from one pass of cheap statistics
//! (value range, run structure, bounded distinct count, delta spread) by exact
//! serialized-size accounting; [`choose_store`] then keeps the columnar store
//! only when its total beats the GreedyGD fallback, so the cascade can never
//! regress a table GD already wins (e.g. whole-row duplication).
//!
//! Every codec's `from_bytes` validates enough that `decode`/`get` are total
//! afterwards — corrupted payloads fail at load with `None`, never at read with
//! a panic — matching the serving-path posture of ph-lint rule R2.

mod bitpack;
mod column;
mod columnar;
mod delta;
mod dict;
mod fsst;
mod runend;

pub use bitpack::BitPackCodec;
pub use column::{choose_codec, ColumnCodec};
pub use columnar::{choose_store, ColumnarStore, RowStore};
pub use delta::DeltaCodec;
pub use dict::DictCodec;
pub use fsst::SymbolTable;
pub use runend::RunEndCodec;

/// Upper bound on `n_rows` accepted from serialized input: a corrupted length
/// field must never translate into a multi-gigabyte allocation.
pub(crate) const MAX_CODEC_ROWS: usize = 1 << 28;

/// A predicate over one column in the *encoded* (non-negative integer) domain,
/// with **inclusive** bounds. Literals are mapped into this domain by
/// [`Preprocessor::encode_literal`](crate::Preprocessor::encode_literal); the
/// codecs evaluate it directly on their compressed representation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EncodedPred {
    /// Exact match on one encoded value (dictionary codes, categorical ranks).
    Eq(u64),
    /// `lo ≤ v ≤ hi`; a missing bound is unbounded on that side.
    Range {
        /// Inclusive lower bound.
        lo: Option<u64>,
        /// Inclusive upper bound.
        hi: Option<u64>,
    },
}

impl EncodedPred {
    /// Whether an encoded value satisfies the predicate.
    #[inline]
    pub fn matches(&self, v: u64) -> bool {
        match *self {
            EncodedPred::Eq(t) => v == t,
            EncodedPred::Range { lo, hi } => {
                lo.is_none_or(|l| v >= l) && hi.is_none_or(|h| v <= h)
            }
        }
    }
}

/// The per-column codec contract: encode from a column slice of an
/// [`EncodedMatrix`](crate::EncodedMatrix), total decode, O(1) serialized-size
/// accounting, random row access, and predicate evaluation on the encoded
/// representation.
pub trait Codec: Sized {
    /// Rows held.
    fn n_rows(&self) -> usize;

    /// Random access to one row's value; `None` past the end. Never panics,
    /// even on stores restored from hostile bytes (`from_bytes` validates).
    fn get(&self, row: usize) -> Option<u64>;

    /// Full decode back to the encoded-domain column. Total: every in-memory
    /// store (encoded or validated at `from_bytes`) decodes without panicking.
    fn decode(&self) -> Vec<u64>;

    /// Serialized size in bytes, computed arithmetically in O(1) — must equal
    /// `to_bytes().len()` exactly (pinned by proptest).
    fn packed_bytes(&self) -> usize;

    /// Serializes to the wire layout.
    fn to_bytes(&self) -> Vec<u8>;

    /// Restores from [`Codec::to_bytes`] output; `None` on malformed input.
    /// Validation here is what makes `decode`/`get` total afterwards.
    fn from_bytes(data: &[u8]) -> Option<Self>;

    /// Rows matching `pred`, evaluated without materializing the column.
    fn count_matching(&self, pred: &EncodedPred) -> u64;
}

/// Bit width needed for `v`, allowing **zero** for `v == 0` — unlike
/// [`ph_encoding::bits_for`], which floors at 1. A constant column's residuals
/// are all zero and should cost 0 bits/row, not 1.
#[inline]
pub(crate) fn width_for(v: u64) -> u32 {
    64 - v.leading_zeros()
}

/// Serialized length of a uvarint, for O(1) size accounting.
pub(crate) fn uvarint_len(v: u64) -> usize {
    let mut v = v;
    let mut n = 1;
    while v >= 0x80 {
        v >>= 7;
        n += 1;
    }
    n
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn width_for_allows_zero() {
        assert_eq!(width_for(0), 0);
        assert_eq!(width_for(1), 1);
        assert_eq!(width_for(255), 8);
        assert_eq!(width_for(u64::MAX), 64);
    }

    #[test]
    fn uvarint_len_matches_encoder() {
        for v in [0u64, 1, 127, 128, 16_383, 16_384, u64::MAX] {
            let mut buf = Vec::new();
            ph_encoding::write_uvarint(&mut buf, v);
            assert_eq!(uvarint_len(v), buf.len(), "v = {v}");
        }
    }

    #[test]
    fn pred_matches_inclusive_bounds() {
        let p = EncodedPred::Range { lo: Some(3), hi: Some(7) };
        assert!(!p.matches(2));
        assert!(p.matches(3));
        assert!(p.matches(7));
        assert!(!p.matches(8));
        let open = EncodedPred::Range { lo: None, hi: None };
        assert!(open.matches(0) && open.matches(u64::MAX));
        assert!(EncodedPred::Eq(5).matches(5));
        assert!(!EncodedPred::Eq(5).matches(6));
    }
}
