//! FSST-style static symbol table for string dictionaries.
//!
//! A static table of ≤ 254 symbols (each 1–8 bytes) is fit once over a string
//! corpus; compression replaces the greedy longest symbol match with its 1-byte
//! code, escaping bytes outside the table as `0xFF` + literal. Unlike
//! general-purpose LZ, decompression is a table lookup per output symbol and
//! random access needs no window — the right shape for the preprocessor's
//! categorical dictionaries, where entries are short and share long prefixes
//! (URLs, hostnames, enum-ish labels).
//!
//! Table construction is a bounded single-pass frequency count, not the full
//! FSST iterative refinement: substrings of length 2..=8 are scored by saved
//! bytes (`count * (len-1)`) minus table cost (`len + 1`), top scorers win
//! slots, and remaining slots hold the most frequent single bytes. Entirely
//! deterministic (ties break on byte content) so serialized preprocessor
//! blobs are bit-stable across runs.

use std::collections::HashMap;

/// Escape prefix for bytes with no symbol: `0xFF literal_byte`.
const ESCAPE: u8 = 0xFF;
/// Maximum number of symbols — code 254 stays unused, 255 is the escape.
const MAX_SYMBOLS: usize = 254;
/// Maximum symbol length in bytes.
const MAX_SYMBOL_LEN: usize = 8;
/// Cap on corpus bytes examined while counting substrings.
const SAMPLE_BUDGET: usize = 1 << 20;
/// Multi-byte candidates kept before single-byte fill.
const MAX_MULTI: usize = 200;

/// A static symbol table: the shared dictionary side of the codec.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SymbolTable {
    symbols: Vec<Vec<u8>>,
}

impl SymbolTable {
    /// Fits a table over a corpus of strings.
    pub fn build<S: AsRef<[u8]>>(corpus: &[S]) -> Self {
        let mut counts: HashMap<&[u8], u64> = HashMap::new();
        let mut byte_counts = [0u64; 256];
        let mut budget = SAMPLE_BUDGET;
        for s in corpus {
            let s = s.as_ref();
            if budget == 0 {
                break;
            }
            let take = s.len().min(budget);
            budget -= take;
            let s = &s[..take];
            for &b in s {
                byte_counts[b as usize] += 1;
            }
            for start in 0..s.len() {
                for len in 2..=MAX_SYMBOL_LEN.min(s.len() - start) {
                    *counts.entry(&s[start..start + len]).or_insert(0) += 1;
                }
            }
        }
        // Score = bytes saved when the symbol replaces its occurrences, minus
        // the table-entry cost. Deterministic order: score desc, then bytes.
        let mut scored: Vec<(&[u8], i64)> = counts
            .into_iter()
            .filter(|&(_, c)| c >= 2)
            .map(|(s, c)| (s, c as i64 * (s.len() as i64 - 1) - (s.len() as i64 + 1)))
            .filter(|&(_, score)| score > 0)
            .collect();
        scored.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(b.0)));
        scored.truncate(MAX_MULTI);

        let mut symbols: Vec<Vec<u8>> = scored.into_iter().map(|(s, _)| s.to_vec()).collect();
        // Fill remaining slots with the most frequent single bytes so common
        // characters never pay the 2-byte escape.
        let mut singles: Vec<(u64, u8)> = (0u16..256)
            .map(|b| (byte_counts[b as usize], b as u8))
            .filter(|&(c, _)| c > 0)
            .collect();
        singles.sort_by(|a, b| b.0.cmp(&a.0).then_with(|| a.1.cmp(&b.1)));
        for (_, b) in singles {
            if symbols.len() >= MAX_SYMBOLS {
                break;
            }
            symbols.push(vec![b]);
        }
        symbols.truncate(MAX_SYMBOLS);
        Self { symbols }
    }

    /// Number of symbols.
    pub fn len(&self) -> usize {
        self.symbols.len()
    }

    /// Whether the table holds no symbols.
    pub fn is_empty(&self) -> bool {
        self.symbols.is_empty()
    }

    fn matcher(&self) -> HashMap<&[u8], u8> {
        self.symbols
            .iter()
            .enumerate()
            .map(|(i, sym)| (sym.as_slice(), i as u8))
            .collect()
    }

    /// Compresses one string by greedy longest-match against the table.
    pub fn compress(&self, s: &[u8]) -> Vec<u8> {
        self.compress_with(&self.matcher(), s)
    }

    /// Compresses a batch, building the lookup structure once.
    pub fn compress_all<S: AsRef<[u8]>>(&self, strings: &[S]) -> Vec<Vec<u8>> {
        let by_bytes = self.matcher();
        strings.iter().map(|s| self.compress_with(&by_bytes, s.as_ref())).collect()
    }

    fn compress_with(&self, by_bytes: &HashMap<&[u8], u8>, s: &[u8]) -> Vec<u8> {
        let mut out = Vec::with_capacity(s.len());
        let mut pos = 0;
        while pos < s.len() {
            let mut emitted = false;
            for len in (1..=MAX_SYMBOL_LEN.min(s.len() - pos)).rev() {
                if let Some(&code) = by_bytes.get(&s[pos..pos + len]) {
                    out.push(code);
                    pos += len;
                    emitted = true;
                    break;
                }
            }
            if !emitted {
                out.push(ESCAPE);
                out.push(s[pos]);
                pos += 1;
            }
        }
        out
    }

    /// Total decompression: `None` on an out-of-range code or a truncated
    /// escape sequence, never a panic.
    pub fn decompress(&self, data: &[u8]) -> Option<Vec<u8>> {
        let mut out = Vec::with_capacity(data.len() * 2);
        let mut pos = 0;
        while pos < data.len() {
            let code = data[pos];
            pos += 1;
            if code == ESCAPE {
                out.push(*data.get(pos)?);
                pos += 1;
            } else {
                out.extend_from_slice(self.symbols.get(code as usize)?);
            }
        }
        Some(out)
    }

    /// Serialized table: `u8 n | n × (u8 len | bytes)`.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.table_bytes());
        out.push(self.symbols.len() as u8);
        for sym in &self.symbols {
            out.push(sym.len() as u8);
            out.extend_from_slice(sym);
        }
        out
    }

    /// Restores a table; `None` on malformed input (zero-length or over-long
    /// symbols, truncation, trailing bytes).
    pub fn from_bytes(data: &[u8]) -> Option<Self> {
        let n = *data.first()? as usize;
        if n > MAX_SYMBOLS {
            return None;
        }
        let mut pos = 1;
        let mut symbols = Vec::with_capacity(n);
        for _ in 0..n {
            let len = *data.get(pos)? as usize;
            pos += 1;
            if len == 0 || len > MAX_SYMBOL_LEN {
                return None;
            }
            symbols.push(data.get(pos..pos + len)?.to_vec());
            pos += len;
        }
        if pos != data.len() {
            return None;
        }
        Some(Self { symbols })
    }

    /// Serialized table size in bytes.
    pub fn table_bytes(&self) -> usize {
        1 + self.symbols.iter().map(|s| 1 + s.len()).sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn corpus() -> Vec<String> {
        (0..200)
            .map(|i| format!("https://sensor-{:03}.plant.example.com/metrics", i % 37))
            .collect()
    }

    #[test]
    fn compresses_redundant_strings() {
        let corpus = corpus();
        let table = SymbolTable::build(&corpus);
        let raw: usize = corpus.iter().map(|s| s.len()).sum();
        let mut packed = 0;
        for s in &corpus {
            let c = table.compress(s.as_bytes());
            assert_eq!(table.decompress(&c).unwrap(), s.as_bytes());
            packed += c.len();
        }
        assert!(
            packed + table.table_bytes() < raw / 2,
            "packed {packed} + table {} vs raw {raw}",
            table.table_bytes()
        );
    }

    #[test]
    fn table_roundtrips_bit_stable() {
        let table = SymbolTable::build(&corpus());
        let again = SymbolTable::build(&corpus());
        assert_eq!(table, again, "build must be deterministic");
        let restored = SymbolTable::from_bytes(&table.to_bytes()).unwrap();
        assert_eq!(restored, table);
        assert_eq!(table.to_bytes().len(), table.table_bytes());
    }

    #[test]
    fn escape_covers_unseen_bytes() {
        let table = SymbolTable::build(&["aaaa", "aaab"]);
        let c = table.compress(b"zzz\xff\x00aaa");
        assert_eq!(table.decompress(&c).unwrap(), b"zzz\xff\x00aaa");
    }

    #[test]
    fn decompress_is_total() {
        let table = SymbolTable::build(&["abc"]);
        // Out-of-range code.
        assert!(table.decompress(&[200]).is_none());
        // Truncated escape.
        assert!(table.decompress(&[ESCAPE]).is_none());
        assert!(table.decompress(&[]).unwrap().is_empty());
    }

    #[test]
    fn from_bytes_rejects_malformed_tables() {
        let table = SymbolTable::build(&["hello", "world"]);
        let bytes = table.to_bytes();
        let mut extra = bytes.clone();
        extra.push(7);
        assert!(SymbolTable::from_bytes(&extra).is_none());
        assert!(SymbolTable::from_bytes(&bytes[..bytes.len() - 1]).is_none());
        // Zero-length symbol.
        assert!(SymbolTable::from_bytes(&[1, 0]).is_none());
    }
}
