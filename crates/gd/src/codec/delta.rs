//! Zigzag-delta encoding with periodic absolute anchors.
//!
//! Machine-generated numeric columns (timestamps above all) advance by a nearly
//! constant step, so consecutive differences span a tiny range even when the
//! absolute values need 40+ bits. Deltas are zigzag-mapped to unsigned, then
//! frame-of-reference packed; every [`DELTA_BLOCK`]'th row stores the absolute
//! value instead so `get` costs one block, not the whole column. A fixed-step
//! column needs 0 bits per non-anchor row.

use ph_encoding::{read_uvarint, write_uvarint, BitReader, BitWriter};

use super::{uvarint_len, width_for, Codec, EncodedPred, MAX_CODEC_ROWS};

/// Rows per block: one absolute anchor, then `DELTA_BLOCK - 1` deltas.
pub(crate) const DELTA_BLOCK: usize = 256;

#[inline]
fn zigzag(d: i64) -> u64 {
    ((d << 1) ^ (d >> 63)) as u64
}

#[inline]
fn unzigzag(z: u64) -> i64 {
    ((z >> 1) as i64) ^ -((z & 1) as i64)
}

/// Blocked zigzag-delta column store.
///
/// Wire layout: `uvarint n_rows | u8 anchor_width | u8 delta_width |
/// uvarint min_zz | packed` where each block is an absolute anchor at
/// `anchor_width` bits followed by `min_zz`-subtracted zigzag deltas at
/// `delta_width` bits. All blocks except the last are full, so block `b`
/// starts at bit `b * (anchor_width + (DELTA_BLOCK-1) * delta_width)`.
#[derive(Debug, Clone)]
pub struct DeltaCodec {
    n_rows: usize,
    anchor_width: u32,
    delta_width: u32,
    min_zz: u64,
    packed: Vec<u8>,
}

impl DeltaCodec {
    /// Encodes a column slice. Deltas use wrapping subtraction so arbitrary
    /// u64 sequences (including wrap-around) round-trip exactly.
    pub fn encode(values: &[u64]) -> Self {
        let (anchor_width, delta_width, min_zz) = Self::widths(values);
        let mut w = BitWriter::new();
        for (r, &v) in values.iter().enumerate() {
            if r % DELTA_BLOCK == 0 {
                w.write_bits(v, anchor_width);
            } else if delta_width > 0 {
                let zz = zigzag(v.wrapping_sub(values[r - 1]) as i64);
                w.write_bits(zz - min_zz, delta_width);
            }
        }
        Self { n_rows: values.len(), anchor_width, delta_width, min_zz, packed: w.finish() }
    }

    fn widths(values: &[u64]) -> (u32, u32, u64) {
        let max = values.iter().copied().max().unwrap_or(0);
        let mut min_zz = u64::MAX;
        let mut max_zz = 0u64;
        let mut any = false;
        for r in 1..values.len() {
            if r % DELTA_BLOCK == 0 {
                continue;
            }
            let zz = zigzag(values[r].wrapping_sub(values[r - 1]) as i64);
            min_zz = min_zz.min(zz);
            max_zz = max_zz.max(zz);
            any = true;
        }
        if !any {
            min_zz = 0;
        }
        (width_for(max), width_for(max_zz - min_zz), min_zz)
    }

    /// Exact serialized size given precomputed column stats (max value plus
    /// the zigzag-delta range over non-anchor rows).
    pub fn size_for(n_rows: usize, max: u64, min_zz: u64, max_zz: u64) -> usize {
        let aw = width_for(max) as usize;
        let dw = width_for(max_zz.saturating_sub(min_zz)) as usize;
        let n_anchors = n_rows.div_ceil(DELTA_BLOCK);
        let bits = n_anchors * aw + (n_rows - n_anchors) * dw;
        uvarint_len(n_rows as u64) + 2 + uvarint_len(min_zz) + bits.div_ceil(8)
    }

    #[inline]
    fn block_bits(&self) -> usize {
        self.anchor_width as usize + (DELTA_BLOCK - 1) * self.delta_width as usize
    }

    /// Decodes block `b` into `out` (cleared first), up to `n_rows`.
    fn decode_block(&self, b: usize, out: &mut Vec<u64>) {
        out.clear();
        let start = b * DELTA_BLOCK;
        let len = DELTA_BLOCK.min(self.n_rows - start);
        let mut r = BitReader::new(&self.packed);
        r.seek((b * self.block_bits()) as u64);
        let mut v = r.read_bits(self.anchor_width).unwrap_or(0);
        out.push(v);
        for _ in 1..len {
            let zz = if self.delta_width == 0 {
                self.min_zz
            } else {
                self.min_zz
                    .wrapping_add(r.read_bits(self.delta_width).unwrap_or(0))
            };
            v = v.wrapping_add(unzigzag(zz) as u64);
            out.push(v);
        }
    }
}

impl Codec for DeltaCodec {
    fn n_rows(&self) -> usize {
        self.n_rows
    }

    fn get(&self, row: usize) -> Option<u64> {
        if row >= self.n_rows {
            return None;
        }
        let mut block = Vec::with_capacity(DELTA_BLOCK);
        self.decode_block(row / DELTA_BLOCK, &mut block);
        block.get(row % DELTA_BLOCK).copied()
    }

    fn decode(&self) -> Vec<u64> {
        let mut out = Vec::with_capacity(self.n_rows);
        let mut block = Vec::with_capacity(DELTA_BLOCK);
        for b in 0..self.n_rows.div_ceil(DELTA_BLOCK) {
            self.decode_block(b, &mut block);
            out.extend_from_slice(&block);
        }
        out
    }

    fn packed_bytes(&self) -> usize {
        uvarint_len(self.n_rows as u64) + 2 + uvarint_len(self.min_zz) + self.packed.len()
    }

    fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.packed_bytes());
        write_uvarint(&mut out, self.n_rows as u64);
        out.push(self.anchor_width as u8);
        out.push(self.delta_width as u8);
        write_uvarint(&mut out, self.min_zz);
        out.extend_from_slice(&self.packed);
        out
    }

    fn from_bytes(data: &[u8]) -> Option<Self> {
        let mut pos = 0;
        let n_rows = read_uvarint(data, &mut pos)? as usize;
        if n_rows > MAX_CODEC_ROWS {
            return None;
        }
        let anchor_width = *data.get(pos)? as u32;
        let delta_width = *data.get(pos + 1)? as u32;
        pos += 2;
        if anchor_width > 64 || delta_width > 64 {
            return None;
        }
        let min_zz = read_uvarint(data, &mut pos)?;
        let payload = data.get(pos..)?;
        let n_anchors = n_rows.div_ceil(DELTA_BLOCK);
        let bits =
            n_anchors * anchor_width as usize + (n_rows - n_anchors) * delta_width as usize;
        if payload.len() != bits.div_ceil(8) {
            return None;
        }
        Some(Self { n_rows, anchor_width, delta_width, min_zz, packed: payload.to_vec() })
    }

    fn count_matching(&self, pred: &EncodedPred) -> u64 {
        let mut count = 0u64;
        let mut block = Vec::with_capacity(DELTA_BLOCK);
        for b in 0..self.n_rows.div_ceil(DELTA_BLOCK) {
            self.decode_block(b, &mut block);
            count += block.iter().filter(|&&v| pred.matches(v)).count() as u64;
        }
        count
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zigzag_roundtrips() {
        for d in [0i64, 1, -1, i64::MAX, i64::MIN, -123456] {
            assert_eq!(unzigzag(zigzag(d)), d);
        }
    }

    #[test]
    fn fixed_step_column_costs_no_delta_bits() {
        let vals: Vec<u64> = (0..1000u64).map(|i| 1_600_000_000 + i * 60).collect();
        let c = DeltaCodec::encode(&vals);
        assert_eq!(c.delta_width, 0);
        assert_eq!(c.decode(), vals);
        assert_eq!(c.packed_bytes(), c.to_bytes().len());
        let restored = DeltaCodec::from_bytes(&c.to_bytes()).unwrap();
        assert_eq!(restored.decode(), vals);
        assert_eq!(restored.get(777), Some(vals[777]));
    }

    #[test]
    fn wrapping_sequences_roundtrip() {
        let vals = vec![u64::MAX, 0, u64::MAX - 3, 17, 1 << 63, 0];
        let c = DeltaCodec::encode(&vals);
        let restored = DeltaCodec::from_bytes(&c.to_bytes()).unwrap();
        assert_eq!(restored.decode(), vals);
        for (i, &v) in vals.iter().enumerate() {
            assert_eq!(restored.get(i), Some(v));
        }
    }

    #[test]
    fn multi_block_get_crosses_anchors() {
        let vals: Vec<u64> = (0..700u64).map(|i| i * i % 9973).collect();
        let c = DeltaCodec::encode(&vals);
        for &row in &[0usize, 1, 255, 256, 257, 511, 512, 699] {
            assert_eq!(c.get(row), Some(vals[row]), "row {row}");
        }
        assert_eq!(c.get(700), None);
        let (_, _, min_zz) = DeltaCodec::widths(&vals);
        let max = *vals.iter().max().unwrap();
        let max_zz = (1..vals.len())
            .filter(|r| r % DELTA_BLOCK != 0)
            .map(|r| zigzag(vals[r].wrapping_sub(vals[r - 1]) as i64))
            .max()
            .unwrap();
        assert_eq!(
            DeltaCodec::size_for(vals.len(), max, min_zz, max_zz),
            c.to_bytes().len()
        );
    }

    #[test]
    fn from_bytes_rejects_truncation() {
        let vals: Vec<u64> = (0..300u64).collect();
        let bytes = DeltaCodec::encode(&vals).to_bytes();
        for cut in [0, 1, bytes.len() / 2, bytes.len() - 1] {
            assert!(DeltaCodec::from_bytes(&bytes[..cut]).is_none(), "cut {cut}");
        }
        let mut extra = bytes.clone();
        extra.push(0);
        assert!(DeltaCodec::from_bytes(&extra).is_none());
    }
}
