//! GreedyGD pre-processing (paper §3, "Data Compression").
//!
//! Each column is independently transformed into a **non-negative integer domain** to
//! improve compressibility:
//!
//! * minimum-value subtraction (numerics start at 0);
//! * lossless float→integer conversion (`10.22 → 1022` at scale 2);
//! * frequency-ranked categorical encoding (most common value → 0, next → 1, …);
//! * missing values encoded as `max_encoded + 1` (the per-column *null code*).
//!
//! Pre-processing needs no extra storage beyond per-column constants and categorical
//! dictionaries, and the same transform is applied to query literals at parse time
//! (§5.1, Fig 7) so predicates land in the domain the synopsis was built in.

use std::collections::HashMap;
use std::fmt;

use ph_types::{Column, ColumnData, ColumnType, Dataset, Value};

use crate::EncodedMatrix;

/// Largest permitted encoded value: everything must stay exactly representable in an
/// `f64` (bin-edge arithmetic in the synopsis is done in doubles).
const MAX_ENC: u64 = 1 << 52;

/// Errors raised when transforming literals or values.
#[derive(Debug, Clone, PartialEq)]
pub enum GdError {
    /// A literal's type does not match the column's type.
    TypeMismatch {
        /// Column name.
        column: String,
        /// Human-readable description of the mismatch.
        detail: String,
    },
    /// Column index out of range.
    BadColumn(usize),
}

impl fmt::Display for GdError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GdError::TypeMismatch { column, detail } => {
                write!(f, "literal type mismatch on column '{column}': {detail}")
            }
            GdError::BadColumn(i) => write!(f, "column index {i} out of range"),
        }
    }
}

impl std::error::Error for GdError {}

impl From<GdError> for ph_types::PhError {
    fn from(e: GdError) -> Self {
        ph_types::PhError::InvalidQuery(e.to_string())
    }
}

/// A query literal mapped into the encoded domain (§5.1).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EncodedLiteral {
    /// Numeric position in the encoded domain. May be fractional (e.g. a float literal
    /// with more decimals than the column's scale) and may fall outside `[0, max]`.
    Num(f64),
    /// Exact categorical rank.
    Rank(u64),
    /// A categorical string not present in the dictionary: matches no rows.
    NoMatch,
}

/// Per-column lossless transform.
#[derive(Debug, Clone, PartialEq)]
pub enum ColumnTransform {
    /// Integer, float or timestamp column.
    Numeric {
        /// Minimum of the scaled values; subtracted during encoding.
        min_scaled: i64,
        /// Decimal scale: encoded = round(x·10^scale) − min_scaled.
        scale: u8,
        /// Maximum encoded value over the fitted data.
        max_enc: u64,
        /// Code representing NULL (`max_enc + 1`), present iff the column had nulls.
        null_code: Option<u64>,
    },
    /// Categorical column with frequency-ranked codes.
    Categorical {
        /// Dictionary ordered by rank: `by_rank[0]` is the most frequent value.
        by_rank: Vec<String>,
        /// Code representing NULL (`by_rank.len()`), present iff the column had nulls.
        null_code: Option<u64>,
    },
}

impl ColumnTransform {
    /// Largest real (non-null) encoded value.
    pub fn max_enc(&self) -> u64 {
        match self {
            ColumnTransform::Numeric { max_enc, .. } => *max_enc,
            ColumnTransform::Categorical { by_rank, .. } => by_rank.len().saturating_sub(1) as u64,
        }
    }

    /// The null code, if the column contains missing values.
    pub fn null_code(&self) -> Option<u64> {
        match self {
            ColumnTransform::Numeric { null_code, .. } => *null_code,
            ColumnTransform::Categorical { null_code, .. } => *null_code,
        }
    }

    /// Whether values are ordered numerics (range predicates meaningful).
    pub fn is_numeric(&self) -> bool {
        matches!(self, ColumnTransform::Numeric { .. })
    }

    /// Number of categories for categorical columns.
    pub fn n_categories(&self) -> Option<usize> {
        match self {
            ColumnTransform::Categorical { by_rank, .. } => Some(by_rank.len()),
            ColumnTransform::Numeric { .. } => None,
        }
    }

    /// The category string at a given frequency rank.
    pub fn category(&self, rank: usize) -> Option<&str> {
        match self {
            ColumnTransform::Categorical { by_rank, .. } => {
                by_rank.get(rank).map(|s| s.as_str())
            }
            ColumnTransform::Numeric { .. } => None,
        }
    }

    /// Affine map back to the original domain: `original = a·encoded + b`.
    ///
    /// `None` for categorical columns. Because `a > 0`, the map is strictly
    /// increasing, so estimates and bounds transform monotonically (the aggregation
    /// layer relies on this).
    pub fn affine(&self) -> Option<(f64, f64)> {
        match self {
            ColumnTransform::Numeric { min_scaled, scale, .. } => {
                let a = 10f64.powi(-(*scale as i32));
                Some((a, *min_scaled as f64 * a))
            }
            ColumnTransform::Categorical { .. } => None,
        }
    }
}

/// Fitted pre-processing transforms for a whole table.
#[derive(Debug, Clone, PartialEq)]
pub struct Preprocessor {
    transforms: Vec<ColumnTransform>,
    names: Vec<String>,
    types: Vec<ColumnType>,
}

impl Preprocessor {
    /// Learns per-column transforms from a dataset.
    ///
    /// Batch-friendly by design: the constants involved (min, scale, value
    /// frequencies) are all streamable, matching the paper's claim that datasets can
    /// be processed "in arbitrarily-sized batches".
    pub fn fit(data: &Dataset) -> Self {
        let transforms = data.columns().iter().map(fit_column).collect();
        Self {
            transforms,
            names: data.columns().iter().map(|c| c.name().to_string()).collect(),
            types: data.columns().iter().map(|c| c.ty()).collect(),
        }
    }

    /// Number of columns.
    pub fn n_columns(&self) -> usize {
        self.transforms.len()
    }

    /// Column names in schema order.
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// Index of a column by name.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.names.iter().position(|n| n == name)
    }

    /// Logical type of column `col`.
    pub fn column_type(&self, col: usize) -> ColumnType {
        self.types[col]
    }

    /// The transform for column `col`.
    pub fn transform(&self, col: usize) -> &ColumnTransform {
        &self.transforms[col]
    }

    /// Encodes a whole dataset into the non-negative integer domain.
    ///
    /// # Panics
    /// Panics if the dataset's schema does not match the fitted one, or if a value
    /// falls outside the fitted range (encode only data the transform was fitted on,
    /// or refit).
    pub fn encode(&self, data: &Dataset) -> EncodedMatrix {
        assert_eq!(data.n_columns(), self.transforms.len(), "schema mismatch");
        let columns = data
            .columns()
            .iter()
            .zip(&self.transforms)
            .map(|(col, tr)| encode_column(col, tr))
            .collect();
        EncodedMatrix::new(columns)
    }

    /// Maps a query literal into the encoded domain of column `col` (§5.1).
    pub fn encode_literal(&self, col: usize, lit: &Value) -> Result<EncodedLiteral, GdError> {
        let tr = self.transforms.get(col).ok_or(GdError::BadColumn(col))?;
        match (tr, lit) {
            (ColumnTransform::Numeric { min_scaled, scale, .. }, v) => {
                let x = v.as_f64().ok_or_else(|| GdError::TypeMismatch {
                    column: self.names[col].clone(),
                    detail: format!("numeric column compared to {v}"),
                })?;
                Ok(EncodedLiteral::Num(x * 10f64.powi(*scale as i32) - *min_scaled as f64))
            }
            (ColumnTransform::Categorical { by_rank, .. }, Value::Str(s)) => {
                match by_rank.iter().position(|v| v == s) {
                    Some(rank) => Ok(EncodedLiteral::Rank(rank as u64)),
                    None => Ok(EncodedLiteral::NoMatch),
                }
            }
            (ColumnTransform::Categorical { .. }, v) => Err(GdError::TypeMismatch {
                column: self.names[col].clone(),
                detail: format!("categorical column compared to {v}"),
            }),
        }
    }

    /// Decodes one encoded cell back to a [`Value`] (null codes → `Value::Null`).
    pub fn decode_value(&self, col: usize, enc: u64) -> Value {
        let tr = &self.transforms[col];
        if tr.null_code() == Some(enc) {
            return Value::Null;
        }
        match tr {
            ColumnTransform::Numeric { min_scaled, scale, .. } => {
                let raw = enc as i64 + min_scaled;
                match self.types[col] {
                    ColumnType::Float { .. } => {
                        Value::Float(raw as f64 / 10f64.powi(*scale as i32))
                    }
                    _ => Value::Int(raw),
                }
            }
            ColumnTransform::Categorical { by_rank, .. } => {
                Value::Str(by_rank[enc as usize].clone())
            }
        }
    }

    /// Serializes the fitted transforms — names, logical types, per-column constants
    /// and categorical dictionaries — so a synopsis can travel *with* the
    /// preprocessing it was built under (the persistence path of a `Session`
    /// catalog). Inverse of [`Preprocessor::from_bytes`].
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(b"PRE1");
        out.extend_from_slice(&(self.names.len() as u16).to_le_bytes());
        for c in 0..self.names.len() {
            write_str(&mut out, &self.names[c]);
            match (&self.types[c], &self.transforms[c]) {
                (ty, ColumnTransform::Numeric { min_scaled, scale, max_enc, null_code }) => {
                    out.push(match ty {
                        ColumnType::Int => 0,
                        ColumnType::Float { .. } => 1,
                        ColumnType::Timestamp => 2,
                        ColumnType::Categorical => unreachable!("numeric transform on categorical"),
                    });
                    out.push(*scale);
                    out.extend_from_slice(&min_scaled.to_le_bytes());
                    out.extend_from_slice(&max_enc.to_le_bytes());
                    out.push(null_code.is_some() as u8);
                }
                (_, ColumnTransform::Categorical { by_rank, null_code }) => {
                    out.push(3);
                    out.extend_from_slice(&(by_rank.len() as u32).to_le_bytes());
                    for s in by_rank {
                        write_str(&mut out, s);
                    }
                    out.push(null_code.is_some() as u8);
                }
            }
        }
        out
    }

    /// Restores a [`Preprocessor`] from [`Preprocessor::to_bytes`] output.
    /// Returns `None` on malformed input.
    pub fn from_bytes(data: &[u8]) -> Option<Self> {
        let mut pos = 0usize;
        if data.get(..4)? != b"PRE1" {
            return None;
        }
        pos += 4;
        let d = u16::from_le_bytes(data.get(pos..pos + 2)?.try_into().ok()?) as usize;
        pos += 2;
        let mut names = Vec::with_capacity(d);
        let mut types = Vec::with_capacity(d);
        let mut transforms = Vec::with_capacity(d);
        for _ in 0..d {
            names.push(read_str(data, &mut pos)?);
            let tag = *data.get(pos)?;
            pos += 1;
            match tag {
                0..=2 => {
                    let scale = *data.get(pos)?;
                    pos += 1;
                    let min_scaled =
                        i64::from_le_bytes(data.get(pos..pos + 8)?.try_into().ok()?);
                    pos += 8;
                    let max_enc =
                        u64::from_le_bytes(data.get(pos..pos + 8)?.try_into().ok()?);
                    pos += 8;
                    if max_enc >= MAX_ENC {
                        return None;
                    }
                    let has_null = *data.get(pos)? != 0;
                    pos += 1;
                    types.push(match tag {
                        0 => ColumnType::Int,
                        1 => ColumnType::Float { scale },
                        _ => ColumnType::Timestamp,
                    });
                    transforms.push(ColumnTransform::Numeric {
                        min_scaled,
                        scale,
                        max_enc,
                        null_code: has_null.then_some(max_enc + 1),
                    });
                }
                3 => {
                    let n = u32::from_le_bytes(data.get(pos..pos + 4)?.try_into().ok()?)
                        as usize;
                    pos += 4;
                    if n > 1 << 24 {
                        return None;
                    }
                    let mut by_rank = Vec::with_capacity(n);
                    for _ in 0..n {
                        by_rank.push(read_str(data, &mut pos)?);
                    }
                    let has_null = *data.get(pos)? != 0;
                    pos += 1;
                    types.push(ColumnType::Categorical);
                    transforms.push(ColumnTransform::Categorical {
                        null_code: has_null.then_some(by_rank.len() as u64),
                        by_rank,
                    });
                }
                _ => return None,
            }
        }
        if pos != data.len() {
            return None; // trailing bytes: not ours
        }
        Some(Self { transforms, names, types })
    }

    /// Serialized footprint of the transforms (constants + dictionaries) in bytes;
    /// counted as part of the compressed-store size in storage experiments.
    pub fn metadata_bytes(&self) -> usize {
        self.transforms
            .iter()
            .map(|t| match t {
                ColumnTransform::Numeric { .. } => 8 + 1 + 8 + 9,
                ColumnTransform::Categorical { by_rank, .. } => {
                    9 + by_rank.iter().map(|s| s.len() + 2).sum::<usize>()
                }
            })
            .sum()
    }
}

fn write_str(out: &mut Vec<u8>, s: &str) {
    debug_assert!(s.len() <= u16::MAX as usize, "string too long for the wire format");
    out.extend_from_slice(&(s.len() as u16).to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

fn read_str(data: &[u8], pos: &mut usize) -> Option<String> {
    let len = u16::from_le_bytes(data.get(*pos..*pos + 2)?.try_into().ok()?) as usize;
    *pos += 2;
    let s = std::str::from_utf8(data.get(*pos..*pos + len)?).ok()?;
    *pos += len;
    Some(s.to_string())
}

fn fit_column(col: &Column) -> ColumnTransform {
    match col.ty() {
        ColumnType::Categorical => fit_categorical(col),
        ColumnType::Float { scale } => fit_numeric(col, scale),
        ColumnType::Int | ColumnType::Timestamp => fit_numeric(col, 0),
    }
}

fn fit_numeric(col: &Column, scale: u8) -> ColumnTransform {
    let factor = 10f64.powi(scale as i32);
    let mut min_scaled = i64::MAX;
    let mut max_scaled = i64::MIN;
    let mut has_null = false;
    for i in 0..col.len() {
        match col.numeric(i) {
            Some(x) => {
                let v = (x * factor).round() as i64;
                min_scaled = min_scaled.min(v);
                max_scaled = max_scaled.max(v);
            }
            None => has_null = true,
        }
    }
    if min_scaled > max_scaled {
        // All-null or empty column: degenerate but well-defined transform.
        min_scaled = 0;
        max_scaled = 0;
    }
    let max_enc = (max_scaled - min_scaled) as u64;
    assert!(max_enc < MAX_ENC, "encoded range of '{}' exceeds 2^52", col.name());
    ColumnTransform::Numeric {
        min_scaled,
        scale,
        max_enc,
        null_code: has_null.then_some(max_enc + 1),
    }
}

fn fit_categorical(col: &Column) -> ColumnTransform {
    let dict = col.dictionary().expect("categorical column must carry a dictionary");
    let mut freq = vec![0u64; dict.len()];
    let mut has_null = false;
    for i in 0..col.len() {
        match col.code(i) {
            Some(c) => freq[c as usize] += 1,
            None => has_null = true,
        }
    }
    // Frequency-ranked: most common first; ties broken by original code for
    // determinism.
    let mut order: Vec<usize> = (0..dict.len()).collect();
    order.sort_by_key(|&c| (std::cmp::Reverse(freq[c]), c));
    let by_rank: Vec<String> = order.iter().map(|&c| dict[c].clone()).collect();
    ColumnTransform::Categorical {
        null_code: has_null.then_some(by_rank.len() as u64),
        by_rank,
    }
}

fn encode_column(col: &Column, tr: &ColumnTransform) -> Vec<u64> {
    let mut out = Vec::with_capacity(col.len());
    match tr {
        ColumnTransform::Numeric { min_scaled, scale, max_enc, null_code } => {
            let factor = 10f64.powi(*scale as i32);
            let null = null_code.unwrap_or(max_enc + 1);
            // Values below the fitted minimum have no non-negative encoding and
            // saturate at 0 (a silent wrap to a huge u64 would corrupt every
            // consumer). Values *above* the fitted range stay as-is: they remain
            // representable, and incremental ingestion uses them to extend the
            // synopsis's outer bins.
            match col.data() {
                ColumnData::Int(vals) => {
                    for (i, &v) in vals.iter().enumerate() {
                        if col.is_valid(i) {
                            out.push((v - min_scaled).max(0) as u64);
                        } else {
                            out.push(null);
                        }
                    }
                }
                ColumnData::Float(vals) => {
                    for (i, &v) in vals.iter().enumerate() {
                        if col.is_valid(i) {
                            let scaled = (v * factor).round() as i64;
                            out.push((scaled - min_scaled).max(0) as u64);
                        } else {
                            out.push(null);
                        }
                    }
                }
                ColumnData::Cat(..) => unreachable!("numeric transform on categorical column"),
            }
        }
        ColumnTransform::Categorical { by_rank, null_code } => {
            let dict = col.dictionary().expect("categorical column must carry a dictionary");
            // code -> rank lookup table.
            let mut rank_of: HashMap<&str, u64> = HashMap::with_capacity(by_rank.len());
            for (rank, s) in by_rank.iter().enumerate() {
                rank_of.insert(s.as_str(), rank as u64);
            }
            let null = null_code.unwrap_or(by_rank.len() as u64);
            for i in 0..col.len() {
                match col.code(i) {
                    Some(c) => out.push(rank_of[dict[c as usize].as_str()]),
                    None => out.push(null),
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ph_types::Dataset;

    fn sample() -> Dataset {
        Dataset::builder("t")
            .column(Column::from_ints("i", vec![Some(-5), Some(10), None, Some(0)]))
            .unwrap()
            .column(Column::from_floats(
                "f",
                vec![Some(10.22), Some(9.99), Some(10.25), None],
                2,
            ))
            .unwrap()
            .column(Column::from_strings(
                "c",
                vec![Some("rare"), Some("common"), Some("common"), Some("common")],
            ))
            .unwrap()
            .build()
    }

    #[test]
    fn numeric_min_subtraction() {
        let d = sample();
        let pre = Preprocessor::fit(&d);
        let enc = pre.encode(&d);
        // min = -5 -> encoded -5 -> 0, 10 -> 15, null -> 16, 0 -> 5.
        assert_eq!(enc.columns[0], vec![0, 15, 16, 5]);
    }

    #[test]
    fn float_to_int_conversion() {
        let d = sample();
        let pre = Preprocessor::fit(&d);
        let enc = pre.encode(&d);
        // scale 2: 10.22->1022, 9.99->999 (min), 10.25->1025; encoded: 23, 0, 26, null=27.
        assert_eq!(enc.columns[1], vec![23, 0, 26, 27]);
    }

    #[test]
    fn categorical_frequency_ranking() {
        let d = sample();
        let pre = Preprocessor::fit(&d);
        let enc = pre.encode(&d);
        // "common" (3 occurrences) -> rank 0, "rare" -> rank 1.
        assert_eq!(enc.columns[2], vec![1, 0, 0, 0]);
    }

    #[test]
    fn literal_transformation_matches_fig7() {
        // Fig 7: dist column min 69 -> "dist > 150" becomes "x > 81";
        // air_time min 25, scale 1 -> "air_time > 90.5" becomes "x > 655".
        let d = Dataset::builder("flights")
            .column(Column::from_ints("dist", vec![Some(69), Some(500)]))
            .unwrap()
            .column(Column::from_floats("air_time", vec![Some(2.5), Some(100.0)], 1))
            .unwrap()
            .build();
        let pre = Preprocessor::fit(&d);
        assert_eq!(
            pre.encode_literal(0, &Value::Int(150)).unwrap(),
            EncodedLiteral::Num(81.0)
        );
        assert_eq!(
            pre.encode_literal(1, &Value::Float(90.5)).unwrap(),
            EncodedLiteral::Num(905.0 - 25.0)
        );
    }

    #[test]
    fn unknown_category_is_no_match() {
        let d = sample();
        let pre = Preprocessor::fit(&d);
        assert_eq!(
            pre.encode_literal(2, &Value::Str("nope".into())).unwrap(),
            EncodedLiteral::NoMatch
        );
        assert_eq!(
            pre.encode_literal(2, &Value::Str("rare".into())).unwrap(),
            EncodedLiteral::Rank(1)
        );
    }

    #[test]
    fn type_mismatch_errors() {
        let d = sample();
        let pre = Preprocessor::fit(&d);
        assert!(pre.encode_literal(2, &Value::Int(3)).is_err());
        assert!(pre.encode_literal(0, &Value::Str("x".into())).is_err());
    }

    #[test]
    fn decode_roundtrip() {
        let d = sample();
        let pre = Preprocessor::fit(&d);
        let enc = pre.encode(&d);
        for col in 0..d.n_columns() {
            for row in 0..d.n_rows() {
                let decoded = pre.decode_value(col, enc.get(row, col));
                match (d.column(col).value(row), decoded) {
                    (Value::Float(a), Value::Float(b)) => {
                        assert!((a - b).abs() < 1e-9, "col {col} row {row}")
                    }
                    (a, b) => assert_eq!(a, b, "col {col} row {row}"),
                }
            }
        }
    }

    #[test]
    fn affine_maps_back() {
        let d = sample();
        let pre = Preprocessor::fit(&d);
        let (a, b) = pre.transform(1).affine().unwrap();
        // encoded 23 -> 10.22
        assert!((a * 23.0 + b - 10.22).abs() < 1e-9);
        assert!(pre.transform(2).affine().is_none());
    }

    #[test]
    fn out_of_range_values_saturate_below_and_extend_above() {
        // Fit on [100, 200], then encode a batch that exceeds the range on both
        // sides: below-minimum values saturate at 0 (never wrap to huge u64s);
        // above-maximum values keep their true distance so ingestion can extend
        // outer bins.
        let base = Dataset::builder("t")
            .column(Column::from_ints("x", vec![Some(100), Some(200)]))
            .unwrap()
            .build();
        let pre = Preprocessor::fit(&base);
        let fresh = Dataset::builder("t")
            .column(Column::from_ints("x", vec![Some(50), Some(150), Some(260)]))
            .unwrap()
            .build();
        let enc = pre.encode(&fresh);
        assert_eq!(enc.columns[0], vec![0, 50, 160]);
    }

    #[test]
    fn serialization_roundtrips_exactly() {
        let d = sample();
        let pre = Preprocessor::fit(&d);
        let bytes = pre.to_bytes();
        let back = Preprocessor::from_bytes(&bytes).expect("deserialize");
        assert_eq!(back, pre);
        // And the round-trip is bit-stable.
        assert_eq!(back.to_bytes(), bytes);
        // Truncations and bad magic fail cleanly.
        for cut in [0, 3, 10, bytes.len() / 2, bytes.len() - 1] {
            assert!(Preprocessor::from_bytes(&bytes[..cut]).is_none(), "cut {cut}");
        }
        let mut bad = bytes.clone();
        bad[0] = b'X';
        assert!(Preprocessor::from_bytes(&bad).is_none());
    }

    #[test]
    fn all_null_column_is_degenerate_but_valid() {
        let d = Dataset::builder("t")
            .column(Column::from_ints("x", vec![None, None]))
            .unwrap()
            .build();
        let pre = Preprocessor::fit(&d);
        let enc = pre.encode(&d);
        let null = pre.transform(0).null_code().unwrap();
        assert_eq!(enc.columns[0], vec![null, null]);
    }
}
