//! GreedyGD pre-processing (paper §3, "Data Compression").
//!
//! Each column is independently transformed into a **non-negative integer domain** to
//! improve compressibility:
//!
//! * minimum-value subtraction (numerics start at 0);
//! * lossless float→integer conversion (`10.22 → 1022` at scale 2);
//! * frequency-ranked categorical encoding (most common value → 0, next → 1, …);
//! * missing values encoded as `max_encoded + 1` (the per-column *null code*).
//!
//! Pre-processing needs no extra storage beyond per-column constants and categorical
//! dictionaries, and the same transform is applied to query literals at parse time
//! (§5.1, Fig 7) so predicates land in the domain the synopsis was built in.

use std::collections::HashMap;
use std::fmt;

use ph_encoding::{read_uvarint, write_uvarint};
use ph_types::{Column, ColumnData, ColumnType, Dataset, Value};

use crate::{EncodedMatrix, SymbolTable};

/// Largest permitted encoded value: everything must stay exactly representable in an
/// `f64` (bin-edge arithmetic in the synopsis is done in doubles).
const MAX_ENC: u64 = 1 << 52;

/// Errors raised when transforming literals or values.
#[derive(Debug, Clone, PartialEq)]
pub enum GdError {
    /// A literal's type does not match the column's type.
    TypeMismatch {
        /// Column name.
        column: String,
        /// Human-readable description of the mismatch.
        detail: String,
    },
    /// Column index out of range.
    BadColumn(usize),
    /// An encoded value with no preimage under the fitted transform — a
    /// corrupted or version-skewed store, never valid data.
    CorruptCode {
        /// Column name.
        column: String,
        /// The offending encoded value.
        code: u64,
    },
}

impl fmt::Display for GdError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GdError::TypeMismatch { column, detail } => {
                write!(f, "literal type mismatch on column '{column}': {detail}")
            }
            GdError::BadColumn(i) => write!(f, "column index {i} out of range"),
            GdError::CorruptCode { column, code } => {
                write!(f, "encoded value {code} on column '{column}' has no decoding")
            }
        }
    }
}

impl std::error::Error for GdError {}

impl From<GdError> for ph_types::PhError {
    fn from(e: GdError) -> Self {
        match e {
            // A code with no preimage means the store bytes are damaged, not
            // that the caller's query was malformed.
            GdError::CorruptCode { .. } => ph_types::PhError::Corrupt(e.to_string()),
            _ => ph_types::PhError::InvalidQuery(e.to_string()),
        }
    }
}

/// A query literal mapped into the encoded domain (§5.1).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EncodedLiteral {
    /// Numeric position in the encoded domain. May be fractional (e.g. a float literal
    /// with more decimals than the column's scale) and may fall outside `[0, max]`.
    Num(f64),
    /// Exact categorical rank.
    Rank(u64),
    /// A categorical string not present in the dictionary: matches no rows.
    NoMatch,
}

/// Per-column lossless transform.
#[derive(Debug, Clone, PartialEq)]
pub enum ColumnTransform {
    /// Integer, float or timestamp column.
    Numeric {
        /// Minimum of the scaled values; subtracted during encoding.
        min_scaled: i64,
        /// Decimal scale: encoded = round(x·10^scale) − min_scaled.
        scale: u8,
        /// Maximum encoded value over the fitted data.
        max_enc: u64,
        /// Code representing NULL (`max_enc + 1`), present iff the column had nulls.
        null_code: Option<u64>,
    },
    /// Categorical column with frequency-ranked codes.
    Categorical {
        /// Dictionary ordered by rank: `by_rank[0]` is the most frequent value.
        by_rank: Vec<String>,
        /// Code representing NULL (`by_rank.len()`), present iff the column had nulls.
        null_code: Option<u64>,
    },
}

impl ColumnTransform {
    /// Largest real (non-null) encoded value.
    pub fn max_enc(&self) -> u64 {
        match self {
            ColumnTransform::Numeric { max_enc, .. } => *max_enc,
            ColumnTransform::Categorical { by_rank, .. } => by_rank.len().saturating_sub(1) as u64,
        }
    }

    /// The null code, if the column contains missing values.
    pub fn null_code(&self) -> Option<u64> {
        match self {
            ColumnTransform::Numeric { null_code, .. } => *null_code,
            ColumnTransform::Categorical { null_code, .. } => *null_code,
        }
    }

    /// Whether values are ordered numerics (range predicates meaningful).
    pub fn is_numeric(&self) -> bool {
        matches!(self, ColumnTransform::Numeric { .. })
    }

    /// Number of categories for categorical columns.
    pub fn n_categories(&self) -> Option<usize> {
        match self {
            ColumnTransform::Categorical { by_rank, .. } => Some(by_rank.len()),
            ColumnTransform::Numeric { .. } => None,
        }
    }

    /// The category string at a given frequency rank.
    pub fn category(&self, rank: usize) -> Option<&str> {
        match self {
            ColumnTransform::Categorical { by_rank, .. } => {
                by_rank.get(rank).map(|s| s.as_str())
            }
            ColumnTransform::Numeric { .. } => None,
        }
    }

    /// Affine map back to the original domain: `original = a·encoded + b`.
    ///
    /// `None` for categorical columns. Because `a > 0`, the map is strictly
    /// increasing, so estimates and bounds transform monotonically (the aggregation
    /// layer relies on this).
    pub fn affine(&self) -> Option<(f64, f64)> {
        match self {
            ColumnTransform::Numeric { min_scaled, scale, .. } => {
                let a = 10f64.powi(-(*scale as i32));
                Some((a, *min_scaled as f64 * a))
            }
            ColumnTransform::Categorical { .. } => None,
        }
    }
}

/// Fitted pre-processing transforms for a whole table.
#[derive(Debug, Clone, PartialEq)]
pub struct Preprocessor {
    transforms: Vec<ColumnTransform>,
    names: Vec<String>,
    types: Vec<ColumnType>,
}

impl Preprocessor {
    /// Learns per-column transforms from a dataset.
    ///
    /// Batch-friendly by design: the constants involved (min, scale, value
    /// frequencies) are all streamable, matching the paper's claim that datasets can
    /// be processed "in arbitrarily-sized batches".
    pub fn fit(data: &Dataset) -> Self {
        let transforms = data.columns().iter().map(fit_column).collect();
        Self {
            transforms,
            names: data.columns().iter().map(|c| c.name().to_string()).collect(),
            types: data.columns().iter().map(|c| c.ty()).collect(),
        }
    }

    /// Number of columns.
    pub fn n_columns(&self) -> usize {
        self.transforms.len()
    }

    /// Column names in schema order.
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// Index of a column by name.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.names.iter().position(|n| n == name)
    }

    /// Logical type of column `col`.
    pub fn column_type(&self, col: usize) -> ColumnType {
        self.types[col]
    }

    /// The transform for column `col`.
    pub fn transform(&self, col: usize) -> &ColumnTransform {
        &self.transforms[col]
    }

    /// Encodes a whole dataset into the non-negative integer domain.
    ///
    /// # Panics
    /// Panics if the dataset's schema does not match the fitted one, or if a value
    /// falls outside the fitted range (encode only data the transform was fitted on,
    /// or refit).
    pub fn encode(&self, data: &Dataset) -> EncodedMatrix {
        self.encode_with(data, &mut EncodeScratch::new())
    }

    /// [`Preprocessor::encode`] with recycled column buffers: repeated seals
    /// reuse `scratch`'s allocations instead of growing fresh vectors each
    /// time. Same panics and output as `encode`.
    pub fn encode_with(&self, data: &Dataset, scratch: &mut EncodeScratch) -> EncodedMatrix {
        assert_eq!(data.n_columns(), self.transforms.len(), "schema mismatch");
        let columns = data
            .columns()
            .iter()
            .zip(&self.transforms)
            .map(|(col, tr)| {
                let mut out = scratch.take();
                encode_column_into(col, tr, &mut out);
                out
            })
            .collect();
        EncodedMatrix::new(columns)
    }

    /// Maps a query literal into the encoded domain of column `col` (§5.1).
    pub fn encode_literal(&self, col: usize, lit: &Value) -> Result<EncodedLiteral, GdError> {
        let tr = self.transforms.get(col).ok_or(GdError::BadColumn(col))?;
        match (tr, lit) {
            (ColumnTransform::Numeric { min_scaled, scale, .. }, v) => {
                let x = v.as_f64().ok_or_else(|| GdError::TypeMismatch {
                    column: self.names[col].clone(),
                    detail: format!("numeric column compared to {v}"),
                })?;
                Ok(EncodedLiteral::Num(x * 10f64.powi(*scale as i32) - *min_scaled as f64))
            }
            (ColumnTransform::Categorical { by_rank, .. }, Value::Str(s)) => {
                match by_rank.iter().position(|v| v == s) {
                    Some(rank) => Ok(EncodedLiteral::Rank(rank as u64)),
                    None => Ok(EncodedLiteral::NoMatch),
                }
            }
            (ColumnTransform::Categorical { .. }, v) => Err(GdError::TypeMismatch {
                column: self.names[col].clone(),
                detail: format!("categorical column compared to {v}"),
            }),
        }
    }

    /// Decodes one encoded cell back to a [`Value`] (null codes → `Value::Null`).
    ///
    /// Total: an encoded value with no preimage — an out-of-dictionary
    /// categorical rank, or a numeric code past the representable range — is a
    /// [`GdError::CorruptCode`], never a panic. Stores reach this path after
    /// deserialization from disk, so a damaged or version-skewed blob must
    /// surface as an error the session layer can quarantine on (ph-lint R2).
    pub fn decode_value(&self, col: usize, enc: u64) -> Result<Value, GdError> {
        let tr = self.transforms.get(col).ok_or(GdError::BadColumn(col))?;
        let name = || self.names.get(col).cloned().unwrap_or_default();
        if tr.null_code() == Some(enc) {
            return Ok(Value::Null);
        }
        match tr {
            ColumnTransform::Numeric { min_scaled, scale, .. } => {
                // Codes above the fitted max are legitimate (incremental
                // ingestion extends the outer bins); codes past MAX_ENC are
                // not representable and cannot have come from encode.
                if enc > MAX_ENC {
                    return Err(GdError::CorruptCode { column: name(), code: enc });
                }
                let raw = enc as i64 + min_scaled;
                Ok(match self.types.get(col) {
                    Some(ColumnType::Float { .. }) => {
                        Value::Float(raw as f64 / 10f64.powi(*scale as i32))
                    }
                    _ => Value::Int(raw),
                })
            }
            ColumnTransform::Categorical { by_rank, .. } => by_rank
                .get(enc as usize)
                .map(|s| Value::Str(s.clone()))
                .ok_or_else(|| GdError::CorruptCode { column: name(), code: enc }),
        }
    }

    /// Serializes the fitted transforms — names, logical types, per-column constants
    /// and categorical dictionaries — so a synopsis can travel *with* the
    /// preprocessing it was built under (the persistence path of a `Session`
    /// catalog). Inverse of [`Preprocessor::from_bytes`].
    ///
    /// Writes the `PRE2` format: every string is uvarint-framed (the `PRE1`
    /// u16 length field silently truncated >64 KiB strings in release builds),
    /// and each categorical dictionary may be FSST-compressed when the static
    /// symbol table pays for itself. `PRE1` blobs still load.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(b"PRE2");
        write_uvarint(&mut out, self.names.len() as u64);
        for c in 0..self.names.len() {
            write_str(&mut out, &self.names[c]);
            match (&self.types[c], &self.transforms[c]) {
                (ty, ColumnTransform::Numeric { min_scaled, scale, max_enc, null_code }) => {
                    out.push(match ty {
                        ColumnType::Int => 0,
                        ColumnType::Float { .. } => 1,
                        ColumnType::Timestamp => 2,
                        ColumnType::Categorical => unreachable!("numeric transform on categorical"),
                    });
                    out.push(*scale);
                    out.extend_from_slice(&min_scaled.to_le_bytes());
                    out.extend_from_slice(&max_enc.to_le_bytes());
                    out.push(null_code.is_some() as u8);
                }
                (_, ColumnTransform::Categorical { by_rank, null_code }) => {
                    out.push(3);
                    write_uvarint(&mut out, by_rank.len() as u64);
                    write_dict(&mut out, by_rank);
                    out.push(null_code.is_some() as u8);
                }
            }
        }
        out
    }

    /// Restores a [`Preprocessor`] from [`Preprocessor::to_bytes`] output —
    /// current `PRE2` or legacy `PRE1`. Returns `None` on malformed input.
    pub fn from_bytes(data: &[u8]) -> Option<Self> {
        match data.get(..4)? {
            b"PRE2" => Self::from_bytes_v2(data),
            b"PRE1" => Self::from_bytes_v1(data),
            _ => None,
        }
    }

    fn from_bytes_v2(data: &[u8]) -> Option<Self> {
        let mut pos = 4usize;
        let d = read_uvarint(data, &mut pos)? as usize;
        if d > 1 << 16 {
            return None;
        }
        let mut names = Vec::with_capacity(d);
        let mut types = Vec::with_capacity(d);
        let mut transforms = Vec::with_capacity(d);
        for _ in 0..d {
            names.push(read_str(data, &mut pos)?);
            let tag = *data.get(pos)?;
            pos += 1;
            match tag {
                0..=2 => {
                    let scale = *data.get(pos)?;
                    pos += 1;
                    let min_scaled =
                        i64::from_le_bytes(data.get(pos..pos + 8)?.try_into().ok()?);
                    pos += 8;
                    let max_enc =
                        u64::from_le_bytes(data.get(pos..pos + 8)?.try_into().ok()?);
                    pos += 8;
                    if max_enc >= MAX_ENC {
                        return None;
                    }
                    let has_null = *data.get(pos)? != 0;
                    pos += 1;
                    types.push(match tag {
                        0 => ColumnType::Int,
                        1 => ColumnType::Float { scale },
                        _ => ColumnType::Timestamp,
                    });
                    transforms.push(ColumnTransform::Numeric {
                        min_scaled,
                        scale,
                        max_enc,
                        null_code: has_null.then_some(max_enc + 1),
                    });
                }
                3 => {
                    let n = read_uvarint(data, &mut pos)? as usize;
                    if n > 1 << 24 {
                        return None;
                    }
                    let by_rank = read_dict(data, &mut pos, n)?;
                    let has_null = *data.get(pos)? != 0;
                    pos += 1;
                    types.push(ColumnType::Categorical);
                    transforms.push(ColumnTransform::Categorical {
                        null_code: has_null.then_some(by_rank.len() as u64),
                        by_rank,
                    });
                }
                _ => return None,
            }
        }
        if pos != data.len() {
            return None; // trailing bytes: not ours
        }
        Some(Self { transforms, names, types })
    }

    /// Legacy `PRE1` reader: u16-framed strings, u32 dictionary counts.
    fn from_bytes_v1(data: &[u8]) -> Option<Self> {
        let mut pos = 4usize;
        let d = u16::from_le_bytes(data.get(pos..pos + 2)?.try_into().ok()?) as usize;
        pos += 2;
        let mut names = Vec::with_capacity(d);
        let mut types = Vec::with_capacity(d);
        let mut transforms = Vec::with_capacity(d);
        for _ in 0..d {
            names.push(read_str_v1(data, &mut pos)?);
            let tag = *data.get(pos)?;
            pos += 1;
            match tag {
                0..=2 => {
                    let scale = *data.get(pos)?;
                    pos += 1;
                    let min_scaled =
                        i64::from_le_bytes(data.get(pos..pos + 8)?.try_into().ok()?);
                    pos += 8;
                    let max_enc =
                        u64::from_le_bytes(data.get(pos..pos + 8)?.try_into().ok()?);
                    pos += 8;
                    if max_enc >= MAX_ENC {
                        return None;
                    }
                    let has_null = *data.get(pos)? != 0;
                    pos += 1;
                    types.push(match tag {
                        0 => ColumnType::Int,
                        1 => ColumnType::Float { scale },
                        _ => ColumnType::Timestamp,
                    });
                    transforms.push(ColumnTransform::Numeric {
                        min_scaled,
                        scale,
                        max_enc,
                        null_code: has_null.then_some(max_enc + 1),
                    });
                }
                3 => {
                    let n = u32::from_le_bytes(data.get(pos..pos + 4)?.try_into().ok()?)
                        as usize;
                    pos += 4;
                    if n > 1 << 24 {
                        return None;
                    }
                    let mut by_rank = Vec::with_capacity(n);
                    for _ in 0..n {
                        by_rank.push(read_str_v1(data, &mut pos)?);
                    }
                    let has_null = *data.get(pos)? != 0;
                    pos += 1;
                    types.push(ColumnType::Categorical);
                    transforms.push(ColumnTransform::Categorical {
                        null_code: has_null.then_some(by_rank.len() as u64),
                        by_rank,
                    });
                }
                _ => return None,
            }
        }
        if pos != data.len() {
            return None; // trailing bytes: not ours
        }
        Some(Self { transforms, names, types })
    }

    /// Serialized footprint of the transforms (constants + dictionaries) in bytes;
    /// counted as part of the compressed-store size in storage experiments.
    /// Exact: the actual `PRE2` blob length, including FSST-compressed
    /// dictionaries, rather than the old per-field approximation.
    pub fn metadata_bytes(&self) -> usize {
        self.to_bytes().len()
    }
}

/// Reusable buffers for [`Preprocessor::encode_with`].
///
/// Sealing re-encodes every batch of rows; with fresh allocations per seal the
/// ingest tail latency was dominated by allocator churn (p99 ≈ 40× p50). A
/// session keeps one of these per table and recycles the column buffers
/// through [`EncodeScratch::reclaim`].
#[derive(Debug, Default)]
pub struct EncodeScratch {
    pool: Vec<Vec<u64>>,
}

impl EncodeScratch {
    /// An empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    fn take(&mut self) -> Vec<u64> {
        let mut v = self.pool.pop().unwrap_or_default();
        v.clear();
        v
    }

    /// Returns a matrix's column buffers to the pool for the next seal.
    pub fn reclaim(&mut self, matrix: EncodedMatrix) {
        self.pool.extend(matrix.columns);
    }
}

/// Uvarint-framed string (PRE2). Unlike the PRE1 u16 frame, this cannot
/// truncate: any length serializes exactly, so a >64 KiB categorical value
/// round-trips instead of silently corrupting the blob in release builds.
fn write_str(out: &mut Vec<u8>, s: &str) {
    write_uvarint(out, s.len() as u64);
    out.extend_from_slice(s.as_bytes());
}

fn read_str(data: &[u8], pos: &mut usize) -> Option<String> {
    let len = read_uvarint(data, pos)? as usize;
    if len > data.len().saturating_sub(*pos) {
        return None;
    }
    let s = std::str::from_utf8(data.get(*pos..*pos + len)?).ok()?;
    *pos += len;
    Some(s.to_string())
}

/// Legacy PRE1 string frame: u16 length prefix.
fn read_str_v1(data: &[u8], pos: &mut usize) -> Option<String> {
    let len = u16::from_le_bytes(data.get(*pos..*pos + 2)?.try_into().ok()?) as usize;
    *pos += 2;
    let s = std::str::from_utf8(data.get(*pos..*pos + len)?).ok()?;
    *pos += len;
    Some(s.to_string())
}

/// PRE2 categorical dictionary block: `u8 mode` then either plain
/// uvarint-framed strings (mode 0) or an FSST symbol table followed by
/// uvarint-framed compressed strings (mode 1). FSST wins whenever the shared
/// symbol table amortizes across redundant entries; the choice is by exact
/// size, so plain dictionaries never regress.
fn write_dict(out: &mut Vec<u8>, by_rank: &[String]) {
    let plain_len: usize =
        by_rank.iter().map(|s| crate::codec::uvarint_len(s.len() as u64) + s.len()).sum();
    let table = SymbolTable::build(by_rank);
    let compressed = table.compress_all(by_rank);
    let fsst_len: usize = crate::codec::uvarint_len(table.table_bytes() as u64)
        + table.table_bytes()
        + compressed
            .iter()
            .map(|c| crate::codec::uvarint_len(c.len() as u64) + c.len())
            .sum::<usize>();
    if fsst_len < plain_len {
        out.push(1);
        write_uvarint(out, table.table_bytes() as u64);
        out.extend_from_slice(&table.to_bytes());
        for c in &compressed {
            write_uvarint(out, c.len() as u64);
            out.extend_from_slice(c);
        }
    } else {
        out.push(0);
        for s in by_rank {
            write_str(out, s);
        }
    }
}

fn read_dict(data: &[u8], pos: &mut usize, n: usize) -> Option<Vec<String>> {
    let mode = *data.get(*pos)?;
    *pos += 1;
    match mode {
        0 => {
            let mut by_rank = Vec::with_capacity(n);
            for _ in 0..n {
                by_rank.push(read_str(data, pos)?);
            }
            Some(by_rank)
        }
        1 => {
            let table_len = read_uvarint(data, pos)? as usize;
            if table_len > data.len().saturating_sub(*pos) {
                return None;
            }
            let table = SymbolTable::from_bytes(data.get(*pos..*pos + table_len)?)?;
            *pos += table_len;
            let mut by_rank = Vec::with_capacity(n);
            for _ in 0..n {
                let len = read_uvarint(data, pos)? as usize;
                if len > data.len().saturating_sub(*pos) {
                    return None;
                }
                let raw = table.decompress(data.get(*pos..*pos + len)?)?;
                *pos += len;
                by_rank.push(String::from_utf8(raw).ok()?);
            }
            Some(by_rank)
        }
        _ => None,
    }
}

fn fit_column(col: &Column) -> ColumnTransform {
    match col.ty() {
        ColumnType::Categorical => fit_categorical(col),
        ColumnType::Float { scale } => fit_numeric(col, scale),
        ColumnType::Int | ColumnType::Timestamp => fit_numeric(col, 0),
    }
}

fn fit_numeric(col: &Column, scale: u8) -> ColumnTransform {
    let factor = 10f64.powi(scale as i32);
    let mut min_scaled = i64::MAX;
    let mut max_scaled = i64::MIN;
    let mut has_null = false;
    for i in 0..col.len() {
        match col.numeric(i) {
            Some(x) => {
                let v = (x * factor).round() as i64;
                min_scaled = min_scaled.min(v);
                max_scaled = max_scaled.max(v);
            }
            None => has_null = true,
        }
    }
    if min_scaled > max_scaled {
        // All-null or empty column: degenerate but well-defined transform.
        min_scaled = 0;
        max_scaled = 0;
    }
    let max_enc = (max_scaled - min_scaled) as u64;
    assert!(max_enc < MAX_ENC, "encoded range of '{}' exceeds 2^52", col.name());
    ColumnTransform::Numeric {
        min_scaled,
        scale,
        max_enc,
        null_code: has_null.then_some(max_enc + 1),
    }
}

fn fit_categorical(col: &Column) -> ColumnTransform {
    let dict = col.dictionary().expect("categorical column must carry a dictionary");
    let mut freq = vec![0u64; dict.len()];
    let mut has_null = false;
    for i in 0..col.len() {
        match col.code(i) {
            Some(c) => freq[c as usize] += 1,
            None => has_null = true,
        }
    }
    // Frequency-ranked: most common first; ties broken by original code for
    // determinism.
    let mut order: Vec<usize> = (0..dict.len()).collect();
    order.sort_by_key(|&c| (std::cmp::Reverse(freq[c]), c));
    let by_rank: Vec<String> = order.iter().map(|&c| dict[c].clone()).collect();
    ColumnTransform::Categorical {
        null_code: has_null.then_some(by_rank.len() as u64),
        by_rank,
    }
}

fn encode_column_into(col: &Column, tr: &ColumnTransform, out: &mut Vec<u64>) {
    out.reserve(col.len());
    match tr {
        ColumnTransform::Numeric { min_scaled, scale, max_enc, null_code } => {
            let factor = 10f64.powi(*scale as i32);
            let null = null_code.unwrap_or(max_enc + 1);
            // Values below the fitted minimum have no non-negative encoding and
            // saturate at 0 (a silent wrap to a huge u64 would corrupt every
            // consumer). Values *above* the fitted range stay as-is: they remain
            // representable, and incremental ingestion uses them to extend the
            // synopsis's outer bins.
            match col.data() {
                ColumnData::Int(vals) => {
                    for (i, &v) in vals.iter().enumerate() {
                        if col.is_valid(i) {
                            out.push((v - min_scaled).max(0) as u64);
                        } else {
                            out.push(null);
                        }
                    }
                }
                ColumnData::Float(vals) => {
                    for (i, &v) in vals.iter().enumerate() {
                        if col.is_valid(i) {
                            let scaled = (v * factor).round() as i64;
                            out.push((scaled - min_scaled).max(0) as u64);
                        } else {
                            out.push(null);
                        }
                    }
                }
                ColumnData::Cat(..) => unreachable!("numeric transform on categorical column"),
            }
        }
        ColumnTransform::Categorical { by_rank, null_code } => {
            let dict = col.dictionary().expect("categorical column must carry a dictionary");
            // code -> rank lookup table.
            let mut rank_of: HashMap<&str, u64> = HashMap::with_capacity(by_rank.len());
            for (rank, s) in by_rank.iter().enumerate() {
                rank_of.insert(s.as_str(), rank as u64);
            }
            let null = null_code.unwrap_or(by_rank.len() as u64);
            for i in 0..col.len() {
                match col.code(i) {
                    Some(c) => out.push(rank_of[dict[c as usize].as_str()]),
                    None => out.push(null),
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ph_types::Dataset;

    fn sample() -> Dataset {
        Dataset::builder("t")
            .column(Column::from_ints("i", vec![Some(-5), Some(10), None, Some(0)]))
            .unwrap()
            .column(Column::from_floats(
                "f",
                vec![Some(10.22), Some(9.99), Some(10.25), None],
                2,
            ))
            .unwrap()
            .column(Column::from_strings(
                "c",
                vec![Some("rare"), Some("common"), Some("common"), Some("common")],
            ))
            .unwrap()
            .build()
    }

    #[test]
    fn numeric_min_subtraction() {
        let d = sample();
        let pre = Preprocessor::fit(&d);
        let enc = pre.encode(&d);
        // min = -5 -> encoded -5 -> 0, 10 -> 15, null -> 16, 0 -> 5.
        assert_eq!(enc.columns[0], vec![0, 15, 16, 5]);
    }

    #[test]
    fn float_to_int_conversion() {
        let d = sample();
        let pre = Preprocessor::fit(&d);
        let enc = pre.encode(&d);
        // scale 2: 10.22->1022, 9.99->999 (min), 10.25->1025; encoded: 23, 0, 26, null=27.
        assert_eq!(enc.columns[1], vec![23, 0, 26, 27]);
    }

    #[test]
    fn categorical_frequency_ranking() {
        let d = sample();
        let pre = Preprocessor::fit(&d);
        let enc = pre.encode(&d);
        // "common" (3 occurrences) -> rank 0, "rare" -> rank 1.
        assert_eq!(enc.columns[2], vec![1, 0, 0, 0]);
    }

    #[test]
    fn literal_transformation_matches_fig7() {
        // Fig 7: dist column min 69 -> "dist > 150" becomes "x > 81";
        // air_time min 25, scale 1 -> "air_time > 90.5" becomes "x > 655".
        let d = Dataset::builder("flights")
            .column(Column::from_ints("dist", vec![Some(69), Some(500)]))
            .unwrap()
            .column(Column::from_floats("air_time", vec![Some(2.5), Some(100.0)], 1))
            .unwrap()
            .build();
        let pre = Preprocessor::fit(&d);
        assert_eq!(
            pre.encode_literal(0, &Value::Int(150)).unwrap(),
            EncodedLiteral::Num(81.0)
        );
        assert_eq!(
            pre.encode_literal(1, &Value::Float(90.5)).unwrap(),
            EncodedLiteral::Num(905.0 - 25.0)
        );
    }

    #[test]
    fn unknown_category_is_no_match() {
        let d = sample();
        let pre = Preprocessor::fit(&d);
        assert_eq!(
            pre.encode_literal(2, &Value::Str("nope".into())).unwrap(),
            EncodedLiteral::NoMatch
        );
        assert_eq!(
            pre.encode_literal(2, &Value::Str("rare".into())).unwrap(),
            EncodedLiteral::Rank(1)
        );
    }

    #[test]
    fn type_mismatch_errors() {
        let d = sample();
        let pre = Preprocessor::fit(&d);
        assert!(pre.encode_literal(2, &Value::Int(3)).is_err());
        assert!(pre.encode_literal(0, &Value::Str("x".into())).is_err());
    }

    #[test]
    fn decode_roundtrip() {
        let d = sample();
        let pre = Preprocessor::fit(&d);
        let enc = pre.encode(&d);
        for col in 0..d.n_columns() {
            for row in 0..d.n_rows() {
                let decoded = pre.decode_value(col, enc.get(row, col)).expect("valid code");
                match (d.column(col).value(row), decoded) {
                    (Value::Float(a), Value::Float(b)) => {
                        assert!((a - b).abs() < 1e-9, "col {col} row {row}")
                    }
                    (a, b) => assert_eq!(a, b, "col {col} row {row}"),
                }
            }
        }
    }

    #[test]
    fn affine_maps_back() {
        let d = sample();
        let pre = Preprocessor::fit(&d);
        let (a, b) = pre.transform(1).affine().unwrap();
        // encoded 23 -> 10.22
        assert!((a * 23.0 + b - 10.22).abs() < 1e-9);
        assert!(pre.transform(2).affine().is_none());
    }

    #[test]
    fn out_of_range_values_saturate_below_and_extend_above() {
        // Fit on [100, 200], then encode a batch that exceeds the range on both
        // sides: below-minimum values saturate at 0 (never wrap to huge u64s);
        // above-maximum values keep their true distance so ingestion can extend
        // outer bins.
        let base = Dataset::builder("t")
            .column(Column::from_ints("x", vec![Some(100), Some(200)]))
            .unwrap()
            .build();
        let pre = Preprocessor::fit(&base);
        let fresh = Dataset::builder("t")
            .column(Column::from_ints("x", vec![Some(50), Some(150), Some(260)]))
            .unwrap()
            .build();
        let enc = pre.encode(&fresh);
        assert_eq!(enc.columns[0], vec![0, 50, 160]);
    }

    #[test]
    fn serialization_roundtrips_exactly() {
        let d = sample();
        let pre = Preprocessor::fit(&d);
        let bytes = pre.to_bytes();
        let back = Preprocessor::from_bytes(&bytes).expect("deserialize");
        assert_eq!(back, pre);
        // And the round-trip is bit-stable.
        assert_eq!(back.to_bytes(), bytes);
        // Truncations and bad magic fail cleanly.
        for cut in [0, 3, 10, bytes.len() / 2, bytes.len() - 1] {
            assert!(Preprocessor::from_bytes(&bytes[..cut]).is_none(), "cut {cut}");
        }
        let mut bad = bytes.clone();
        bad[0] = b'X';
        assert!(Preprocessor::from_bytes(&bad).is_none());
    }

    #[test]
    fn decode_out_of_range_code_is_an_error_not_a_panic() {
        let d = sample();
        let pre = Preprocessor::fit(&d);
        // Column 2 is categorical with 2 categories + no null: rank 7 is from
        // a corrupted or version-skewed store.
        match pre.decode_value(2, 7) {
            Err(GdError::CorruptCode { column, code }) => {
                assert_eq!(column, "c");
                assert_eq!(code, 7);
            }
            other => panic!("expected CorruptCode, got {other:?}"),
        }
        // And it maps to PhError::Corrupt, not InvalidQuery.
        let ph: ph_types::PhError = pre.decode_value(2, 7).unwrap_err().into();
        assert!(matches!(ph, ph_types::PhError::Corrupt(_)));
        // Numeric codes beyond 2^52 are unrepresentable.
        assert!(matches!(
            pre.decode_value(0, (1 << 52) + 1),
            Err(GdError::CorruptCode { .. })
        ));
        // Out-of-range column index is a typed error too.
        assert!(matches!(pre.decode_value(99, 0), Err(GdError::BadColumn(99))));
    }

    #[test]
    fn giant_string_survives_serialization() {
        // Regression: PRE1 framed strings with a u16 length, and release
        // builds silently truncated a >64 KiB string, corrupting the blob.
        let big = "x".repeat(70 * 1024);
        let d = Dataset::builder("t")
            .column(Column::from_strings("s", vec![Some(big.as_str()), Some("tiny")]))
            .unwrap()
            .build();
        let pre = Preprocessor::fit(&d);
        let bytes = pre.to_bytes();
        let back = Preprocessor::from_bytes(&bytes).expect("deserialize");
        assert_eq!(back, pre);
        assert_eq!(back.transform(0).category(0), Some(big.as_str()));
    }

    #[test]
    fn legacy_pre1_blobs_still_load() {
        // A PRE1 blob written by the previous format version: u16 column
        // count, u16-framed strings, u32 dictionary counts.
        fn put_str_v1(out: &mut Vec<u8>, s: &str) {
            out.extend_from_slice(&(s.len() as u16).to_le_bytes());
            out.extend_from_slice(s.as_bytes());
        }
        let mut v1 = Vec::new();
        v1.extend_from_slice(b"PRE1");
        v1.extend_from_slice(&2u16.to_le_bytes());
        put_str_v1(&mut v1, "x");
        v1.push(0); // Int
        v1.push(0); // scale
        v1.extend_from_slice(&(-5i64).to_le_bytes());
        v1.extend_from_slice(&15u64.to_le_bytes());
        v1.push(1); // has_null
        put_str_v1(&mut v1, "c");
        v1.push(3); // Categorical
        v1.extend_from_slice(&2u32.to_le_bytes());
        put_str_v1(&mut v1, "common");
        put_str_v1(&mut v1, "rare");
        v1.push(0); // no null
        let pre = Preprocessor::from_bytes(&v1).expect("PRE1 must still load");
        assert_eq!(pre.names(), &["x".to_string(), "c".to_string()]);
        assert_eq!(
            pre.transform(0),
            &ColumnTransform::Numeric {
                min_scaled: -5,
                scale: 0,
                max_enc: 15,
                null_code: Some(16)
            }
        );
        assert_eq!(pre.transform(1).category(0), Some("common"));
        assert_eq!(pre.transform(1).category(1), Some("rare"));
        // Re-serializing upgrades to PRE2, which round-trips bit-stably.
        let v2 = pre.to_bytes();
        assert_eq!(&v2[..4], b"PRE2");
        assert_eq!(Preprocessor::from_bytes(&v2).unwrap(), pre);
    }

    #[test]
    fn redundant_dictionaries_compress_with_fsst() {
        // 300 URL-shaped categories sharing long affixes: the FSST dictionary
        // block (mode 1) must beat plain framing and round-trip exactly.
        let cats: Vec<String> = (0..300)
            .map(|i| format!("https://telemetry.plant-{:02}.example.com/sensor/{i}", i % 7))
            .collect();
        let refs: Vec<Option<&str>> = cats.iter().map(|s| Some(s.as_str())).collect();
        let d = Dataset::builder("t")
            .column(Column::from_strings("url", refs))
            .unwrap()
            .build();
        let pre = Preprocessor::fit(&d);
        let bytes = pre.to_bytes();
        let plain_total: usize = cats.iter().map(|s| s.len() + 1).sum();
        assert!(
            bytes.len() < plain_total,
            "FSST dict should shrink the blob: {} vs plain {plain_total}",
            bytes.len()
        );
        let back = Preprocessor::from_bytes(&bytes).expect("deserialize");
        assert_eq!(back, pre);
        assert_eq!(back.to_bytes(), bytes, "round-trip must be bit-stable");
    }

    #[test]
    fn encode_with_reuses_scratch_buffers() {
        let d = sample();
        let pre = Preprocessor::fit(&d);
        let mut scratch = EncodeScratch::new();
        let first = pre.encode_with(&d, &mut scratch);
        let want = first.columns.clone();
        let ptrs: Vec<*const u64> = first.columns.iter().map(|c| c.as_ptr()).collect();
        scratch.reclaim(first);
        let second = pre.encode_with(&d, &mut scratch);
        assert_eq!(second.columns, want);
        // Every buffer came back out of the pool — no fresh allocations.
        for col in &second.columns {
            assert!(ptrs.contains(&col.as_ptr()));
        }
    }

    #[test]
    fn all_null_column_is_degenerate_but_valid() {
        let d = Dataset::builder("t")
            .column(Column::from_ints("x", vec![None, None]))
            .unwrap()
            .build();
        let pre = Preprocessor::fit(&d);
        let enc = pre.encode(&d);
        let null = pre.transform(0).null_code().unwrap();
        assert_eq!(enc.columns[0], vec![null, null]);
    }
}
