//! Greedy base/deviation bit-split selection.
//!
//! GreedyGD chooses, per column, how many low-order bits are carved off into the
//! per-row deviation. Moving a bit from base to deviation costs one bit per row but
//! lets more rows share a base, shrinking the deduplicated base table. The greedy
//! loop repeatedly applies the single-bit move with the best net size change until no
//! move improves the total (size model below, mirroring Fig 3):
//!
//! ```text
//! size(devs) = n_bases·Σ(w_c − dev_c)            (deduplicated base table)
//!            + n·⌈log2 n_bases⌉                  (base ID per row)
//!            + n·Σ dev_c                         (verbatim deviations)
//! ```
//!
//! Candidate evaluation counts distinct bases with a per-row *updatable sum hash*
//! (`Σ_c mix(c, part_c)` wrapping), so trying "one more deviation bit on column c"
//! costs one add/sub per row instead of rehashing the whole tuple. The split is fitted
//! on a row sample (`fit_rows`) and then applied exactly to all rows.

use rand::seq::index::sample as index_sample;
use rand::SeedableRng;

use ph_encoding::bits_for;

use crate::{EncodedMatrix, GdStore};

/// Tuning knobs for the greedy split search.
#[derive(Debug, Clone)]
pub struct GdConfig {
    /// Rows used to fit the split (sampled uniformly if the data is larger).
    pub fit_rows: usize,
    /// RNG seed for the fit sample.
    pub seed: u64,
}

impl Default for GdConfig {
    fn default() -> Self {
        Self { fit_rows: 32_768, seed: 0x9d8_1ab3 }
    }
}

/// GreedyGD compressor: fits the bit split, then builds a [`GdStore`].
#[derive(Debug, Clone, Default)]
pub struct GdCompressor {
    config: GdConfig,
}

impl GdCompressor {
    /// Compressor with default configuration.
    pub fn new() -> Self {
        Self::default()
    }

    /// Compressor with explicit configuration.
    pub fn with_config(config: GdConfig) -> Self {
        Self { config }
    }

    /// Compresses an encoded matrix: fits deviation bit-widths on a sample, then
    /// deduplicates bases exactly over all rows.
    pub fn compress(&self, data: &EncodedMatrix) -> GdStore {
        let widths: Vec<u32> = (0..data.n_columns())
            .map(|c| bits_for(data.column_max(c)))
            .collect();
        let dev_bits = self.fit_dev_bits(data, &widths);
        GdStore::build(data, &widths, &dev_bits)
    }

    /// Greedy search for per-column deviation widths.
    fn fit_dev_bits(&self, data: &EncodedMatrix, widths: &[u32]) -> Vec<u32> {
        let d = data.n_columns();
        if d == 0 || data.n_rows == 0 {
            return vec![0; d];
        }
        let fit = if data.n_rows > self.config.fit_rows {
            let mut rng = rand::rngs::StdRng::seed_from_u64(self.config.seed);
            let rows = index_sample(&mut rng, data.n_rows, self.config.fit_rows).into_vec();
            data.take_rows(&rows)
        } else {
            data.clone()
        };
        let n = fit.n_rows;

        let mut dev_bits = vec![0u32; d];
        // Sum-hash per row over current base parts.
        let mut hashes: Vec<u64> = vec![0; n];
        for c in 0..d {
            let col = &fit.columns[c];
            for (r, h) in hashes.iter_mut().enumerate() {
                *h = h.wrapping_add(mix(c, col[r]));
            }
        }
        let mut n_bases = distinct(&hashes);
        let mut best_size = size_bits(n, n_bases, widths, &dev_bits);

        // Candidate moves add `step` deviation bits to one column at a time. Strict
        // single-bit hill climbing stalls on plateaus (moving one noise bit rarely
        // collapses any bases on near-unique rows), so larger jumps are also
        // evaluated; the accepted move is whichever strictly shrinks the size model
        // the most.
        const STEPS: [u32; 4] = [1, 2, 4, 8];
        // Candidate-hash, trial-widths and distinct-set buffers are hoisted out
        // of the loop: the seal path runs this search on every batch, and a
        // fresh (n)-sized allocation per (column × step) per iteration was the
        // dominant source of ingest tail latency.
        let mut cand: Vec<u64> = Vec::with_capacity(n);
        let mut trial = vec![0u32; d];
        let mut seen = std::collections::HashSet::with_capacity(n);
        loop {
            let mut best: Option<(usize, u32, u64, usize)> = None; // (col, step, size, bases)
            for c in 0..d {
                for step in STEPS {
                    if dev_bits[c] + step > widths[c] {
                        continue;
                    }
                    let shift = dev_bits[c];
                    let col = &fit.columns[c];
                    cand.clear();
                    for (r, h) in hashes.iter().enumerate() {
                        let old_part = col[r] >> shift;
                        let new_part = col[r] >> (shift + step);
                        cand.push(
                            h.wrapping_sub(mix(c, old_part)).wrapping_add(mix(c, new_part)),
                        );
                    }
                    let nb = distinct_with(&cand, &mut seen);
                    trial.copy_from_slice(&dev_bits);
                    trial[c] += step;
                    let sz = size_bits(n, nb, widths, &trial);
                    if sz < best.map_or(best_size, |(_, _, s, _)| s) {
                        best = Some((c, step, sz, nb));
                    }
                }
            }
            match best {
                Some((c, step, sz, nb)) if sz < best_size => {
                    let shift = dev_bits[c];
                    let col = &fit.columns[c];
                    for (r, h) in hashes.iter_mut().enumerate() {
                        let old_part = col[r] >> shift;
                        let new_part = col[r] >> (shift + step);
                        *h = h.wrapping_sub(mix(c, old_part)).wrapping_add(mix(c, new_part));
                    }
                    dev_bits[c] += step;
                    best_size = sz;
                    n_bases = nb;
                    let _ = n_bases;
                }
                _ => break,
            }
        }
        // Fallback: on near-unique rows (joint entropy ~ full width) no per-column
        // move strictly helps and the search keeps everything in the base, which
        // costs `n·log2(n_bases)` of pure ID overhead. The all-deviation
        // configuration (one empty base, rows stored verbatim) caps the worst case
        // at ~1 bit/row; use it whenever it beats the search result.
        let all_dev_size = size_bits(n, 1, widths, widths);
        if all_dev_size < best_size {
            return widths.to_vec();
        }
        dev_bits
    }
}

/// Total compressed size in bits under the GD size model.
fn size_bits(n: usize, n_bases: usize, widths: &[u32], dev_bits: &[u32]) -> u64 {
    let base_width: u64 = widths
        .iter()
        .zip(dev_bits)
        .map(|(&w, &d)| (w - d) as u64)
        .sum();
    let dev_width: u64 = dev_bits.iter().map(|&d| d as u64).sum();
    let id_bits = bits_for(n_bases.saturating_sub(1) as u64) as u64;
    n_bases as u64 * base_width + n as u64 * (id_bits + dev_width)
}

/// SplitMix64-style mixer keyed by column, used for the updatable sum hash.
#[inline]
fn mix(col: usize, part: u64) -> u64 {
    let mut z = part ^ (col as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn distinct(hashes: &[u64]) -> usize {
    let mut set = std::collections::HashSet::with_capacity(hashes.len());
    distinct_with(hashes, &mut set)
}

/// [`distinct`] with a caller-owned set, so the greedy loop's inner candidate
/// evaluation reuses one allocation across all (column × step) trials.
fn distinct_with(hashes: &[u64], set: &mut std::collections::HashSet<u64>) -> usize {
    set.clear();
    for &h in hashes {
        set.insert(h);
    }
    set.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A column whose low bits are noise should get them carved into the deviation.
    #[test]
    fn noisy_low_bits_go_to_deviation() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let n = 4000;
        // High byte from a tiny alphabet, low 8 bits uniform noise.
        let col: Vec<u64> = (0..n)
            .map(|_| ((rng.gen_range(0..4u64)) << 8) | rng.gen_range(0..256u64))
            .collect();
        let m = EncodedMatrix::new(vec![col]);
        let store = GdCompressor::new().compress(&m);
        assert!(
            store.dev_bits()[0] >= 6,
            "expected most noise bits in deviation, got {:?}",
            store.dev_bits()
        );
        assert!(store.n_bases() <= 16, "bases should collapse to the alphabet");
    }

    /// A constant column needs no deviation bits at all.
    #[test]
    fn constant_column_stays_in_base() {
        let m = EncodedMatrix::new(vec![vec![7u64; 1000]]);
        let store = GdCompressor::new().compress(&m);
        assert_eq!(store.dev_bits()[0], 0);
        assert_eq!(store.n_bases(), 1);
    }

    #[test]
    fn size_model_monotone_in_bases() {
        let widths = [16u32, 16];
        let dev = [4u32, 4];
        assert!(size_bits(1000, 10, &widths, &dev) < size_bits(1000, 500, &widths, &dev));
    }

    #[test]
    fn empty_matrix_compresses() {
        let m = EncodedMatrix::new(vec![]);
        let store = GdCompressor::new().compress(&m);
        assert_eq!(store.n_rows(), 0);
    }
}
