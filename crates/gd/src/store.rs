#![allow(clippy::needless_range_loop)] // parallel-array indexing is the clearer idiom here

//! Deduplicated base/deviation store with random row access.

use std::collections::HashMap;

use ph_encoding::{bits_for, read_uvarint, write_uvarint, BitReader, BitWriter};

use crate::EncodedMatrix;

/// A GD-compressed table: deduplicated bases, per-row base IDs and verbatim
/// deviations (paper Fig 3).
///
/// In memory, bases and IDs stay unpacked for fast random access, while deviations —
/// the bulk of per-row storage — are kept bit-packed. [`GdStore::to_bytes`] emits the
/// fully bit-packed on-disk format whose length is what the storage experiments
/// report; [`GdStore::stats`] returns the same accounting without serializing.
#[derive(Debug, Clone)]
pub struct GdStore {
    /// Total bit width per column (deviation + base part).
    widths: Vec<u32>,
    /// Deviation (low-order) bit width per column.
    dev_bits: Vec<u32>,
    /// Base tuples, flattened: `n_bases × d` base parts (already right-shifted).
    base_parts: Vec<u64>,
    /// Lookup from base tuple to its ID, for incremental appends.
    base_index: HashMap<Box<[u64]>, u32>,
    /// Base ID per row.
    ids: Vec<u32>,
    /// Bit-packed deviations, `dev_stride` bits per row.
    devs: Vec<u8>,
    /// Σ dev_bits.
    dev_stride: u64,
    n_rows: usize,
}

/// Compression accounting for one [`GdStore`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CompressionStats {
    /// Rows stored.
    pub n_rows: usize,
    /// Distinct bases after deduplication.
    pub n_bases: usize,
    /// Bit-packed size of the raw matrix (each column at its full width).
    pub raw_bytes: u64,
    /// Serialized compressed size (bases + IDs + deviations + header).
    pub compressed_bytes: u64,
    /// `raw_bytes / compressed_bytes`.
    pub ratio: f64,
}

impl GdStore {
    /// Builds a store from an encoded matrix with the given per-column total widths
    /// and deviation widths. Normally called through
    /// [`GdCompressor::compress`](crate::GdCompressor::compress).
    pub fn build(data: &EncodedMatrix, widths: &[u32], dev_bits: &[u32]) -> Self {
        assert_eq!(widths.len(), data.n_columns());
        assert_eq!(dev_bits.len(), data.n_columns());
        assert!(
            widths.iter().zip(dev_bits).all(|(w, d)| d <= w),
            "deviation width exceeds column width"
        );
        let mut store = Self {
            widths: widths.to_vec(),
            dev_bits: dev_bits.to_vec(),
            base_parts: Vec::new(),
            base_index: HashMap::new(),
            ids: Vec::new(),
            devs: Vec::new(),
            dev_stride: dev_bits.iter().map(|&d| d as u64).sum(),
            n_rows: 0,
        };
        store.append(data);
        store
    }

    /// Appends rows incrementally ("new rows can be added incrementally to the
    /// compressed data", §3). New base tuples are assigned fresh IDs.
    ///
    /// # Panics
    /// Panics if a value does not fit the column width fixed at build time.
    pub fn append(&mut self, data: &EncodedMatrix) {
        assert_eq!(data.n_columns(), self.widths.len(), "schema mismatch on append");
        let d = self.widths.len();
        let mut key: Vec<u64> = vec![0; d];
        let mut dev_writer = BitWriter::new();
        // Re-stage existing packed deviations so the writer continues the stream.
        // (Cheap: devs is copied once per append call, not per row.)
        let old_bits = self.n_rows as u64 * self.dev_stride;
        for chunk_bit in 0..old_bits {
            let byte = (chunk_bit / 8) as usize;
            let bit = 7 - (chunk_bit % 8) as u32;
            dev_writer.write_bit((self.devs[byte] >> bit) & 1 == 1);
        }
        for r in 0..data.n_rows {
            for c in 0..d {
                let v = data.get(r, c);
                assert!(
                    bits_for(v) <= self.widths[c],
                    "value {v} does not fit column {c} width {}",
                    self.widths[c]
                );
                key[c] = v >> self.dev_bits[c];
            }
            let next_id = self.base_index.len() as u32;
            let id = *self.base_index.entry(key.clone().into_boxed_slice()).or_insert_with(|| {
                self.base_parts.extend_from_slice(&key);
                next_id
            });
            self.ids.push(id);
            for c in 0..d {
                let v = data.get(r, c);
                let db = self.dev_bits[c];
                if db > 0 {
                    dev_writer.write_bits(v & ((1u64 << db) - 1), db);
                }
            }
        }
        self.devs = dev_writer.finish();
        self.n_rows += data.n_rows;
    }

    /// Number of rows stored.
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Number of columns.
    pub fn n_columns(&self) -> usize {
        self.widths.len()
    }

    /// Number of deduplicated bases.
    pub fn n_bases(&self) -> usize {
        self.base_index.len()
    }

    /// Per-column deviation widths chosen by the greedy fit.
    pub fn dev_bits(&self) -> &[u32] {
        &self.dev_bits
    }

    /// Reconstructs row `r` (random access — O(d), no full decompression).
    pub fn row(&self, r: usize) -> Vec<u64> {
        assert!(r < self.n_rows, "row {r} out of range ({})", self.n_rows);
        let d = self.widths.len();
        let base = &self.base_parts[self.ids[r] as usize * d..(self.ids[r] as usize + 1) * d];
        let mut reader = BitReader::new(&self.devs);
        reader.seek(r as u64 * self.dev_stride);
        let mut out = Vec::with_capacity(d);
        for c in 0..d {
            let db = self.dev_bits[c];
            let dev = if db > 0 {
                reader.read_bits(db).expect("deviation stream truncated")
            } else {
                0
            };
            out.push((base[c] << db) | dev);
        }
        out
    }

    /// Reconstructs an arbitrary set of rows into a matrix (used to decode the
    /// synopsis builder's sample).
    pub fn rows(&self, row_ids: &[usize]) -> EncodedMatrix {
        let d = self.widths.len();
        let mut cols: Vec<Vec<u64>> = vec![Vec::with_capacity(row_ids.len()); d];
        for &r in row_ids {
            let row = self.row(r);
            for c in 0..d {
                cols[c].push(row[c]);
            }
        }
        EncodedMatrix::new(cols)
    }

    /// Full decompression.
    pub fn decompress(&self) -> EncodedMatrix {
        self.rows(&(0..self.n_rows).collect::<Vec<_>>())
    }

    /// Distinct base-derived values for one column, sorted ascending.
    ///
    /// A base part `p` of a column with `k` deviation bits represents the value chunk
    /// `[p·2ᵏ, (p+1)·2ᵏ)`; the returned representative is the chunk start. These are
    /// the values PairwiseHist seeds its initial bin edges from (§3, §4.1 line 4).
    pub fn base_values(&self, col: usize) -> Vec<u64> {
        let d = self.widths.len();
        let shift = self.dev_bits[col];
        let mut vals: Vec<u64> = (0..self.n_bases())
            .map(|b| self.base_parts[b * d + col] << shift)
            .collect();
        vals.sort_unstable();
        vals.dedup();
        vals
    }

    /// Serialized size of [`GdStore::to_bytes`] output, computed arithmetically
    /// in O(d) without packing a single bit. Segmented tables report their
    /// resident row-store bytes through this on every footprint query, so it
    /// must stay exactly in sync with the wire layout (pinned by a test).
    pub fn packed_bytes(&self) -> usize {
        let uvarint_len = |v: u64| -> usize {
            let mut v = v;
            let mut n = 1;
            while v >= 0x80 {
                v >>= 7;
                n += 1;
            }
            n
        };
        let d = self.widths.len();
        let header = uvarint_len(self.n_rows as u64)
            + uvarint_len(d as u64)
            + uvarint_len(self.n_bases() as u64)
            + 2 * d;
        let base_bits: u64 = self.n_bases() as u64
            * self.widths.iter().zip(&self.dev_bits).map(|(w, b)| (w - b) as u64).sum::<u64>();
        let id_bits = self.n_rows as u64 * bits_for(self.n_bases().saturating_sub(1) as u64) as u64;
        let dev_bits = self.n_rows as u64 * self.dev_stride;
        header + (base_bits + id_bits + dev_bits).div_ceil(8) as usize
    }

    /// Compression accounting under the bit-packed on-disk layout.
    pub fn stats(&self) -> CompressionStats {
        let raw_bits: u64 =
            self.n_rows as u64 * self.widths.iter().map(|&w| w as u64).sum::<u64>();
        let compressed = self.to_bytes().len() as u64;
        let raw_bytes = raw_bits.div_ceil(8);
        CompressionStats {
            n_rows: self.n_rows,
            n_bases: self.n_bases(),
            raw_bytes,
            compressed_bytes: compressed,
            ratio: if compressed > 0 { raw_bytes as f64 / compressed as f64 } else { 1.0 },
        }
    }

    /// Serializes to the fully bit-packed format: header, packed bases, packed base
    /// IDs, packed deviations.
    pub fn to_bytes(&self) -> Vec<u8> {
        let d = self.widths.len();
        let mut out = Vec::new();
        write_uvarint(&mut out, self.n_rows as u64);
        write_uvarint(&mut out, d as u64);
        write_uvarint(&mut out, self.n_bases() as u64);
        for &w in &self.widths {
            out.push(w as u8);
        }
        for &b in &self.dev_bits {
            out.push(b as u8);
        }
        let mut bits = BitWriter::new();
        for b in 0..self.n_bases() {
            for c in 0..d {
                bits.write_bits(self.base_parts[b * d + c], self.widths[c] - self.dev_bits[c]);
            }
        }
        let id_bits = bits_for(self.n_bases().saturating_sub(1) as u64);
        for &id in &self.ids {
            bits.write_bits(id as u64, id_bits);
        }
        // Deviations are already packed with the same stride; replay them.
        let dev_total = self.n_rows as u64 * self.dev_stride;
        for p in 0..dev_total {
            let byte = (p / 8) as usize;
            let bit = 7 - (p % 8) as u32;
            bits.write_bit((self.devs[byte] >> bit) & 1 == 1);
        }
        out.extend_from_slice(&bits.finish());
        out
    }

    /// Restores a store from [`GdStore::to_bytes`] output.
    ///
    /// Returns `None` on malformed input.
    pub fn from_bytes(data: &[u8]) -> Option<Self> {
        let mut pos = 0;
        let n_rows = read_uvarint(data, &mut pos)? as usize;
        let d = read_uvarint(data, &mut pos)? as usize;
        let n_bases = read_uvarint(data, &mut pos)? as usize;
        let widths: Vec<u32> = data.get(pos..pos + d)?.iter().map(|&b| b as u32).collect();
        pos += d;
        let dev_bits: Vec<u32> = data.get(pos..pos + d)?.iter().map(|&b| b as u32).collect();
        pos += d;
        if widths.iter().zip(&dev_bits).any(|(w, b)| b > w || *w > 64) {
            return None;
        }
        let mut reader = BitReader::new(data.get(pos..)?);
        let mut base_parts = Vec::with_capacity(n_bases * d);
        for _ in 0..n_bases {
            for c in 0..d {
                base_parts.push(reader.read_bits(widths[c] - dev_bits[c])?);
            }
        }
        let id_bits = bits_for(n_bases.saturating_sub(1) as u64);
        let mut ids = Vec::with_capacity(n_rows);
        for _ in 0..n_rows {
            let id = reader.read_bits(id_bits)? as u32;
            if id as usize >= n_bases.max(1) {
                return None;
            }
            ids.push(id);
        }
        let dev_stride: u64 = dev_bits.iter().map(|&b| b as u64).sum();
        let mut dev_writer = BitWriter::new();
        for _ in 0..n_rows as u64 * dev_stride {
            dev_writer.write_bit(reader.read_bit()?);
        }
        let mut base_index = HashMap::with_capacity(n_bases);
        for b in 0..n_bases {
            base_index.insert(
                base_parts[b * d..(b + 1) * d].to_vec().into_boxed_slice(),
                b as u32,
            );
        }
        Some(Self {
            widths,
            dev_bits,
            base_parts,
            base_index,
            ids,
            devs: dev_writer.finish(),
            dev_stride,
            n_rows,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GdCompressor;
    use proptest::prelude::*;
    use rand::{Rng, SeedableRng};

    fn random_matrix(seed: u64, n: usize, d: usize) -> EncodedMatrix {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        EncodedMatrix::new(
            (0..d)
                .map(|c| {
                    let hi = 1u64 << (4 + 2 * c as u32);
                    (0..n).map(|_| rng.gen_range(0..hi)).collect()
                })
                .collect(),
        )
    }

    #[test]
    fn roundtrip_row_reconstruction() {
        let m = random_matrix(3, 500, 4);
        let store = GdCompressor::new().compress(&m);
        for r in 0..m.n_rows {
            let row = store.row(r);
            for c in 0..m.n_columns() {
                assert_eq!(row[c], m.get(r, c), "row {r} col {c}");
            }
        }
    }

    #[test]
    fn decompress_equals_input() {
        let m = random_matrix(9, 300, 3);
        let store = GdCompressor::new().compress(&m);
        assert_eq!(store.decompress(), m);
    }

    #[test]
    fn serialization_roundtrip() {
        let m = random_matrix(5, 200, 3);
        let store = GdCompressor::new().compress(&m);
        let bytes = store.to_bytes();
        let back = GdStore::from_bytes(&bytes).expect("deserialize");
        assert_eq!(back.decompress(), m);
        assert_eq!(back.n_bases(), store.n_bases());
    }

    #[test]
    fn from_bytes_rejects_garbage() {
        // Garbage and truncated prefixes must fail cleanly, never panic.
        let _ = GdStore::from_bytes(&[0xFF; 3]);
        let m = random_matrix(5, 50, 2);
        let bytes = GdCompressor::new().compress(&m).to_bytes();
        for cut in [3, bytes.len() / 2] {
            let _ = GdStore::from_bytes(&bytes[..cut]);
        }
    }

    #[test]
    fn redundant_data_compresses_well() {
        // 32 distinct rows repeated: ratio should be large.
        let n = 4096;
        let col: Vec<u64> = (0..n).map(|i| ((i % 32) as u64) << 10).collect();
        let col2: Vec<u64> = (0..n).map(|i| ((i % 2) as u64) * 513).collect();
        let m = EncodedMatrix::new(vec![col, col2]);
        let store = GdCompressor::new().compress(&m);
        let stats = store.stats();
        assert!(stats.ratio > 2.0, "ratio = {}", stats.ratio);
    }

    #[test]
    fn append_then_access() {
        let m1 = random_matrix(11, 100, 2);
        let m2 = random_matrix(12, 80, 2);
        // Widths must cover both batches: build with explicit widths.
        let widths = vec![64u32, 64];
        let dev = vec![3u32, 0];
        let mut store = GdStore::build(&m1, &widths, &dev);
        store.append(&m2);
        assert_eq!(store.n_rows(), 180);
        for r in 0..100 {
            assert_eq!(store.row(r)[0], m1.get(r, 0));
        }
        for r in 0..80 {
            assert_eq!(store.row(100 + r)[1], m2.get(r, 1));
        }
    }

    #[test]
    fn base_values_sorted_unique() {
        let m = random_matrix(21, 400, 2);
        let store = GdCompressor::new().compress(&m);
        for c in 0..2 {
            let vals = store.base_values(c);
            assert!(vals.windows(2).all(|w| w[0] < w[1]), "must be strictly ascending");
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn prop_roundtrip(seed in 0u64..1000, n in 1usize..200, d in 1usize..5) {
            let m = random_matrix(seed, n, d);
            let store = GdCompressor::new().compress(&m);
            prop_assert_eq!(store.decompress(), m.clone());
            let back = GdStore::from_bytes(&store.to_bytes()).unwrap();
            prop_assert_eq!(back.decompress(), m);
        }

        /// The O(1) size accounting must equal the real serialized length for
        /// any store shape, including after incremental appends.
        #[test]
        fn prop_packed_bytes_matches_serialization(seed in 0u64..500, n in 1usize..150, d in 1usize..4) {
            let m = random_matrix(seed, n, d);
            let mut store = GdCompressor::new().compress(&m);
            prop_assert_eq!(store.packed_bytes(), store.to_bytes().len());
            // Re-appending the same rows keeps every value within the fitted
            // column widths while still growing ids/deviations.
            store.append(&m);
            prop_assert_eq!(store.packed_bytes(), store.to_bytes().len());
        }
    }
}
