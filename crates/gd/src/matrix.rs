//! Column-major matrix of pre-processed (non-negative integer) values.

/// Pre-processed dataset: every cell is a non-negative integer in the GreedyGD domain.
///
/// Missing values are encoded as a per-column *null code* (`max_encoded + 1`, chosen
/// by the [`Preprocessor`](crate::Preprocessor)), so the matrix is dense — GD
/// compresses null codes like any other value, which is exactly the paper's "encoding
/// missing values" pre-processing step.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EncodedMatrix {
    /// One `Vec<u64>` per column, each of length `n_rows`.
    pub columns: Vec<Vec<u64>>,
    /// Number of rows.
    pub n_rows: usize,
}

impl EncodedMatrix {
    /// Builds from column vectors, checking that all lengths agree.
    pub fn new(columns: Vec<Vec<u64>>) -> Self {
        let n_rows = columns.first().map_or(0, |c| c.len());
        assert!(
            columns.iter().all(|c| c.len() == n_rows),
            "encoded columns have inconsistent lengths"
        );
        Self { columns, n_rows }
    }

    /// Number of columns.
    pub fn n_columns(&self) -> usize {
        self.columns.len()
    }

    /// Cell accessor.
    #[inline]
    pub fn get(&self, row: usize, col: usize) -> u64 {
        self.columns[col][row]
    }

    /// Returns the sub-matrix with only the given rows, in order.
    pub fn take_rows(&self, rows: &[usize]) -> EncodedMatrix {
        EncodedMatrix {
            columns: self
                .columns
                .iter()
                .map(|c| rows.iter().map(|&r| c[r]).collect())
                .collect(),
            n_rows: rows.len(),
        }
    }

    /// Per-column maximum value (0 for empty columns).
    pub fn column_max(&self, col: usize) -> u64 {
        self.columns[col].iter().copied().max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_checks_lengths() {
        let m = EncodedMatrix::new(vec![vec![1, 2, 3], vec![4, 5, 6]]);
        assert_eq!(m.n_rows, 3);
        assert_eq!(m.n_columns(), 2);
        assert_eq!(m.get(1, 1), 5);
    }

    #[test]
    #[should_panic(expected = "inconsistent")]
    fn mismatched_lengths_panic() {
        EncodedMatrix::new(vec![vec![1], vec![1, 2]]);
    }

    #[test]
    fn take_rows_subsets() {
        let m = EncodedMatrix::new(vec![vec![10, 20, 30, 40]]);
        let s = m.take_rows(&[3, 0]);
        assert_eq!(s.columns[0], vec![40, 10]);
    }

    #[test]
    fn column_max_handles_empty() {
        let m = EncodedMatrix::new(vec![vec![]]);
        assert_eq!(m.column_max(0), 0);
    }
}
