//! CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320).
//!
//! The durability layer stamps every persisted blob — `PWT2`/`PSG2` snapshot
//! files and each `PHWL1` WAL record — with this checksum so `open_dir` can
//! tell a torn write from bit-rot and quarantine the damage instead of loading
//! a silently wrong catalog. Table-driven, one table built at first use; this
//! is the ubiquitous zlib/gzip polynomial so externally generated fixtures can
//! be checked against `cksum -o 3`/`crc32` outputs.

/// 256-entry lookup table for the reflected IEEE polynomial.
fn table() -> &'static [u32; 256] {
    use std::sync::OnceLock;
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        for (i, slot) in t.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            }
            *slot = c;
        }
        t
    })
}

/// Incremental CRC-32 state.
///
/// ```
/// let mut h = ph_encoding::Crc32::new();
/// h.update(b"123456789");
/// assert_eq!(h.finish(), 0xCBF4_3926); // the IEEE check value
/// ```
#[derive(Debug, Clone)]
pub struct Crc32 {
    state: u32,
}

impl Default for Crc32 {
    fn default() -> Self {
        Self::new()
    }
}

impl Crc32 {
    /// Fresh state (equivalent to hashing zero bytes).
    pub fn new() -> Self {
        Crc32 { state: 0xFFFF_FFFF }
    }

    /// Folds `bytes` into the running checksum.
    pub fn update(&mut self, bytes: &[u8]) {
        let t = table();
        for &b in bytes {
            self.state = t[((self.state ^ b as u32) & 0xFF) as usize] ^ (self.state >> 8);
        }
    }

    /// Final checksum value.
    pub fn finish(&self) -> u32 {
        self.state ^ 0xFFFF_FFFF
    }
}

/// One-shot CRC-32 of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut h = Crc32::new();
    h.update(bytes);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard check value for the IEEE polynomial.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
        assert_eq!(crc32(b"The quick brown fox jumps over the lazy dog"), 0x414F_A339);
    }

    #[test]
    fn incremental_matches_oneshot() {
        let data = b"pairwisehist durability layer";
        let mut h = Crc32::new();
        for chunk in data.chunks(3) {
            h.update(chunk);
        }
        assert_eq!(h.finish(), crc32(data));
    }

    #[test]
    fn detects_single_bit_flips() {
        let data: Vec<u8> = (0u16..512).map(|i| (i % 251) as u8).collect();
        let base = crc32(&data);
        for byte in [0usize, 100, 511] {
            for bit in 0..8 {
                let mut corrupted = data.clone();
                corrupted[byte] ^= 1 << bit;
                assert_ne!(crc32(&corrupted), base, "flip at {byte}:{bit} undetected");
            }
        }
    }
}
