//! Append-only query-log record format (`PHQL1`).
//!
//! Following Xie et al. ("Query Log Compression for Workload Analytics"), a
//! serving process should retain a compact record of the workload it answers —
//! both for replay (regression testing, capacity planning) and for workload
//! analytics. The record codec lives here, next to the other byte formats this
//! workspace defines, so the server and any offline analyzer agree on it.
//!
//! A log file is the 5-byte [`QLOG_MAGIC`] followed by zero or more records.
//! Every integer field is an LEB128 varint ([`super::write_uvarint`]); the
//! timestamp is **delta-encoded** against the previous record (monotone
//! timestamps — the common case for an append-only log — cost one or two
//! bytes per record instead of eight):
//!
//! ```text
//! record := ts_delta_micros  varint   (first record: absolute µs timestamp)
//!           status           varint   (HTTP status the request was answered with)
//!           latency_micros   varint
//!           sql_len          varint
//!           sql_utf8         sql_len bytes
//! ```
//!
//! Decoding is total: truncated or corrupt input yields `None`, never a panic
//! — the reader must survive a log cut mid-record by a crash.

use crate::varint::{read_uvarint, write_uvarint};

/// File magic of a query log: format name + version.
pub const QLOG_MAGIC: &[u8; 5] = b"PHQL1";

/// One served query: when, how it went, how long it took, and the text itself.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QlogRecord {
    /// Microseconds since the Unix epoch at which the request was answered.
    pub ts_micros: u64,
    /// HTTP status the request was answered with.
    pub status: u16,
    /// Service latency in microseconds.
    pub latency_micros: u64,
    /// The SQL text as received.
    pub sql: String,
}

/// Appends one record to `out`. `prev_ts` is the previous record's timestamp
/// (0 before the first record); timestamps that go backwards are clamped to
/// `prev_ts` so the delta stays representable — the log is an audit trail, not
/// a clock, and a small backwards step (NTP slew) must not poison the stream.
pub fn write_qlog_record(out: &mut Vec<u8>, prev_ts: u64, rec: &QlogRecord) -> u64 {
    let ts = rec.ts_micros.max(prev_ts);
    write_uvarint(out, ts - prev_ts);
    write_uvarint(out, u64::from(rec.status));
    write_uvarint(out, rec.latency_micros);
    write_uvarint(out, rec.sql.len() as u64);
    out.extend_from_slice(rec.sql.as_bytes());
    ts
}

/// Reads one record from `data` at `*pos`, advancing `*pos` past it. Returns
/// `None` on truncated or corrupt input (`*pos` is then unspecified); callers
/// distinguish "clean end of log" by checking `*pos == data.len()` *before*
/// calling.
pub fn read_qlog_record(data: &[u8], pos: &mut usize, prev_ts: u64) -> Option<QlogRecord> {
    let delta = read_uvarint(data, pos)?;
    let status = read_uvarint(data, pos)?;
    if status > u64::from(u16::MAX) {
        return None;
    }
    let latency_micros = read_uvarint(data, pos)?;
    let len = read_uvarint(data, pos)?;
    let len = usize::try_from(len).ok()?;
    let end = pos.checked_add(len)?;
    if end > data.len() {
        return None;
    }
    let sql = std::str::from_utf8(&data[*pos..end]).ok()?.to_owned();
    *pos = end;
    Some(QlogRecord {
        ts_micros: prev_ts.checked_add(delta)?,
        status: status as u16,
        latency_micros,
        sql,
    })
}

/// Decodes a whole log body (the bytes *after* [`QLOG_MAGIC`]) into records.
/// `None` if any record is truncated or corrupt.
pub fn read_qlog_body(data: &[u8]) -> Option<Vec<QlogRecord>> {
    let mut out = Vec::new();
    let mut pos = 0usize;
    let mut prev_ts = 0u64;
    while pos < data.len() {
        let rec = read_qlog_record(data, &mut pos, prev_ts)?;
        prev_ts = rec.ts_micros;
        out.push(rec);
    }
    Some(out)
}

/// Decodes the longest clean prefix of a log body. Returns the records that
/// decoded and the byte offset they span; `offset == data.len()` means the
/// whole body was clean. Unlike [`read_qlog_body`] this never gives up
/// wholesale: a log cut mid-record by a crash — or with a corrupted tail —
/// still yields every record before the damage. It cannot fabricate records:
/// every returned record decoded from an intact byte range, and decoding stops
/// at the first record that does not.
pub fn read_qlog_prefix(data: &[u8]) -> (Vec<QlogRecord>, usize) {
    let mut out = Vec::new();
    let mut pos = 0usize;
    let mut prev_ts = 0u64;
    while pos < data.len() {
        let mark = pos;
        match read_qlog_record(data, &mut pos, prev_ts) {
            Some(rec) => {
                prev_ts = rec.ts_micros;
                out.push(rec);
            }
            None => return (out, mark),
        }
    }
    (out, pos)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn roundtrip(records: &[QlogRecord]) -> Option<Vec<QlogRecord>> {
        let mut buf = Vec::new();
        let mut prev = 0u64;
        for r in records {
            prev = write_qlog_record(&mut buf, prev, r);
        }
        read_qlog_body(&buf)
    }

    #[test]
    fn empty_log_decodes_empty() {
        assert_eq!(read_qlog_body(&[]), Some(Vec::new()));
    }

    #[test]
    fn known_records_roundtrip() {
        let records = vec![
            QlogRecord {
                ts_micros: 1_700_000_000_000_000,
                status: 200,
                latency_micros: 412,
                sql: "SELECT COUNT(x) FROM t WHERE x > 3;".into(),
            },
            QlogRecord {
                ts_micros: 1_700_000_000_000_350,
                status: 400,
                latency_micros: 9,
                sql: "SELEC oops".into(),
            },
            QlogRecord { ts_micros: 1_700_000_000_001_000, status: 503, latency_micros: 1, sql: String::new() },
        ];
        assert_eq!(roundtrip(&records).as_deref(), Some(&records[..]));
    }

    #[test]
    fn backwards_timestamp_is_clamped_not_corrupt() {
        let records = vec![
            QlogRecord { ts_micros: 1000, status: 200, latency_micros: 5, sql: "a".into() },
            QlogRecord { ts_micros: 900, status: 200, latency_micros: 5, sql: "b".into() },
        ];
        let decoded = roundtrip(&records).expect("decodes");
        assert_eq!(decoded[1].ts_micros, 1000, "clamped to the previous timestamp");
    }

    #[test]
    fn truncated_record_is_none() {
        let mut buf = Vec::new();
        write_qlog_record(
            &mut buf,
            0,
            &QlogRecord { ts_micros: 42, status: 200, latency_micros: 7, sql: "SELECT".into() },
        );
        for cut in 1..buf.len() {
            assert_eq!(read_qlog_body(&buf[..cut]), None, "cut at {cut} must fail cleanly");
        }
    }

    #[test]
    fn prefix_salvages_records_before_the_damage() {
        let mut buf = Vec::new();
        let mut prev = 0u64;
        let recs = [
            QlogRecord { ts_micros: 100, status: 200, latency_micros: 5, sql: "a".into() },
            QlogRecord { ts_micros: 200, status: 200, latency_micros: 6, sql: "bb".into() },
        ];
        for r in &recs {
            prev = write_qlog_record(&mut buf, prev, r);
        }
        let clean_len = buf.len();
        // A third record, cut mid-way: the prefix reader salvages the first two
        // at every cut point and reports the clean offset.
        write_qlog_record(
            &mut buf,
            prev,
            &QlogRecord { ts_micros: 300, status: 500, latency_micros: 7, sql: "ccc".into() },
        );
        for cut in clean_len + 1..buf.len() {
            let (salvaged, offset) = read_qlog_prefix(&buf[..cut]);
            assert_eq!(salvaged, recs, "cut at {cut}");
            assert_eq!(offset, clean_len, "cut at {cut}");
        }
        // Untruncated, the prefix reader agrees with the strict one.
        let (all, offset) = read_qlog_prefix(&buf);
        assert_eq!(all.len(), 3);
        assert_eq!(offset, buf.len());
        assert_eq!(read_qlog_body(&buf).as_deref(), Some(&all[..]));
    }

    #[test]
    fn non_utf8_sql_is_none() {
        // Hand-build a record whose sql bytes are invalid UTF-8.
        let mut buf = Vec::new();
        crate::write_uvarint(&mut buf, 1); // ts delta
        crate::write_uvarint(&mut buf, 200); // status
        crate::write_uvarint(&mut buf, 3); // latency
        crate::write_uvarint(&mut buf, 2); // sql_len
        buf.extend_from_slice(&[0xFF, 0xFE]);
        assert_eq!(read_qlog_body(&buf), None);
    }

    proptest! {
        /// Any record list round-trips (timestamps normalized to the monotone
        /// clamp the writer applies).
        #[test]
        fn prop_roundtrip(
            seeds in prop::collection::vec((any::<u32>(), any::<u16>(), any::<u32>(), 0usize..40), 0..8)
        ) {
            let mut records: Vec<QlogRecord> = seeds
                .into_iter()
                .map(|(ts, status, lat, n)| QlogRecord {
                    ts_micros: u64::from(ts),
                    status,
                    latency_micros: u64::from(lat),
                    // Includes multi-byte UTF-8 and quotes on purpose.
                    sql: "é\"☃x".chars().cycle().take(n).collect(),
                })
                .collect();
            // Normalize to the writer's monotone clamp before comparing.
            let mut prev = 0u64;
            for r in &mut records {
                r.ts_micros = r.ts_micros.max(prev);
                prev = r.ts_micros;
            }
            let decoded = roundtrip(&records);
            prop_assert_eq!(decoded.as_deref(), Some(&records[..]));
        }

        /// Decoding arbitrary bytes never panics.
        #[test]
        fn prop_decode_total(bytes in prop::collection::vec(any::<u8>(), 0..200)) {
            let _ = read_qlog_body(&bytes);
        }
    }
}
