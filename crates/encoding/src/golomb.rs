//! Golomb coding.
//!
//! §4.3 stores sparse bin-count matrices as Golomb-coded deltas between non-zero
//! indices: "we store the delta between non-zero indices and encode using Golomb
//! coding, which is optimal for geometrically distributed data". This module provides
//! the general (non-power-of-two `m`) Golomb code with the truncated-binary remainder,
//! plus the classical optimal-parameter rule.

use crate::bitio::{BitReader, BitWriter};

/// Chooses the Golomb parameter `m` for a geometric distribution with success
/// probability `p` (the classical rule `m = ⌈-1 / log2(1-p)⌉`).
///
/// For sparse count matrices, `p` is the matrix density (fraction of non-zero cells),
/// which makes the index gaps geometric with that parameter.
pub fn optimal_golomb_m(p: f64) -> u64 {
    if p <= 0.0 {
        return u64::MAX; // degenerate: no events, any m works; caller guards
    }
    if p >= 1.0 {
        return 1;
    }
    let m = (-1.0 / (1.0 - p).log2()).ceil() as u64;
    m.max(1)
}

/// Encodes `v` with Golomb parameter `m` (quotient unary, remainder truncated-binary).
///
/// # Panics
/// Panics if `m == 0`.
pub fn golomb_encode(w: &mut BitWriter, v: u64, m: u64) {
    assert!(m > 0, "Golomb parameter must be positive");
    let q = v / m;
    let r = v % m;
    w.write_unary(q);
    write_truncated_binary(w, r, m);
}

/// Decodes one Golomb-coded value with parameter `m`; `None` on truncated input.
pub fn golomb_decode(r: &mut BitReader<'_>, m: u64) -> Option<u64> {
    assert!(m > 0, "Golomb parameter must be positive");
    let q = r.read_unary()?;
    let rem = read_truncated_binary(r, m)?;
    Some(q * m + rem)
}

/// Exact bit length of the Golomb code for `v` with parameter `m`, used by the storage
/// encoder to choose dense vs sparse representation without encoding twice.
pub fn golomb_len_bits(v: u64, m: u64) -> u64 {
    assert!(m > 0, "Golomb parameter must be positive");
    let q = v / m;
    let r = v % m;
    q + 1 + truncated_binary_len(r, m) as u64
}

/// Truncated binary: values below `2^b − m` use `b−1` bits, the rest use `b` bits,
/// where `b = ⌈log2 m⌉`.
fn write_truncated_binary(w: &mut BitWriter, r: u64, m: u64) {
    if m == 1 {
        return; // remainder always 0, zero bits
    }
    let b = 64 - (m - 1).leading_zeros(); // ceil(log2 m)
    let cutoff = (1u64 << b) - m;
    if r < cutoff {
        w.write_bits(r, b - 1);
    } else {
        w.write_bits(r + cutoff, b);
    }
}

fn read_truncated_binary(reader: &mut BitReader<'_>, m: u64) -> Option<u64> {
    if m == 1 {
        return Some(0);
    }
    let b = 64 - (m - 1).leading_zeros();
    let cutoff = (1u64 << b) - m;
    let hi = reader.read_bits(b - 1)?;
    if hi < cutoff {
        Some(hi)
    } else {
        let low = reader.read_bit()? as u64;
        Some(((hi << 1) | low) - cutoff)
    }
}

fn truncated_binary_len(r: u64, m: u64) -> u32 {
    if m == 1 {
        return 0;
    }
    let b = 64 - (m - 1).leading_zeros();
    let cutoff = (1u64 << b) - m;
    if r < cutoff {
        b - 1
    } else {
        b
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn roundtrip_small_values_all_m() {
        for m in 1..=17u64 {
            let mut w = BitWriter::new();
            for v in 0..100u64 {
                golomb_encode(&mut w, v, m);
            }
            let bytes = w.finish();
            let mut r = BitReader::new(&bytes);
            for v in 0..100u64 {
                assert_eq!(golomb_decode(&mut r, m), Some(v), "m={m} v={v}");
            }
        }
    }

    #[test]
    fn len_matches_encoding() {
        for m in [1u64, 2, 3, 5, 8, 13] {
            for v in [0u64, 1, 2, 7, 100, 1000] {
                let mut w = BitWriter::new();
                golomb_encode(&mut w, v, m);
                assert_eq!(w.bit_len(), golomb_len_bits(v, m), "m={m} v={v}");
            }
        }
    }

    #[test]
    fn rice_m1_is_unary() {
        // m = 1 degenerates to pure unary.
        let mut w = BitWriter::new();
        golomb_encode(&mut w, 5, 1);
        assert_eq!(w.bit_len(), 6);
    }

    #[test]
    fn optimal_m_reasonable() {
        // Density 0.5 -> m = 1; very sparse -> large m.
        assert_eq!(optimal_golomb_m(0.5), 1);
        assert!(optimal_golomb_m(0.01) >= 64);
        assert_eq!(optimal_golomb_m(1.0), 1);
    }

    proptest! {
        #[test]
        fn prop_roundtrip(vs in proptest::collection::vec(0u64..1_000_000, 1..200), m in 1u64..500) {
            let mut w = BitWriter::new();
            for &v in &vs {
                golomb_encode(&mut w, v, m);
            }
            let bytes = w.finish();
            let mut r = BitReader::new(&bytes);
            for &v in &vs {
                prop_assert_eq!(golomb_decode(&mut r, m), Some(v));
            }
        }

        #[test]
        fn prop_len_is_exact(v in 0u64..10_000_000, m in 1u64..1000) {
            let mut w = BitWriter::new();
            golomb_encode(&mut w, v, m);
            prop_assert_eq!(w.bit_len(), golomb_len_bits(v, m));
        }
    }
}
