//! Bit-level encoding substrate for the PairwiseHist AQP framework.
//!
//! Two consumers drive the design:
//!
//! * **GreedyGD** (`ph-gd`) packs bases and deviations at arbitrary bit widths;
//! * **PairwiseHist storage** (§4.3, Fig 6) packs bin counts at `ℓ_h` bits each and
//!   Golomb-codes the index gaps of sparse count matrices — Golomb coding is optimal
//!   for the geometrically distributed gaps the paper expects.
//!
//! All streams are MSB-first within each byte, so encoded sizes match the paper's
//! `⌈bits / 8⌉` accounting exactly.

// Debug/scaffolding egress is banned in library code: a stray println corrupts
// bin protocols (ph-serve speaks HTTP on stdout-adjacent fds) and dbg!/todo!
// are development leftovers. ph-lint R2 bans the panicking macros; these
// clippy denies catch the printing/scaffolding ones.
#![deny(clippy::dbg_macro, clippy::todo, clippy::unimplemented)]
#![deny(clippy::print_stdout, clippy::print_stderr)]
mod bitio;
mod crc32;
mod golomb;
mod qlog;
mod varint;

pub use bitio::{BitReader, BitWriter};
pub use crc32::{crc32, Crc32};
pub use golomb::{golomb_decode, golomb_encode, golomb_len_bits, optimal_golomb_m};
pub use qlog::{
    read_qlog_body, read_qlog_prefix, read_qlog_record, write_qlog_record, QlogRecord, QLOG_MAGIC,
};
pub use varint::{read_ivarint, read_uvarint, write_ivarint, write_uvarint};

/// Number of bits needed to represent `v` (0 needs 1 bit).
#[inline]
pub fn bits_for(v: u64) -> u32 {
    (64 - v.leading_zeros()).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bits_for_edges() {
        assert_eq!(bits_for(0), 1);
        assert_eq!(bits_for(1), 1);
        assert_eq!(bits_for(2), 2);
        assert_eq!(bits_for(255), 8);
        assert_eq!(bits_for(256), 9);
        assert_eq!(bits_for(u64::MAX), 64);
    }
}
