//! MSB-first bit reader and writer.

/// Appends bits MSB-first into a growable byte buffer.
#[derive(Debug, Default)]
pub struct BitWriter {
    buf: Vec<u8>,
    /// Bits staged in `cur`, counted from the MSB.
    cur: u8,
    cur_bits: u32,
    total_bits: u64,
}

impl BitWriter {
    /// Empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Writes the low `n` bits of `v`, most significant first. `n` may be 0..=64.
    pub fn write_bits(&mut self, v: u64, n: u32) {
        assert!(n <= 64, "cannot write more than 64 bits at once (asked {n})");
        if n == 0 {
            return;
        }
        debug_assert!(n == 64 || v < (1u64 << n), "value {v} does not fit in {n} bits");
        for i in (0..n).rev() {
            self.write_bit((v >> i) & 1 == 1);
        }
    }

    /// Writes a single bit.
    #[inline]
    pub fn write_bit(&mut self, bit: bool) {
        self.cur = (self.cur << 1) | bit as u8;
        self.cur_bits += 1;
        self.total_bits += 1;
        if self.cur_bits == 8 {
            self.buf.push(self.cur);
            self.cur = 0;
            self.cur_bits = 0;
        }
    }

    /// A unary code: `q` one-bits followed by a zero bit.
    pub fn write_unary(&mut self, q: u64) {
        for _ in 0..q {
            self.write_bit(true);
        }
        self.write_bit(false);
    }

    /// Total bits written so far.
    pub fn bit_len(&self) -> u64 {
        self.total_bits
    }

    /// Flushes (zero-padding the final partial byte) and returns the bytes.
    pub fn finish(mut self) -> Vec<u8> {
        if self.cur_bits > 0 {
            self.buf.push(self.cur << (8 - self.cur_bits));
        }
        self.buf
    }
}

/// Reads bits MSB-first from a byte slice.
#[derive(Debug, Clone)]
pub struct BitReader<'a> {
    data: &'a [u8],
    pos: u64,
}

impl<'a> BitReader<'a> {
    /// Reader over `data` starting at bit 0.
    pub fn new(data: &'a [u8]) -> Self {
        Self { data, pos: 0 }
    }

    /// Current bit position.
    pub fn bit_pos(&self) -> u64 {
        self.pos
    }

    /// Remaining bits.
    pub fn remaining_bits(&self) -> u64 {
        (self.data.len() as u64 * 8).saturating_sub(self.pos)
    }

    /// Reads one bit; `None` past the end.
    #[inline]
    pub fn read_bit(&mut self) -> Option<bool> {
        let byte = (self.pos / 8) as usize;
        if byte >= self.data.len() {
            return None;
        }
        let bit = (self.data[byte] >> (7 - (self.pos % 8))) & 1 == 1;
        self.pos += 1;
        Some(bit)
    }

    /// Reads `n` bits MSB-first into the low bits of a `u64`; `None` if fewer remain.
    pub fn read_bits(&mut self, n: u32) -> Option<u64> {
        assert!(n <= 64, "cannot read more than 64 bits at once (asked {n})");
        if self.remaining_bits() < n as u64 {
            return None;
        }
        let mut v = 0u64;
        for _ in 0..n {
            v = (v << 1) | self.read_bit()? as u64;
        }
        Some(v)
    }

    /// Reads a unary code (count of leading one-bits before the terminating zero).
    pub fn read_unary(&mut self) -> Option<u64> {
        let mut q = 0u64;
        loop {
            match self.read_bit()? {
                true => q += 1,
                false => return Some(q),
            }
        }
    }

    /// Skips to the next byte boundary.
    pub fn align_byte(&mut self) {
        self.pos = self.pos.div_ceil(8) * 8;
    }

    /// Seeks to an absolute bit position (may be past the end; subsequent reads then
    /// return `None`). Enables random access into fixed-stride packed layouts.
    pub fn seek(&mut self, bit_pos: u64) {
        self.pos = bit_pos;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_mixed_widths() {
        let mut w = BitWriter::new();
        w.write_bits(0b101, 3);
        w.write_bits(0xFFFF, 16);
        w.write_bits(0, 1);
        w.write_bits(123_456_789, 27);
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read_bits(3), Some(0b101));
        assert_eq!(r.read_bits(16), Some(0xFFFF));
        assert_eq!(r.read_bits(1), Some(0));
        assert_eq!(r.read_bits(27), Some(123_456_789));
    }

    #[test]
    fn unary_roundtrip() {
        let mut w = BitWriter::new();
        for q in [0u64, 1, 7, 20] {
            w.write_unary(q);
        }
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        for q in [0u64, 1, 7, 20] {
            assert_eq!(r.read_unary(), Some(q));
        }
    }

    #[test]
    fn sixty_four_bit_write() {
        let mut w = BitWriter::new();
        w.write_bits(u64::MAX, 64);
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read_bits(64), Some(u64::MAX));
    }

    #[test]
    fn read_past_end_is_none() {
        let mut w = BitWriter::new();
        w.write_bits(0b11, 2);
        let bytes = w.finish(); // padded to 1 byte
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read_bits(8), Some(0b1100_0000));
        assert_eq!(r.read_bit(), None);
        assert_eq!(r.read_bits(4), None);
    }

    #[test]
    fn bit_len_counts_before_padding() {
        let mut w = BitWriter::new();
        w.write_bits(1, 5);
        assert_eq!(w.bit_len(), 5);
        let bytes = w.finish();
        assert_eq!(bytes.len(), 1);
    }

    #[test]
    fn align_byte_skips() {
        let mut w = BitWriter::new();
        w.write_bits(0b1, 1);
        w.write_bits(0, 7);
        w.write_bits(0xAB, 8);
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        r.read_bit();
        r.align_byte();
        assert_eq!(r.read_bits(8), Some(0xAB));
    }
}
