//! LEB128-style unsigned varints for header fields of variable magnitude.

/// Appends `v` as a little-endian base-128 varint.
pub fn write_uvarint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Appends `v` as a zigzag-mapped varint: small magnitudes of either sign
/// encode in one byte, which is what delta streams (trace span starts, qlog
/// timestamps) need.
pub fn write_ivarint(out: &mut Vec<u8>, v: i64) {
    write_uvarint(out, zigzag(v));
}

/// Reads a zigzag varint written by [`write_ivarint`]; `None` on truncated or
/// over-long input.
pub fn read_ivarint(data: &[u8], pos: &mut usize) -> Option<i64> {
    read_uvarint(data, pos).map(unzigzag)
}

/// Maps signed to unsigned so small magnitudes stay small: 0, -1, 1, -2 → 0, 1, 2, 3.
#[inline]
fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Inverse of [`zigzag`].
#[inline]
fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// Reads a varint from `data` starting at `*pos`, advancing `*pos`; `None` on
/// truncated or over-long (>10 byte) input.
pub fn read_uvarint(data: &[u8], pos: &mut usize) -> Option<u64> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let byte = *data.get(*pos)?;
        *pos += 1;
        if shift == 63 && byte > 1 {
            return None; // overflow
        }
        v |= u64::from(byte & 0x7F) << shift;
        if byte & 0x80 == 0 {
            return Some(v);
        }
        shift += 7;
        if shift >= 64 {
            return None;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn roundtrip_known() {
        for v in [0u64, 1, 127, 128, 300, 16_383, 16_384, u64::MAX] {
            let mut buf = Vec::new();
            write_uvarint(&mut buf, v);
            let mut pos = 0;
            assert_eq!(read_uvarint(&buf, &mut pos), Some(v));
            assert_eq!(pos, buf.len());
        }
    }

    #[test]
    fn truncated_is_none() {
        let mut buf = Vec::new();
        write_uvarint(&mut buf, 1_000_000);
        buf.pop();
        let mut pos = 0;
        assert_eq!(read_uvarint(&buf, &mut pos), None);
    }

    #[test]
    fn ivarint_small_magnitudes_are_one_byte() {
        for v in [0i64, 1, -1, 63, -63] {
            let mut buf = Vec::new();
            write_ivarint(&mut buf, v);
            assert_eq!(buf.len(), 1, "v={v}");
            let mut pos = 0;
            assert_eq!(read_ivarint(&buf, &mut pos), Some(v));
        }
    }

    proptest! {
        #[test]
        fn prop_ivarint_roundtrip(v in any::<i64>()) {
            let mut buf = Vec::new();
            write_ivarint(&mut buf, v);
            prop_assert!(buf.len() <= 10);
            let mut pos = 0;
            prop_assert_eq!(read_ivarint(&buf, &mut pos), Some(v));
        }

        #[test]
        fn prop_roundtrip(v in any::<u64>()) {
            let mut buf = Vec::new();
            write_uvarint(&mut buf, v);
            prop_assert!(buf.len() <= 10);
            let mut pos = 0;
            prop_assert_eq!(read_uvarint(&buf, &mut pos), Some(v));
        }
    }
}
