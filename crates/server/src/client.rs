//! Blocking HTTP client for a `ph_server` instance: one keep-alive connection,
//! typed answers, and structured errors mirroring the server's JSON bodies.
//!
//! [`Client::query`] returns the same [`AqpAnswer`] type a local
//! [`ph_core::Session::sql`] call does — and because the wire format is
//! float-lossless, the values are **bit-identical** to what the server
//! computed. Code written against a local session ports to the networked
//! deployment by swapping the call site.

use std::collections::BTreeMap;
use std::net::TcpStream;
use std::time::Duration;

use ph_core::AqpAnswer;

use crate::http::{HttpConn, HttpError};
use crate::json::{obj, Json};
use crate::wire::answer_from_json;

/// Largest response body the client accepts.
const MAX_RESPONSE_BYTES: usize = 64 * 1024 * 1024;

/// Client-side failure modes.
#[derive(Debug, Clone, PartialEq)]
pub enum ClientError {
    /// The server answered with an error body (4xx/5xx).
    Server {
        /// HTTP status.
        status: u16,
        /// The error `kind` slug (`parse`, `unknown_table`, `overload`, …).
        kind: String,
        /// Human-readable message.
        message: String,
        /// Byte offset into the SQL text, when the server knows it.
        position: Option<usize>,
    },
    /// Socket-level failure (connect, read, write, timeout).
    Transport(String),
    /// The response does not parse as this protocol.
    Protocol(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Server { status, kind, message, position } => {
                write!(f, "server error {status} ({kind}): {message}")?;
                if let Some(at) = position {
                    write!(f, " at byte {at}")?;
                }
                Ok(())
            }
            ClientError::Transport(m) => write!(f, "transport error: {m}"),
            ClientError::Protocol(m) => write!(f, "protocol error: {m}"),
        }
    }
}

impl std::error::Error for ClientError {}

/// Lets callers `?` client calls through code that speaks [`PhError`](ph_types::PhError) — e.g.
/// replay/verification tools comparing a served answer against a local
/// session. Server-reported errors keep their status and kind in the message.
impl From<ClientError> for ph_types::PhError {
    fn from(e: ClientError) -> Self {
        match &e {
            ClientError::Server { .. } => ph_types::PhError::InvalidQuery(e.to_string()),
            ClientError::Transport(_) => ph_types::PhError::Io(e.to_string()),
            ClientError::Protocol(_) => ph_types::PhError::Corrupt(e.to_string()),
        }
    }
}

/// How transient failures are retried: up to `attempts` tries in total, with
/// a jittered exponential delay between them. Applies to both the TCP connect
/// and (for idempotent requests) the whole exchange, so a server that is
/// restarting — or a listener that flaps — is ridden out instead of surfaced
/// as an instant error.
///
/// The delay before retry `k` (1-based) is drawn uniformly from
/// `[d/2, d]` where `d = min(base_delay · 2^(k-1), max_delay)`: exponential
/// growth keeps a dead server cheap to wait on, the jitter keeps a thundering
/// herd of clients from reconnecting in lockstep.
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Total tries (first attempt included). `0` behaves as `1`.
    pub attempts: u32,
    /// Delay scale of the first retry.
    pub base_delay: Duration,
    /// Upper bound any single delay is clamped to.
    pub max_delay: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            attempts: 4,
            base_delay: Duration::from_millis(25),
            max_delay: Duration::from_secs(2),
        }
    }
}

/// A connection to one server. Reconnects transparently if the kept-alive
/// socket has gone away (server restart, idle timeout), retrying with the
/// client's [`RetryPolicy`].
pub struct Client {
    addr: String,
    timeout: Duration,
    retry: RetryPolicy,
    /// xorshift64* state for retry jitter — seeded from the address so the
    /// client needs no RNG dependency, never zero (xorshift's absorbing state).
    jitter_state: u64,
    conn: Option<HttpConn<TcpStream>>,
}

impl Client {
    /// A client for `addr` (`"127.0.0.1:7871"`). Connection is lazy — the
    /// first request opens it.
    pub fn new(addr: impl Into<String>) -> Self {
        let addr = addr.into();
        let jitter_state = ph_types::fnv1a(addr.as_bytes()) | 1;
        Self {
            addr,
            timeout: Duration::from_secs(30),
            retry: RetryPolicy::default(),
            jitter_state,
            conn: None,
        }
    }

    /// Sets the per-read socket timeout (default 30 s).
    pub fn with_timeout(mut self, timeout: Duration) -> Self {
        self.timeout = timeout;
        self
    }

    /// Sets the retry budget and backoff shape (default: 4 attempts,
    /// 25 ms base, 2 s cap).
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    fn next_jitter(&mut self) -> u64 {
        let mut x = self.jitter_state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.jitter_state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// The jittered delay before 1-based retry `k`.
    fn backoff_delay(&mut self, k: u32) -> Duration {
        let exp = self.retry.base_delay.saturating_mul(1u32 << (k - 1).min(16));
        let d = exp.min(self.retry.max_delay).as_nanos().max(2) as u64;
        Duration::from_nanos(d / 2 + self.next_jitter() % (d / 2 + 1))
    }

    /// Opens the kept-alive connection if it is down, retrying refused/failed
    /// connects under the retry policy.
    fn connect(&mut self) -> Result<&mut HttpConn<TcpStream>, ClientError> {
        if self.conn.is_none() {
            let attempts = self.retry.attempts.max(1);
            let mut last = None;
            for k in 0..attempts {
                if k > 0 {
                    let delay = self.backoff_delay(k);
                    std::thread::sleep(delay);
                }
                match TcpStream::connect(&self.addr) {
                    Ok(stream) => {
                        let conn = HttpConn::new(stream);
                        conn.configure(self.timeout, self.timeout)
                            .map_err(|e| ClientError::Transport(e.to_string()))?;
                        self.conn = Some(conn);
                        last = None;
                        break;
                    }
                    Err(e) => {
                        last = Some(ClientError::Transport(format!(
                            "connect {}: {e} (attempt {}/{attempts})",
                            self.addr,
                            k + 1
                        )));
                    }
                }
            }
            if let Some(err) = last {
                return Err(err);
            }
        }
        // The retry loop either stored a connection or returned its last error;
        // answer the impossible leftover case gracefully instead of panicking.
        self.conn.as_mut().ok_or_else(|| {
            ClientError::Transport(format!("connect {}: no connection after retries", self.addr))
        })
    }

    /// One request/response exchange. Idempotent requests (queries, reads) are
    /// retried on a dead kept-alive socket — up to the retry budget, with
    /// backoff after the first immediate retry; non-idempotent ones
    /// (`/ingest` — the server may have applied the batch before the
    /// connection died) surface the transport error instead, so a batch can
    /// never be applied twice behind the caller's back.
    fn exchange(
        &mut self,
        method: &str,
        target: &str,
        content_type: &str,
        body: &[u8],
        idempotent: bool,
    ) -> Result<(u16, Json), ClientError> {
        let (status, text) = self.exchange_text(method, target, content_type, body, idempotent)?;
        let doc = Json::parse(&text).map_err(|e| {
            ClientError::Protocol(format!("response is not JSON: {e} in {text:?}"))
        })?;
        Ok((status, doc))
    }

    /// [`Client::exchange`] without the JSON parse — for endpoints that speak
    /// plain text (`/metrics`).
    fn exchange_text(
        &mut self,
        method: &str,
        target: &str,
        content_type: &str,
        body: &[u8],
        idempotent: bool,
    ) -> Result<(u16, String), ClientError> {
        let mut first_error = None;
        let attempts = if idempotent { self.retry.attempts.max(2) } else { 1 };
        for k in 0..attempts {
            if k > 1 {
                // First re-try is immediate (a stale keep-alive socket is the
                // overwhelmingly common case); later ones back off.
                let delay = self.backoff_delay(k - 1);
                std::thread::sleep(delay);
            }
            let conn = self.connect()?;
            let sent = conn.write_request(method, target, content_type, body);
            let result = sent.and_then(|_| conn.read_response(MAX_RESPONSE_BYTES));
            match result {
                Ok((status, _headers, body)) => {
                    let text = String::from_utf8(body)
                        .map_err(|_| ClientError::Protocol("response body is not UTF-8".into()))?;
                    return Ok((status, text));
                }
                Err(HttpError::Io(m) | HttpError::Malformed(m)) => {
                    // Drop the (possibly half-dead) connection and retry once.
                    self.conn = None;
                    first_error.get_or_insert(ClientError::Transport(m));
                }
                Err(HttpError::Incomplete) => {
                    self.conn = None;
                    first_error
                        .get_or_insert(ClientError::Transport("connection closed".into()));
                }
                Err(HttpError::TooLarge(m)) => {
                    self.conn = None;
                    return Err(ClientError::Protocol(m));
                }
            }
        }
        Err(first_error.unwrap_or_else(|| ClientError::Transport("request failed".into())))
    }

    /// Raises the server's structured error body as [`ClientError::Server`].
    fn ok_or_server_error(status: u16, doc: Json) -> Result<Json, ClientError> {
        if (200..300).contains(&status) {
            return Ok(doc);
        }
        let err = doc.get("error");
        Err(ClientError::Server {
            status,
            kind: err
                .and_then(|e| e.get("kind"))
                .and_then(Json::as_str)
                .unwrap_or("unknown")
                .to_string(),
            message: err
                .and_then(|e| e.get("message"))
                .and_then(Json::as_str)
                .unwrap_or("<no message>")
                .to_string(),
            position: err
                .and_then(|e| e.get("position"))
                .and_then(Json::as_f64)
                .map(|x| x as usize),
        })
    }

    /// Executes one SQL query, returning the server's estimate — the same
    /// `AqpAnswer` a local `Session::sql` produces, bit-identical.
    pub fn query(&mut self, sql: &str) -> Result<AqpAnswer, ClientError> {
        let body = obj(vec![("sql", Json::Str(sql.to_string()))]).to_string();
        let (status, doc) =
            self.exchange("POST", "/query", "application/json", body.as_bytes(), true)?;
        let doc = Self::ok_or_server_error(status, doc)?;
        answer_from_json(&doc).map_err(|e| ClientError::Protocol(e.to_string()))
    }

    /// Ingests JSON rows (`[{"col": value, …}, …]`) into `table`. Returns the
    /// server's ingest report as JSON.
    pub fn ingest_rows(&mut self, table: &str, rows: Vec<Json>) -> Result<Json, ClientError> {
        let body = obj(vec![
            ("table", Json::Str(table.to_string())),
            ("rows", Json::Arr(rows)),
        ])
        .to_string();
        let (status, doc) =
            self.exchange("POST", "/ingest", "application/json", body.as_bytes(), false)?;
        Self::ok_or_server_error(status, doc)
    }

    /// Ingests a CSV body (header line + rows) into `table`.
    pub fn ingest_csv(&mut self, table: &str, csv: &str) -> Result<Json, ClientError> {
        let target = format!("/ingest?table={}", percent_encode(table));
        let (status, doc) = self.exchange("POST", &target, "text/csv", csv.as_bytes(), false)?;
        Self::ok_or_server_error(status, doc)
    }

    /// `GET /healthz`.
    pub fn healthz(&mut self) -> Result<Json, ClientError> {
        let (status, doc) = self.exchange("GET", "/healthz", "application/json", b"", true)?;
        Self::ok_or_server_error(status, doc)
    }

    /// `GET /stats` — the full session + server metrics document.
    pub fn stats(&mut self) -> Result<Json, ClientError> {
        let (status, doc) = self.exchange("GET", "/stats", "application/json", b"", true)?;
        Self::ok_or_server_error(status, doc)
    }

    /// `GET /metrics` — the Prometheus text exposition body (what a scraper
    /// sees: `# HELP`/`# TYPE` headers and one sample line per series).
    pub fn metrics(&mut self) -> Result<String, ClientError> {
        let (status, text) = self.exchange_text("GET", "/metrics", "text/plain", b"", true)?;
        if status == 200 {
            Ok(text)
        } else {
            Err(ClientError::Protocol(format!("/metrics answered {status}: {text}")))
        }
    }

    /// `GET /debug/slow` — the most recent over-threshold queries with their
    /// stage breakdowns (SQL fingerprints, never raw text).
    pub fn debug_slow(&mut self) -> Result<Json, ClientError> {
        let (status, doc) = self.exchange("GET", "/debug/slow", "application/json", b"", true)?;
        Self::ok_or_server_error(status, doc)
    }

    /// `GET /tables` — registered table names with their serving state.
    pub fn tables(&mut self) -> Result<Vec<String>, ClientError> {
        let (status, doc) = self.exchange("GET", "/tables", "application/json", b"", true)?;
        let doc = Self::ok_or_server_error(status, doc)?;
        doc.get("tables")
            .and_then(Json::as_arr)
            .map(|tables| {
                tables
                    .iter()
                    .filter_map(|t| t.get("name").and_then(Json::as_str).map(str::to_string))
                    .collect()
            })
            .ok_or_else(|| ClientError::Protocol("missing \"tables\" array".into()))
    }

    /// Executes a batch of queries **pipelined** on the keep-alive
    /// connection: every request is written back-to-back before the first
    /// response is read, so the batch costs one round-trip plus server time
    /// instead of one round-trip *per query*. The server answers in request
    /// order; element `i` of the result is query `i`'s answer or its
    /// structured server error.
    ///
    /// A transport failure mid-batch fails the whole call (the connection is
    /// dropped): with responses already possibly in flight there is no safe
    /// per-query retry, so unlike [`Client::query`] this does not retry.
    pub fn query_pipelined(
        &mut self,
        sqls: &[&str],
    ) -> Result<Vec<Result<AqpAnswer, ClientError>>, ClientError> {
        if sqls.is_empty() {
            return Ok(Vec::new());
        }
        let outcome = (|| {
            let conn = self.connect()?;
            for sql in sqls {
                let body = obj(vec![("sql", Json::Str(sql.to_string()))]).to_string();
                conn.write_request("POST", "/query", "application/json", body.as_bytes())
                    .map_err(|e| ClientError::Transport(format!("pipelined write: {e}")))?;
            }
            let mut answers = Vec::with_capacity(sqls.len());
            for _ in sqls {
                let (status, _headers, body) = conn
                    .read_response(MAX_RESPONSE_BYTES)
                    .map_err(|e| ClientError::Transport(format!("pipelined read: {e}")))?;
                let text = String::from_utf8(body)
                    .map_err(|_| ClientError::Protocol("response body is not UTF-8".into()))?;
                let doc = Json::parse(&text).map_err(|e| {
                    ClientError::Protocol(format!("response is not JSON: {e} in {text:?}"))
                })?;
                answers.push(Self::ok_or_server_error(status, doc).and_then(|doc| {
                    answer_from_json(&doc).map_err(|e| ClientError::Protocol(e.to_string()))
                }));
            }
            Ok(answers)
        })();
        if outcome.is_err() {
            // The stream position is unknowable after a mid-batch failure.
            self.conn = None;
        }
        outcome
    }

    /// Grouped convenience: the scalar estimate of one query, erroring on
    /// grouped answers and SQL NULL.
    pub fn query_scalar(&mut self, sql: &str) -> Result<ph_core::Estimate, ClientError> {
        match self.query(sql)? {
            AqpAnswer::Scalar(Some(e)) => Ok(e),
            AqpAnswer::Scalar(None) => {
                Err(ClientError::Protocol("query returned SQL NULL".into()))
            }
            AqpAnswer::Groups(_) => {
                Err(ClientError::Protocol("query returned groups, not a scalar".into()))
            }
        }
    }

    /// Grouped convenience: the per-group estimates of one query.
    pub fn query_groups(
        &mut self,
        sql: &str,
    ) -> Result<BTreeMap<String, ph_core::Estimate>, ClientError> {
        match self.query(sql)? {
            AqpAnswer::Groups(g) => Ok(g),
            AqpAnswer::Scalar(_) => {
                Err(ClientError::Protocol("query returned a scalar, not groups".into()))
            }
        }
    }
}

/// Percent-encodes a query-string value (RFC 3986 unreserved set passes).
fn percent_encode(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for b in s.bytes() {
        match b {
            b'A'..=b'Z' | b'a'..=b'z' | b'0'..=b'9' | b'-' | b'_' | b'.' | b'~' => {
                out.push(b as char)
            }
            b => out.push_str(&format!("%{b:02X}")),
        }
    }
    out
}
