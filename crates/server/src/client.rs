//! Blocking HTTP client for a `ph_server` instance: one keep-alive connection,
//! typed answers, and structured errors mirroring the server's JSON bodies.
//!
//! [`Client::query`] returns the same [`AqpAnswer`] type a local
//! [`ph_core::Session::sql`] call does — and because the wire format is
//! float-lossless, the values are **bit-identical** to what the server
//! computed. Code written against a local session ports to the networked
//! deployment by swapping the call site.

use std::collections::BTreeMap;
use std::net::TcpStream;
use std::time::Duration;

use ph_core::AqpAnswer;

use crate::http::{HttpConn, HttpError};
use crate::json::{obj, Json};
use crate::wire::answer_from_json;

/// Largest response body the client accepts.
const MAX_RESPONSE_BYTES: usize = 64 * 1024 * 1024;

/// Client-side failure modes.
#[derive(Debug, Clone, PartialEq)]
pub enum ClientError {
    /// The server answered with an error body (4xx/5xx).
    Server {
        /// HTTP status.
        status: u16,
        /// The error `kind` slug (`parse`, `unknown_table`, `overload`, …).
        kind: String,
        /// Human-readable message.
        message: String,
        /// Byte offset into the SQL text, when the server knows it.
        position: Option<usize>,
    },
    /// Socket-level failure (connect, read, write, timeout).
    Transport(String),
    /// The response does not parse as this protocol.
    Protocol(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Server { status, kind, message, position } => {
                write!(f, "server error {status} ({kind}): {message}")?;
                if let Some(at) = position {
                    write!(f, " at byte {at}")?;
                }
                Ok(())
            }
            ClientError::Transport(m) => write!(f, "transport error: {m}"),
            ClientError::Protocol(m) => write!(f, "protocol error: {m}"),
        }
    }
}

impl std::error::Error for ClientError {}

/// A connection to one server. Reconnects transparently once per request if
/// the kept-alive socket has gone away (server restart, idle timeout).
pub struct Client {
    addr: String,
    timeout: Duration,
    conn: Option<HttpConn<TcpStream>>,
}

impl Client {
    /// A client for `addr` (`"127.0.0.1:7871"`). Connection is lazy — the
    /// first request opens it.
    pub fn new(addr: impl Into<String>) -> Self {
        Self { addr: addr.into(), timeout: Duration::from_secs(30), conn: None }
    }

    /// Sets the per-read socket timeout (default 30 s).
    pub fn with_timeout(mut self, timeout: Duration) -> Self {
        self.timeout = timeout;
        self
    }

    fn connect(&mut self) -> Result<&mut HttpConn<TcpStream>, ClientError> {
        if self.conn.is_none() {
            let stream = TcpStream::connect(&self.addr)
                .map_err(|e| ClientError::Transport(format!("connect {}: {e}", self.addr)))?;
            let conn = HttpConn::new(stream);
            conn.configure(self.timeout)
                .map_err(|e| ClientError::Transport(e.to_string()))?;
            self.conn = Some(conn);
        }
        Ok(self.conn.as_mut().expect("just connected"))
    }

    /// One request/response exchange. Idempotent requests (queries, reads) are
    /// retried once on a dead kept-alive socket; non-idempotent ones
    /// (`/ingest` — the server may have applied the batch before the
    /// connection died) surface the transport error instead, so a batch can
    /// never be applied twice behind the caller's back.
    fn exchange(
        &mut self,
        method: &str,
        target: &str,
        content_type: &str,
        body: &[u8],
        idempotent: bool,
    ) -> Result<(u16, Json), ClientError> {
        let mut first_error = None;
        let attempts = if idempotent { 2 } else { 1 };
        for _ in 0..attempts {
            let conn = self.connect()?;
            let sent = conn.write_request(method, target, content_type, body);
            let result = sent.and_then(|_| conn.read_response(MAX_RESPONSE_BYTES));
            match result {
                Ok((status, _headers, body)) => {
                    let text = String::from_utf8(body)
                        .map_err(|_| ClientError::Protocol("response body is not UTF-8".into()))?;
                    let doc = Json::parse(&text).map_err(|e| {
                        ClientError::Protocol(format!("response is not JSON: {e} in {text:?}"))
                    })?;
                    return Ok((status, doc));
                }
                Err(HttpError::Io(m) | HttpError::Malformed(m)) => {
                    // Drop the (possibly half-dead) connection and retry once.
                    self.conn = None;
                    first_error.get_or_insert(ClientError::Transport(m));
                }
                Err(HttpError::Incomplete) => {
                    self.conn = None;
                    first_error
                        .get_or_insert(ClientError::Transport("connection closed".into()));
                }
                Err(HttpError::TooLarge(m)) => {
                    self.conn = None;
                    return Err(ClientError::Protocol(m));
                }
            }
        }
        Err(first_error.unwrap_or_else(|| ClientError::Transport("request failed".into())))
    }

    /// Raises the server's structured error body as [`ClientError::Server`].
    fn ok_or_server_error(status: u16, doc: Json) -> Result<Json, ClientError> {
        if (200..300).contains(&status) {
            return Ok(doc);
        }
        let err = doc.get("error");
        Err(ClientError::Server {
            status,
            kind: err
                .and_then(|e| e.get("kind"))
                .and_then(Json::as_str)
                .unwrap_or("unknown")
                .to_string(),
            message: err
                .and_then(|e| e.get("message"))
                .and_then(Json::as_str)
                .unwrap_or("<no message>")
                .to_string(),
            position: err
                .and_then(|e| e.get("position"))
                .and_then(Json::as_f64)
                .map(|x| x as usize),
        })
    }

    /// Executes one SQL query, returning the server's estimate — the same
    /// `AqpAnswer` a local `Session::sql` produces, bit-identical.
    pub fn query(&mut self, sql: &str) -> Result<AqpAnswer, ClientError> {
        let body = obj(vec![("sql", Json::Str(sql.to_string()))]).to_string();
        let (status, doc) =
            self.exchange("POST", "/query", "application/json", body.as_bytes(), true)?;
        let doc = Self::ok_or_server_error(status, doc)?;
        answer_from_json(&doc).map_err(ClientError::Protocol)
    }

    /// Ingests JSON rows (`[{"col": value, …}, …]`) into `table`. Returns the
    /// server's ingest report as JSON.
    pub fn ingest_rows(&mut self, table: &str, rows: Vec<Json>) -> Result<Json, ClientError> {
        let body = obj(vec![
            ("table", Json::Str(table.to_string())),
            ("rows", Json::Arr(rows)),
        ])
        .to_string();
        let (status, doc) =
            self.exchange("POST", "/ingest", "application/json", body.as_bytes(), false)?;
        Self::ok_or_server_error(status, doc)
    }

    /// Ingests a CSV body (header line + rows) into `table`.
    pub fn ingest_csv(&mut self, table: &str, csv: &str) -> Result<Json, ClientError> {
        let target = format!("/ingest?table={}", percent_encode(table));
        let (status, doc) = self.exchange("POST", &target, "text/csv", csv.as_bytes(), false)?;
        Self::ok_or_server_error(status, doc)
    }

    /// `GET /healthz`.
    pub fn healthz(&mut self) -> Result<Json, ClientError> {
        let (status, doc) = self.exchange("GET", "/healthz", "application/json", b"", true)?;
        Self::ok_or_server_error(status, doc)
    }

    /// `GET /stats` — the full session + server metrics document.
    pub fn stats(&mut self) -> Result<Json, ClientError> {
        let (status, doc) = self.exchange("GET", "/stats", "application/json", b"", true)?;
        Self::ok_or_server_error(status, doc)
    }

    /// `GET /tables` — registered table names with their serving state.
    pub fn tables(&mut self) -> Result<Vec<String>, ClientError> {
        let (status, doc) = self.exchange("GET", "/tables", "application/json", b"", true)?;
        let doc = Self::ok_or_server_error(status, doc)?;
        doc.get("tables")
            .and_then(Json::as_arr)
            .map(|tables| {
                tables
                    .iter()
                    .filter_map(|t| t.get("name").and_then(Json::as_str).map(str::to_string))
                    .collect()
            })
            .ok_or_else(|| ClientError::Protocol("missing \"tables\" array".into()))
    }

    /// Grouped convenience: the scalar estimate of one query, erroring on
    /// grouped answers and SQL NULL.
    pub fn query_scalar(&mut self, sql: &str) -> Result<ph_core::Estimate, ClientError> {
        match self.query(sql)? {
            AqpAnswer::Scalar(Some(e)) => Ok(e),
            AqpAnswer::Scalar(None) => {
                Err(ClientError::Protocol("query returned SQL NULL".into()))
            }
            AqpAnswer::Groups(_) => {
                Err(ClientError::Protocol("query returned groups, not a scalar".into()))
            }
        }
    }

    /// Grouped convenience: the per-group estimates of one query.
    pub fn query_groups(
        &mut self,
        sql: &str,
    ) -> Result<BTreeMap<String, ph_core::Estimate>, ClientError> {
        match self.query(sql)? {
            AqpAnswer::Groups(g) => Ok(g),
            AqpAnswer::Scalar(_) => {
                Err(ClientError::Protocol("query returned a scalar, not groups".into()))
            }
        }
    }
}

/// Percent-encodes a query-string value (RFC 3986 unreserved set passes).
fn percent_encode(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for b in s.bytes() {
        match b {
            b'A'..=b'Z' | b'a'..=b'z' | b'0'..=b'9' | b'-' | b'_' | b'.' | b'~' => {
                out.push(b as char)
            }
            b => out.push_str(&format!("%{b:02X}")),
        }
    }
    out
}
