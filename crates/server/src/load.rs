//! Closed-loop load generation: `N` active connections each firing the next
//! query (or pipelined batch) the moment the previous answer lands, optionally
//! alongside a large population of held-open *idle* keep-alive connections.
//! Shared by the `ph-bench-client` binary, the `server_throughput` bench
//! section of `BENCH_query_latency.json`, and the high-connection CI smoke.
//!
//! Closed-loop (rather than fixed-rate) load matches how the paper frames
//! interactivity: each connection models one user who reads an answer and
//! immediately asks the next question, so measured throughput is the
//! *sustainable* rate at the measured latency, not an open-loop overload.
//! The idle population models the realistic shape of a fleet of dashboards:
//! thousands of sockets held open, a handful active at any instant — the
//! workload the event-loop server exists to hold cheaply.

use std::io::Read;
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

use crate::client::Client;

/// Shape of one load run.
#[derive(Debug, Clone)]
pub struct LoadProfile {
    /// Closed-loop connections actively issuing queries.
    pub active: usize,
    /// Additional keep-alive connections opened and then held **idle** for
    /// the whole run — they cost the server a slab slot and an fd, nothing
    /// else, and the report proves the active traffic didn't pay for them.
    pub held_idle: usize,
    /// Queries per pipelined batch on each active connection. `1` = classic
    /// request/response; `k > 1` writes `k` requests back-to-back and reads
    /// `k` in-order responses (latency is measured per *batch*, then divided
    /// by `k` for per-query figures).
    pub pipeline_depth: usize,
}

impl Default for LoadProfile {
    fn default() -> Self {
        Self { active: 4, held_idle: 0, pipeline_depth: 1 }
    }
}

/// Outcome of one load run.
#[derive(Debug, Clone)]
pub struct LoadReport {
    /// Active closed-loop connections driven.
    pub connections: usize,
    /// Idle keep-alive connections successfully held open throughout.
    pub held_idle: usize,
    /// Pipelined batch size used on the active connections.
    pub pipeline_depth: usize,
    /// Wall-clock measurement window.
    pub seconds: f64,
    /// Queries answered with 200.
    pub ok: u64,
    /// Queries answered with an error (4xx/5xx or transport).
    pub errors: u64,
    /// Sustained throughput (`ok / seconds`).
    pub qps: f64,
    /// Median per-query latency, microseconds.
    pub p50_us: f64,
    /// 99th-percentile per-query latency, microseconds.
    pub p99_us: f64,
}

/// Drives `profile.active` closed loops against `addr` for `duration`, each
/// rotating through `queries` (staggered so connections don't lock-step),
/// while `profile.held_idle` extra keep-alive connections sit open and silent.
pub fn run_load(
    addr: &str,
    profile: &LoadProfile,
    duration: Duration,
    queries: &[String],
) -> LoadReport {
    let depth = profile.pipeline_depth.max(1);
    if queries.is_empty() {
        // Nothing to drive: report an idle run instead of aborting the caller.
        return LoadReport {
            connections: profile.active,
            held_idle: 0,
            pipeline_depth: depth,
            seconds: 0.0,
            ok: 0,
            errors: 0,
            qps: 0.0,
            p50_us: 0.0,
            p99_us: 0.0,
        };
    }
    // Open the idle population first so the active loops run while it is
    // held, not before it exists. Sockets that fail to open (fd limits,
    // admission 503 + close) are simply not counted.
    let held: Vec<TcpStream> = (0..profile.held_idle)
        .filter_map(|_| TcpStream::connect(addr).ok())
        .collect();
    let held_idle = held.len();
    let stop = AtomicBool::new(false);
    let t0 = Instant::now();
    let mut per_conn: Vec<(u64, u64, Vec<f64>)> = Vec::new();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..profile.active.max(1))
            .map(|c| {
                let stop = &stop;
                scope.spawn(move || {
                    let mut client = Client::new(addr.to_string());
                    let mut ok = 0u64;
                    let mut errors = 0u64;
                    let mut latencies_us: Vec<f64> = Vec::new();
                    let mut qi = c; // stagger
                    while !stop.load(Ordering::Acquire) {
                        let batch: Vec<&str> = (0..depth)
                            .filter_map(|k| {
                                queries.get((qi + k) % queries.len()).map(String::as_str)
                            })
                            .collect();
                        qi += depth;
                        let t = Instant::now();
                        if depth == 1 {
                            let Some(q) = batch.first() else { break };
                            match client.query(q) {
                                Ok(_) => {
                                    ok += 1;
                                    latencies_us.push(t.elapsed().as_secs_f64() * 1e6);
                                }
                                Err(_) => errors += 1,
                            }
                        } else {
                            match client.query_pipelined(&batch) {
                                Ok(answers) => {
                                    let us_per_query =
                                        t.elapsed().as_secs_f64() * 1e6 / depth as f64;
                                    for a in answers {
                                        match a {
                                            Ok(_) => {
                                                ok += 1;
                                                latencies_us.push(us_per_query);
                                            }
                                            Err(_) => errors += 1,
                                        }
                                    }
                                }
                                Err(_) => errors += depth as u64,
                            }
                        }
                    }
                    (ok, errors, latencies_us)
                })
            })
            .collect();
        std::thread::sleep(duration);
        stop.store(true, Ordering::Release);
        // A panicked loop drops its counts; the surviving connections still
        // produce a report instead of cascading the panic into the driver.
        per_conn = handles.into_iter().filter_map(|h| h.join().ok()).collect();
    });
    let seconds = t0.elapsed().as_secs_f64();
    // The idle population must still be *open* — a server that shed it under
    // load would show up here as dead sockets. A non-blocking 1-byte read
    // distinguishes the cases instantly: open-and-silent returns WouldBlock,
    // closed returns 0 (EOF) or a connection error. No per-socket timeout, so
    // sweeping thousands of sockets costs microseconds, not seconds.
    let surviving = held
        .into_iter()
        .filter(|s| {
            if s.set_nonblocking(true).is_err() {
                return false;
            }
            let mut s = s;
            let mut byte = [0u8; 1];
            match s.read(&mut byte) {
                Ok(0) => false, // EOF: server closed it
                Ok(_) => true,  // stray byte, still open
                Err(e) => e.kind() == std::io::ErrorKind::WouldBlock, // silent and open
            }
        })
        .count();
    let ok: u64 = per_conn.iter().map(|(ok, _, _)| ok).sum();
    let errors: u64 = per_conn.iter().map(|(_, e, _)| e).sum();
    let mut latencies: Vec<f64> = per_conn.into_iter().flat_map(|(_, _, l)| l).collect();
    latencies.sort_by(|a, b| a.total_cmp(b));
    let pct = |p: f64| -> f64 {
        let idx = ((latencies.len() as f64 - 1.0) * p).round() as usize;
        latencies.get(idx).copied().unwrap_or(0.0)
    };
    LoadReport {
        connections: profile.active,
        held_idle: surviving.min(held_idle),
        pipeline_depth: depth,
        seconds,
        ok,
        errors,
        qps: ok as f64 / seconds.max(1e-9),
        p50_us: pct(0.50),
        p99_us: pct(0.99),
    }
}

/// Drives `connections` closed loops against `addr` for `duration` — the
/// classic profile: no idle population, no pipelining.
pub fn run_closed_loop(
    addr: &str,
    connections: usize,
    duration: Duration,
    queries: &[String],
) -> LoadReport {
    run_load(
        addr,
        &LoadProfile { active: connections, held_idle: 0, pipeline_depth: 1 },
        duration,
        queries,
    )
}
