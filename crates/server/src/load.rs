//! Closed-loop load generation: `N` connections, each a thread with its own
//! [`Client`], firing the next query the moment the previous answer lands.
//! Shared by the `ph-bench-client` binary and the `server_throughput` bench
//! section of `BENCH_query_latency.json`.
//!
//! Closed-loop (rather than fixed-rate) load matches how the paper frames
//! interactivity: each connection models one user who reads an answer and
//! immediately asks the next question, so measured throughput is the
//! *sustainable* rate at the measured latency, not an open-loop overload.

use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

use crate::client::Client;

/// Outcome of one load run.
#[derive(Debug, Clone)]
pub struct LoadReport {
    /// Concurrent connections driven.
    pub connections: usize,
    /// Wall-clock measurement window.
    pub seconds: f64,
    /// Queries answered with 200.
    pub ok: u64,
    /// Queries answered with an error (4xx/5xx or transport).
    pub errors: u64,
    /// Sustained throughput (`ok / seconds`).
    pub qps: f64,
    /// Median per-query latency, microseconds.
    pub p50_us: f64,
    /// 99th-percentile per-query latency, microseconds.
    pub p99_us: f64,
}

/// Drives `connections` closed loops against `addr` for `duration`, each
/// rotating through `queries` (staggered so connections don't lock-step).
pub fn run_closed_loop(
    addr: &str,
    connections: usize,
    duration: Duration,
    queries: &[String],
) -> LoadReport {
    if queries.is_empty() {
        // Nothing to drive: report an idle run instead of aborting the caller.
        return LoadReport {
            connections,
            seconds: 0.0,
            ok: 0,
            errors: 0,
            qps: 0.0,
            p50_us: 0.0,
            p99_us: 0.0,
        };
    }
    let stop = AtomicBool::new(false);
    let t0 = Instant::now();
    let mut per_conn: Vec<(u64, u64, Vec<f64>)> = Vec::new();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..connections.max(1))
            .map(|c| {
                let stop = &stop;
                scope.spawn(move || {
                    let mut client = Client::new(addr.to_string());
                    let mut ok = 0u64;
                    let mut errors = 0u64;
                    let mut latencies_us: Vec<f64> = Vec::new();
                    let mut qi = c; // stagger
                    while !stop.load(Ordering::Acquire) {
                        let Some(q) = queries.get(qi % queries.len()) else { break };
                        qi += 1;
                        let t = Instant::now();
                        match client.query(q) {
                            Ok(_) => {
                                ok += 1;
                                latencies_us.push(t.elapsed().as_secs_f64() * 1e6);
                            }
                            Err(_) => errors += 1,
                        }
                    }
                    (ok, errors, latencies_us)
                })
            })
            .collect();
        std::thread::sleep(duration);
        stop.store(true, Ordering::Release);
        // A panicked loop drops its counts; the surviving connections still
        // produce a report instead of cascading the panic into the driver.
        per_conn = handles.into_iter().filter_map(|h| h.join().ok()).collect();
    });
    let seconds = t0.elapsed().as_secs_f64();
    let ok: u64 = per_conn.iter().map(|(ok, _, _)| ok).sum();
    let errors: u64 = per_conn.iter().map(|(_, e, _)| e).sum();
    let mut latencies: Vec<f64> = per_conn.into_iter().flat_map(|(_, _, l)| l).collect();
    latencies.sort_by(|a, b| a.total_cmp(b));
    let pct = |p: f64| -> f64 {
        let idx = ((latencies.len() as f64 - 1.0) * p).round() as usize;
        latencies.get(idx).copied().unwrap_or(0.0)
    };
    LoadReport {
        connections,
        seconds,
        ok,
        errors,
        qps: ok as f64 / seconds.max(1e-9),
        p50_us: pct(0.50),
        p99_us: pct(0.99),
    }
}
