//! The serving process: a fixed worker pool draining a **bounded** accept
//! queue, all workers sharing one `Arc<Session>`.
//!
//! # Architecture
//!
//! ```text
//!            ┌────────────┐   bounded queue    ┌──────────┐
//!  accept ──▶│  acceptor  │──▶ (cap = depth) ──▶│ worker 0 │──▶ Session (shared)
//!            │   thread   │        │            │    …     │
//!            └────────────┘        │ full?      │ worker N │
//!                                  ▼            └──────────┘
//!                            503 + close
//! ```
//!
//! * **Admission control.** The acceptor never blocks on a slow worker: a
//!   connection that does not fit in the queue is answered `503` immediately
//!   and closed. Under overload the server sheds load at the door instead of
//!   accumulating unbounded connections — the failure mode stays *fast and
//!   explicit* (clients see 503 and back off) rather than slow and silent.
//! * **Connection-per-worker.** A worker owns a connection for its whole
//!   keep-alive lifetime (requests on one connection are sequential anyway).
//!   Size `workers` at or above the expected concurrent connection count; the
//!   queue absorbs bursts beyond it.
//! * **Graceful shutdown.** [`Server::shutdown`] stops the acceptor, lets every
//!   worker finish its in-flight request, flushes the query log, and joins all
//!   threads. In-flight requests are answered, new ones are not.
//!
//! Reads are bounded in space (head/body caps) and time (read timeout), so a
//! stalled or hostile client cannot pin a worker forever.

use std::collections::VecDeque;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use ph_core::Session;
use ph_types::PhError;

use crate::http::{HttpConn, HttpError, Request};
use crate::ingest::dataset_from_body;
use crate::json::{obj, Json};
use crate::querylog::QueryLogWriter;
use crate::wire::{answer_to_json, error_body, status_for};

/// Tuning knobs of one server instance.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker threads; each owns one connection at a time, so size this at or
    /// above the expected concurrent (keep-alive) connection count.
    pub workers: usize,
    /// Accepted connections that may wait for a worker before the server
    /// starts answering `503`.
    pub queue_depth: usize,
    /// Largest request body accepted (bigger → `413`).
    pub max_body_bytes: usize,
    /// Per-read socket timeout; a connection idle (or stalled mid-request)
    /// longer than this is closed.
    pub read_timeout: Duration,
    /// Per-write socket timeout: a client that stops draining its receive
    /// window can no longer pin a worker forever mid-response.
    pub write_timeout: Duration,
    /// Where to append the query log (`None` → no log).
    pub query_log: Option<PathBuf>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            workers: std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1).max(4),
            queue_depth: 64,
            max_body_bytes: 8 * 1024 * 1024,
            read_timeout: Duration::from_secs(10),
            write_timeout: Duration::from_secs(10),
            query_log: None,
        }
    }
}

/// Endpoints with their own metrics slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Endpoint {
    Query,
    Ingest,
    Tables,
    Stats,
    Healthz,
    Other,
}

impl Endpoint {
    const ALL: [Endpoint; 6] = [
        Endpoint::Query,
        Endpoint::Ingest,
        Endpoint::Tables,
        Endpoint::Stats,
        Endpoint::Healthz,
        Endpoint::Other,
    ];

    fn idx(self) -> usize {
        match self {
            Endpoint::Query => 0,
            Endpoint::Ingest => 1,
            Endpoint::Tables => 2,
            Endpoint::Stats => 3,
            Endpoint::Healthz => 4,
            Endpoint::Other => 5,
        }
    }

    fn name(self) -> &'static str {
        match self {
            Endpoint::Query => "query",
            Endpoint::Ingest => "ingest",
            Endpoint::Tables => "tables",
            Endpoint::Stats => "stats",
            Endpoint::Healthz => "healthz",
            Endpoint::Other => "other",
        }
    }
}

/// Lock-free log₂ latency histogram: bucket `i` counts requests taking
/// `[2^i, 2^(i+1))` µs. 40 buckets cover a microsecond to ~12 days.
struct LatencyHist {
    buckets: [AtomicU64; 40],
}

impl LatencyHist {
    fn new() -> Self {
        Self { buckets: std::array::from_fn(|_| AtomicU64::new(0)) }
    }

    fn record(&self, micros: u64) {
        let idx = (63 - micros.max(1).leading_zeros() as usize).min(self.buckets.len() - 1);
        if let Some(bucket) = self.buckets.get(idx) {
            bucket.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Approximate quantile: the geometric midpoint of the bucket holding the
    /// rank. Within 2x of the true value by construction — the right fidelity
    /// for a monitoring endpoint that must never lock the hot path.
    fn quantile_us(&self, q: f64) -> f64 {
        let counts: Vec<u64> = self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect();
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return 0.0;
        }
        let rank = (q.clamp(0.0, 1.0) * (total - 1) as f64).round() as u64;
        let mut seen = 0u64;
        for (i, c) in counts.iter().enumerate() {
            seen += c;
            if seen > rank {
                return 2f64.powi(i as i32) * std::f64::consts::SQRT_2;
            }
        }
        2f64.powi(counts.len() as i32 - 1)
    }
}

struct EndpointMetrics {
    requests: AtomicU64,
    status_4xx: AtomicU64,
    status_5xx: AtomicU64,
    latency: LatencyHist,
}

impl EndpointMetrics {
    fn new() -> Self {
        Self {
            requests: AtomicU64::new(0),
            status_4xx: AtomicU64::new(0),
            status_5xx: AtomicU64::new(0),
            latency: LatencyHist::new(),
        }
    }

    fn record(&self, status: u16, micros: u64) {
        self.requests.fetch_add(1, Ordering::Relaxed);
        if (400..500).contains(&status) {
            self.status_4xx.fetch_add(1, Ordering::Relaxed);
        } else if status >= 500 {
            self.status_5xx.fetch_add(1, Ordering::Relaxed);
        }
        self.latency.record(micros);
    }
}

pub(crate) struct Metrics {
    endpoints: [EndpointMetrics; 6],
    /// Connections shed at the door (queue full).
    rejected: AtomicU64,
}

impl Metrics {
    fn new() -> Self {
        Self {
            endpoints: std::array::from_fn(|_| EndpointMetrics::new()),
            rejected: AtomicU64::new(0),
        }
    }

    fn endpoint(&self, e: Endpoint) -> &EndpointMetrics {
        // ph-lint: allow(no-panic-serving) — idx() enumerates Endpoint::ALL, 0..6
        &self.endpoints[e.idx()]
    }

    fn to_json(&self) -> Json {
        Json::Obj(
            Endpoint::ALL
                .iter()
                .map(|e| {
                    let m = self.endpoint(*e);
                    (
                        e.name().to_string(),
                        obj(vec![
                            ("requests", Json::Num(m.requests.load(Ordering::Relaxed) as f64)),
                            ("status_4xx", Json::Num(m.status_4xx.load(Ordering::Relaxed) as f64)),
                            ("status_5xx", Json::Num(m.status_5xx.load(Ordering::Relaxed) as f64)),
                            ("p50_us", Json::Num(m.latency.quantile_us(0.50))),
                            ("p99_us", Json::Num(m.latency.quantile_us(0.99))),
                        ]),
                    )
                })
                .collect(),
        )
    }
}

/// The bounded handoff between the acceptor and the workers.
struct ConnQueue {
    inner: Mutex<QueueInner>,
    ready: Condvar,
    cap: usize,
}

struct QueueInner {
    q: VecDeque<TcpStream>,
    closed: bool,
}

impl ConnQueue {
    fn new(cap: usize) -> Self {
        Self {
            inner: Mutex::new(QueueInner { q: VecDeque::new(), closed: false }),
            ready: Condvar::new(),
            cap: cap.max(1),
        }
    }

    /// Admits `conn` if there is room; hands it back (for the 503) otherwise.
    ///
    /// Poison policy: the queue mutex is only held for these few lines, so a
    /// poisoned lock means some thread panicked mid-queue-op. That is treated
    /// as shutdown — the acceptor sheds new connections (503) instead of
    /// propagating the panic and taking the whole server down with it.
    fn try_push(&self, conn: TcpStream) -> Result<(), TcpStream> {
        let Ok(mut inner) = self.inner.lock() else { return Err(conn) };
        if inner.closed || inner.q.len() >= self.cap {
            return Err(conn);
        }
        inner.q.push_back(conn);
        drop(inner);
        self.ready.notify_one();
        Ok(())
    }

    /// Blocks for the next connection; `None` once closed and drained — or if
    /// the lock is poisoned (see [`ConnQueue::try_push`]): the surviving
    /// workers drain out exactly as on a normal shutdown.
    fn pop(&self) -> Option<TcpStream> {
        let mut inner = self.inner.lock().ok()?;
        loop {
            if let Some(conn) = inner.q.pop_front() {
                return Some(conn);
            }
            if inner.closed {
                return None;
            }
            inner = self.ready.wait(inner).ok()?;
        }
    }

    /// Closes the queue. Shutdown must win even over poison, so the guard is
    /// recovered rather than discarded: `closed` is always set.
    fn close(&self) {
        self.inner.lock().unwrap_or_else(|p| p.into_inner()).closed = true;
        self.ready.notify_all();
    }
}

/// State shared by the acceptor, the workers and the handle.
pub(crate) struct Shared {
    pub(crate) session: Arc<Session>,
    cfg: ServerConfig,
    pub(crate) metrics: Metrics,
    qlog: Option<QueryLogWriter>,
    queue: ConnQueue,
    stop: AtomicBool,
    started: Instant,
    /// One slot per worker holding a clone of its in-flight connection.
    /// Shutdown closes the *read* half of each, so a worker blocked in a
    /// keep-alive read returns immediately instead of waiting out the read
    /// timeout — while a response being written still goes out.
    active: Vec<Mutex<Option<TcpStream>>>,
}

/// A running server. Dropping the handle **without** calling
/// [`Server::shutdown`] detaches the threads (the process exit reaps them);
/// call `shutdown` for a deterministic, log-flushed stop.
pub struct Server {
    shared: Arc<Shared>,
    local_addr: SocketAddr,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Binds `addr` (use port 0 for an ephemeral port) and starts the acceptor
    /// and worker threads, serving `session`.
    pub fn bind(
        session: Arc<Session>,
        addr: impl ToSocketAddrs,
        cfg: ServerConfig,
    ) -> Result<Server, PhError> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let qlog = match &cfg.query_log {
            Some(path) => Some(QueryLogWriter::create(path)?),
            None => None,
        };
        let workers_n = cfg.workers.max(1);
        let shared = Arc::new(Shared {
            session,
            queue: ConnQueue::new(cfg.queue_depth),
            cfg,
            metrics: Metrics::new(),
            qlog,
            stop: AtomicBool::new(false),
            started: Instant::now(),
            active: (0..workers_n).map(|_| Mutex::new(None)).collect(),
        });
        let acceptor = {
            let shared = shared.clone();
            std::thread::Builder::new()
                .name("ph-accept".into())
                .spawn(move || accept_loop(&shared, listener))
                .map_err(|e| PhError::Io(e.to_string()))?
        };
        let workers = (0..workers_n)
            .map(|i| {
                let shared = shared.clone();
                std::thread::Builder::new()
                    .name(format!("ph-worker-{i}"))
                    .spawn(move || worker_loop(&shared, i))
                    .map_err(|e| PhError::Io(e.to_string()))
            })
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Server { shared, local_addr, acceptor: Some(acceptor), workers })
    }

    /// The bound address (with the resolved port).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Connections answered `503` at the door so far.
    pub fn rejected(&self) -> u64 {
        self.shared.metrics.rejected.load(Ordering::Relaxed)
    }

    /// Stops accepting, finishes in-flight requests, flushes the query log and
    /// joins every thread.
    pub fn shutdown(mut self) {
        self.shared.stop.store(true, Ordering::Release);
        // Unblock the acceptor's blocking `accept` with a no-op connection.
        let _ = TcpStream::connect(self.local_addr);
        if let Some(h) = self.acceptor.take() {
            let _ = h.join();
        }
        self.shared.queue.close();
        // Unblock workers parked in keep-alive reads: closing the read half
        // makes their blocked `read` return EOF now instead of at the read
        // timeout; a response mid-write still completes.
        for slot in &self.shared.active {
            // A worker that panicked with its slot locked left at most one
            // stale clone behind; recover the guard and sweep it anyway.
            if let Some(conn) = slot.lock().unwrap_or_else(|p| p.into_inner()).as_ref() {
                let _ = conn.shutdown(std::net::Shutdown::Read);
            }
        }
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
        if let Some(qlog) = &self.shared.qlog {
            qlog.flush();
        }
    }
}

fn accept_loop(shared: &Shared, listener: TcpListener) {
    loop {
        let conn = match listener.accept() {
            Ok((conn, _)) => conn,
            Err(_) => {
                if shared.stop.load(Ordering::Acquire) {
                    break;
                }
                // Transient accept failures (EMFILE under fd exhaustion,
                // ECONNABORTED) must not busy-spin the acceptor at 100% CPU
                // exactly when the box is already overloaded.
                std::thread::sleep(Duration::from_millis(10));
                continue;
            }
        };
        if shared.stop.load(Ordering::Acquire) {
            break;
        }
        if let Err(conn) = shared.queue.try_push(conn) {
            // Admission control: shed at the door, explicitly.
            shared.metrics.rejected.fetch_add(1, Ordering::Relaxed);
            let mut http = HttpConn::new(conn);
            let body = obj(vec![(
                "error",
                obj(vec![
                    ("kind", Json::Str("overload".into())),
                    ("status", Json::Num(503.0)),
                    (
                        "message",
                        Json::Str(
                            "server at capacity (accept queue full); retry with backoff".into(),
                        ),
                    ),
                ]),
            )]);
            let _ = http.write_response(503, &body.to_string(), false);
        }
    }
    shared.queue.close();
}

fn worker_loop(shared: &Shared, slot: usize) {
    // One slot per spawned worker; resolve it once instead of indexing (and
    // potentially panicking) on every connection. Slot-lock poison is benign:
    // the slot holds only a disposable clone of an in-flight connection.
    let Some(me) = shared.active.get(slot) else { return };
    let publish = |conn: Option<TcpStream>| {
        *me.lock().unwrap_or_else(|p| p.into_inner()) = conn;
    };
    while let Some(conn) = shared.queue.pop() {
        publish(conn.try_clone().ok());
        // Re-check after publishing the clone: a shutdown racing the lines
        // above might have swept the slots before ours was visible.
        if shared.stop.load(Ordering::Acquire) {
            let _ = conn.shutdown(std::net::Shutdown::Both);
            publish(None);
            continue;
        }
        let mut http = HttpConn::new(conn);
        if http.configure(shared.cfg.read_timeout, shared.cfg.write_timeout).is_ok() {
            handle_connection(shared, &mut http);
        }
        publish(None);
    }
}

/// Serves one connection until close, error, timeout or shutdown.
fn handle_connection(shared: &Shared, http: &mut HttpConn<TcpStream>) {
    loop {
        let req = match http.read_request(shared.cfg.max_body_bytes) {
            Ok(Some(req)) => req,
            Ok(None) => return, // clean close between requests
            Err(HttpError::Malformed(m)) => {
                let body = error_body(400, "bad_request", &m, None);
                let _ = http.write_response(400, &body.to_string(), false);
                return;
            }
            Err(HttpError::TooLarge(m)) => {
                let body = error_body(413, "too_large", &m, None);
                let _ = http.write_response(413, &body.to_string(), false);
                return;
            }
            // Timeout, reset, or close mid-request: nothing to answer.
            Err(HttpError::Incomplete | HttpError::Io(_)) => return,
        };
        let keep_alive = req.keep_alive() && !shared.stop.load(Ordering::Acquire);
        let t0 = Instant::now();
        let (endpoint, status, body) = handle_request(shared, &req);
        let micros = t0.elapsed().as_micros() as u64;
        shared.metrics.endpoint(endpoint).record(status, micros);
        if endpoint == Endpoint::Query {
            if let Some(qlog) = &shared.qlog {
                qlog.append(status, micros, &query_text(&req).unwrap_or_default());
            }
        }
        if http.write_response(status, &body.to_string(), keep_alive).is_err() || !keep_alive {
            return;
        }
    }
}

/// The SQL text of a `/query` request: a JSON body's `"sql"` member, or the
/// raw body as UTF-8.
fn query_text(req: &Request) -> Option<String> {
    let text = std::str::from_utf8(&req.body).ok()?;
    if text.trim_start().starts_with('{') {
        let doc = Json::parse(text).ok()?;
        return doc.get("sql")?.as_str().map(str::to_string);
    }
    Some(text.to_string())
}

/// Routes one request. Returns `(metrics endpoint, status, body)`.
fn handle_request(shared: &Shared, req: &Request) -> (Endpoint, u16, Json) {
    match (req.method.as_str(), req.path.as_str()) {
        ("POST", "/query") => {
            let (status, body) = handle_query(shared, req);
            (Endpoint::Query, status, body)
        }
        ("POST", "/ingest") => {
            let (status, body) = handle_ingest(shared, req);
            (Endpoint::Ingest, status, body)
        }
        ("GET", "/tables") => (Endpoint::Tables, 200, tables_json(shared)),
        ("GET", "/stats") => (Endpoint::Stats, 200, stats_json(shared)),
        ("GET", "/healthz") => (
            Endpoint::Healthz,
            200,
            obj(vec![
                ("status", Json::Str("ok".into())),
                ("tables", Json::Num(shared.session.tables().len() as f64)),
                ("uptime_seconds", Json::Num(shared.started.elapsed().as_secs_f64())),
            ]),
        ),
        (_, "/query" | "/ingest" | "/tables" | "/stats" | "/healthz") => {
            let body = error_body(
                405,
                "method_not_allowed",
                &format!("{} is not supported on {}", req.method, req.path),
                None,
            );
            (Endpoint::Other, 405, body)
        }
        _ => {
            let body = error_body(
                404,
                "no_such_endpoint",
                &format!(
                    "{:?} is not an endpoint (have: POST /query, POST /ingest, GET /tables, \
                     GET /stats, GET /healthz)",
                    req.path
                ),
                None,
            );
            (Endpoint::Other, 404, body)
        }
    }
}

fn handle_query(shared: &Shared, req: &Request) -> (u16, Json) {
    let Some(sql) = query_text(req) else {
        return (
            400,
            error_body(
                400,
                "bad_request",
                "body must be SQL text or a JSON object with an \"sql\" member",
                None,
            ),
        );
    };
    let t0 = Instant::now();
    match shared.session.sql(&sql) {
        Ok(answer) => {
            let mut body = answer_to_json(&answer);
            if let Json::Obj(members) = &mut body {
                members.push((
                    "latency_us".into(),
                    Json::Num(t0.elapsed().as_micros() as f64),
                ));
            }
            (200, body)
        }
        Err(e) => {
            let status = status_for(&e);
            // Recover the byte offset a parse error loses crossing `PhError`.
            let position = match &e {
                PhError::Parse(_) => ph_sql::error_offset(&sql),
                _ => None,
            };
            (status, error_body(status, kind_of(&e), &e.to_string(), position))
        }
    }
}

fn handle_ingest(shared: &Shared, req: &Request) -> (u16, Json) {
    match dataset_from_body(&shared.session, req) {
        Ok((table, batch)) => match shared.session.ingest(&table, &batch) {
            Ok(report) => (
                200,
                obj(vec![
                    ("table", Json::Str(table)),
                    ("rows", Json::Num(report.rows as f64)),
                    ("staleness", Json::Num(report.staleness)),
                    ("rebuilt", Json::Bool(report.rebuilt)),
                    ("sealed_segments", Json::Num(report.sealed_segments as f64)),
                ]),
            ),
            Err(e) => {
                let status = status_for(&e);
                (status, error_body(status, kind_of(&e), &e.to_string(), None))
            }
        },
        Err(e) => {
            let status = status_for(&e);
            (status, error_body(status, kind_of(&e), &e.to_string(), None))
        }
    }
}

fn tables_json(shared: &Shared) -> Json {
    let stats = shared.session.stats();
    Json::Obj(vec![(
        "tables".into(),
        Json::Arr(
            stats
                .tables
                .iter()
                .map(|t| {
                    obj(vec![
                        ("name", Json::Str(t.name.clone())),
                        ("epoch", Json::Num(t.epoch as f64)),
                        ("segments", Json::Num(t.segments as f64)),
                        ("sealed_rows", Json::Num(t.sealed_rows as f64)),
                        ("delta_rows", Json::Num(t.delta_rows as f64)),
                        ("staleness", Json::Num(t.staleness)),
                    ])
                })
                .collect(),
        ),
    )])
}

fn stats_json(shared: &Shared) -> Json {
    let stats = shared.session.stats();
    let tables = stats
        .tables
        .iter()
        .map(|t| {
            let footprint = shared
                .session
                .footprint_report(&t.name)
                .map(|f| {
                    obj(vec![
                        ("synopsis_bytes", Json::Num(f.synopsis_bytes as f64)),
                        ("row_store_bytes", Json::Num(f.row_store_bytes as f64)),
                        ("delta_bytes", Json::Num(f.delta_bytes as f64)),
                        ("total_bytes", Json::Num(f.total as f64)),
                    ])
                })
                .unwrap_or(Json::Null);
            // Codec mix of the sealed row stores: column counts keyed by the
            // winning codec, so operators can see what the cascade picked.
            let codec_mix = Json::Obj(
                t.codec_mix
                    .iter()
                    .map(|(name, cols)| (name.clone(), Json::Num(*cols as f64)))
                    .collect(),
            );
            obj(vec![
                ("name", Json::Str(t.name.clone())),
                ("epoch", Json::Num(t.epoch as f64)),
                ("segments", Json::Num(t.segments as f64)),
                ("sealed_rows", Json::Num(t.sealed_rows as f64)),
                ("delta_rows", Json::Num(t.delta_rows as f64)),
                ("staleness", Json::Num(t.staleness)),
                ("codec_mix", codec_mix),
                ("footprint", footprint),
            ])
        })
        .collect();
    // Quarantined tables: present in the persisted catalog but isolated after
    // failing open-time verification. Operators watch this array — a non-empty
    // value means durable state needs attention even though serving is up.
    let quarantined = shared
        .session
        .quarantined()
        .into_iter()
        .map(|(table, reason)| {
            obj(vec![("table", Json::Str(table)), ("reason", Json::Str(reason))])
        })
        .collect();
    obj(vec![
        ("uptime_seconds", Json::Num(shared.started.elapsed().as_secs_f64())),
        (
            "plan_cache",
            obj(vec![
                ("hits", Json::Num(stats.cache.hits as f64)),
                ("misses", Json::Num(stats.cache.misses as f64)),
                ("entries", Json::Num(stats.cache.entries as f64)),
            ]),
        ),
        ("tables", Json::Arr(tables)),
        ("quarantined", Json::Arr(quarantined)),
        (
            "server",
            obj(vec![
                ("workers", Json::Num(shared.cfg.workers as f64)),
                ("queue_depth", Json::Num(shared.cfg.queue_depth as f64)),
                (
                    "rejected_503",
                    Json::Num(shared.metrics.rejected.load(Ordering::Relaxed) as f64),
                ),
                ("endpoints", shared.metrics.to_json()),
            ]),
        ),
    ])
}

/// The error `kind` slug of a [`PhError`], mirrored by the client.
pub(crate) fn kind_of(e: &PhError) -> &'static str {
    match e {
        PhError::Parse(_) => "parse",
        PhError::UnknownTable(_) => "unknown_table",
        PhError::UnknownColumn(_) => "unknown_column",
        PhError::InvalidQuery(_) => "invalid_query",
        PhError::StalePlan(_) => "stale_plan",
        PhError::Unsupported(_) => "unsupported",
        PhError::Schema(_) => "schema",
        PhError::Io(_) => "io",
        PhError::Corrupt(_) => "corrupt",
        PhError::Quarantined(_) => "quarantined",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Poisons `queue`'s mutex by locking it on a thread that then panics.
    fn poison(queue: &Arc<ConnQueue>) {
        let q = Arc::clone(queue);
        let h = std::thread::spawn(move || {
            let _guard = q.inner.lock().unwrap();
            panic!("worker dies holding the queue lock");
        });
        assert!(h.join().is_err(), "the poisoning thread must have panicked");
        assert!(queue.inner.lock().is_err(), "mutex is poisoned");
    }

    fn loopback_pair() -> (TcpStream, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let a = TcpStream::connect(addr).unwrap();
        let (b, _) = listener.accept().unwrap();
        (a, b)
    }

    /// The regression this module exists for: a worker panicking while it
    /// holds the queue lock must not wedge or crash the rest of the server.
    /// Poison degrades to shutdown semantics — push sheds, pop drains out,
    /// close still closes — instead of cascading the panic.
    #[test]
    fn poisoned_conn_queue_degrades_to_shutdown() {
        let queue = Arc::new(ConnQueue::new(4));
        poison(&queue);
        let (conn, _peer) = loopback_pair();
        assert!(queue.try_push(conn).is_err(), "push sheds instead of panicking");
        assert!(queue.pop().is_none(), "pop drains out instead of panicking");
        queue.close(); // must not panic, and must still mark the queue closed
        assert!(queue.inner.lock().unwrap_or_else(|p| p.into_inner()).closed);
    }

    /// Without poison the queue behaves as a queue: a pushed connection comes
    /// back out, and close() wakes a parked consumer.
    #[test]
    fn conn_queue_delivers_then_closes() {
        let queue = Arc::new(ConnQueue::new(4));
        let (conn, _peer) = loopback_pair();
        assert!(queue.try_push(conn).is_ok());
        assert!(queue.pop().is_some());
        let q = Arc::clone(&queue);
        let waiter = std::thread::spawn(move || q.pop());
        std::thread::sleep(Duration::from_millis(20));
        queue.close();
        assert!(waiter.join().unwrap().is_none(), "parked pop wakes with None on close");
    }

    /// Latency buckets clamp: the u64 extremes land in the last bucket rather
    /// than out of bounds, and quantiles stay finite.
    #[test]
    fn latency_hist_extremes_are_clamped() {
        let hist = LatencyHist::new();
        hist.record(0);
        hist.record(1);
        hist.record(u64::MAX);
        let total: u64 =
            hist.buckets.iter().map(|b| b.load(Ordering::Relaxed)).sum();
        assert_eq!(total, 3, "every sample landed in some bucket");
        assert!(hist.quantile_us(0.99).is_finite());
    }
}
