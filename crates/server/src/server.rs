//! The serving process: a readiness-driven event loop holding thousands of
//! keep-alive connections, feeding a small batched executor pool that shares
//! one `Session` snapshot per drained batch.
//!
//! # Architecture
//!
//! ```text
//!                    ┌──────────────────────────────┐  job queue   ┌────────┐
//!  accept ──▶ 503?──▶│          event loop          │─▶ (bounded) ─▶│ exec 0 │─┐
//!  (conn cap)        │  epoll/poll · non-blocking   │      │503?   │   …    │ │ one snapshot
//!                    │  per-conn HTTP state machine │      ▼       │ exec N │ │ per batch
//!                    │  pipelining · timer wheel    │◀─ completions └────────┘─┘
//!                    └──────────────────────────────┘   + notify
//! ```
//!
//! * **Readiness, not threads.** One loop thread owns every socket
//!   (non-blocking `std::net`, registered with the `polling` shim — epoll on
//!   Linux, `poll(2)` anywhere POSIX). Connection capacity is an fd budget
//!   ([`ServerConfig::max_connections`]), not a thread count: tens of
//!   thousands of mostly-idle keep-alive sockets cost a slab slot each.
//! * **Admission control, twice.** A connection over the cap is answered
//!   `503` at the door and closed. A parsed request that does not fit the
//!   bounded executor queue is answered `503` in-stream. Either way overload
//!   sheds *fast and explicit* (clients see 503 and back off) rather than
//!   slow and silent. With [`ServerConfig::max_connections`]` == 0` the cap
//!   derives as `workers + queue_depth` — the exact capacity of the old
//!   thread-per-connection pool, so its overload contract is preserved.
//! * **Pipelining.** The loop parses *every* complete request buffered on a
//!   readable socket (incremental, resumable parsing — `try_parse_request`).
//!   Each request takes an ordered response slot; out-of-order completions
//!   wait in their slot so responses always leave in request order.
//! * **Batched execution.** Executor workers drain jobs in batches and run
//!   each batch through [`ph_core::Session::batch`]: one table-state snapshot
//!   (one read-lock hit + `Arc` bump) serves the whole batch instead of one
//!   per request. `workers == 0` selects **inline mode**: the loop executes
//!   queries itself, one shared snapshot per poll drain and zero cross-thread
//!   handoffs — the fastest shape on a single-core box.
//! * **Deadlines by timer wheel.** A hashed wheel (lazy re-validation, so a
//!   moved deadline never needs cancellation) enforces three clocks per
//!   connection: a *read* deadline armed at the first byte of a partial
//!   request and **never extended by trickle** (slowloris is closed at
//!   `read_timeout` no matter how diligently it drips), a *write* deadline on
//!   an undrained response backlog, and a long *idle* deadline for keep-alive
//!   sockets between requests.
//! * **Graceful shutdown.** [`Server::shutdown`] stops accepting, parses no
//!   new requests, answers everything already parsed (responses flip to
//!   `Connection: close`), flushes the query log, and joins every thread.
//!
//! Answers are bit-identical to the old pool (`tests/server_e2e.rs` runs
//! unmodified): the wire bytes come from the same `response_bytes` /
//! `answer_to_json` path, and batching only changes *when* a snapshot is
//! taken, never what it contains.

use std::collections::VecDeque;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant, SystemTime, UNIX_EPOCH};

use ph_core::{BatchSession, Session};
use ph_obs::{
    push_header, push_sample, span, Counter, Gauge, Histogram, Kind, Registry, SlowQuery,
    SlowRing, SpanRing, Stage, Trace,
};
use ph_types::PhError;
use polling::{Event, Poller};

use crate::http::{response_bytes, response_bytes_typed, try_parse_request, HttpError, Request};
use crate::ingest::dataset_from_body;
use crate::json::{obj, Json};
use crate::querylog::QueryLogWriter;
use crate::wire::{answer_to_json, error_body, status_for};

/// Poller key of the listening socket (connection keys are slab indices,
/// which stay far below this).
const LISTENER_KEY: usize = usize::MAX - 1;

/// Timer-wheel granularity. Deadlines fire within one tick of their instant.
const WHEEL_TICK: Duration = Duration::from_millis(25);

/// Timer-wheel slots. Deadlines further out than `WHEEL_TICK × SLOTS` wrap
/// and fire early; the lazy re-validation on fire reschedules them, so a
/// small table stays correct for arbitrarily long deadlines.
const WHEEL_SLOTS: usize = 256;

/// Most jobs one executor worker drains per wakeup — the batch that shares
/// one snapshot.
const EXEC_BATCH: usize = 64;

/// Read size per `read` call on a readable socket.
const READ_CHUNK: usize = 16 * 1024;

/// Tuning knobs of one server instance.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Executor worker threads draining the query queue in snapshot-sharing
    /// batches. `0` = inline mode: the event loop executes queries itself
    /// (no handoffs; best on one core, but a slow ingest then stalls the
    /// loop).
    pub workers: usize,
    /// Parsed requests that may wait in the executor queue before the server
    /// answers `503` in-stream. Also feeds the legacy connection-cap
    /// derivation (see [`ServerConfig::max_connections`]).
    pub queue_depth: usize,
    /// Largest request body accepted (bigger → `413`).
    pub max_body_bytes: usize,
    /// Deadline for receiving one complete request, armed at its first byte
    /// and never extended by partial progress — a client trickling a head
    /// byte-by-byte is closed at this deadline.
    pub read_timeout: Duration,
    /// Deadline for the peer to drain a pending response backlog.
    pub write_timeout: Duration,
    /// How long a keep-alive connection may sit idle *between* requests.
    /// Deliberately separate from `read_timeout`: holding mostly-idle
    /// sockets is the point of the event loop, stalling mid-request is not.
    pub idle_timeout: Duration,
    /// Concurrent-connection cap; over it, new connections get `503` at the
    /// door. `0` derives `workers + queue_depth` — the capacity (held +
    /// queued) of the retired thread-per-connection pool, preserving its
    /// admission contract for existing configs and tests.
    pub max_connections: usize,
    /// Where to append the query log (`None` → no log).
    pub query_log: Option<PathBuf>,
    /// Queries slower than this (end-to-end, microseconds) land in the
    /// `GET /debug/slow` forensics ring. `0` records every query.
    pub slow_query_threshold_us: u64,
    /// How many slow queries `GET /debug/slow` retains (oldest evicted).
    pub slow_query_cap: usize,
    /// Span capacity of the flight-recorder ring behind `/debug/slow` and
    /// `ph_query_stage_seconds` (varint/delta encoded; 64k spans < 1 MB).
    pub span_ring_spans: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            workers: std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1).max(4),
            queue_depth: 64,
            max_body_bytes: 8 * 1024 * 1024,
            read_timeout: Duration::from_secs(10),
            write_timeout: Duration::from_secs(10),
            idle_timeout: Duration::from_secs(60),
            max_connections: 0,
            query_log: None,
            slow_query_threshold_us: 100_000,
            slow_query_cap: 64,
            span_ring_spans: 16 * 1024,
        }
    }
}

impl ServerConfig {
    /// The effective connection cap (resolving the `0` legacy derivation).
    pub fn effective_max_connections(&self) -> usize {
        if self.max_connections == 0 {
            self.workers.saturating_add(self.queue_depth).max(1)
        } else {
            self.max_connections
        }
    }
}

/// Endpoints with their own metrics slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Endpoint {
    Query,
    Ingest,
    Tables,
    Stats,
    Healthz,
    Metrics,
    Debug,
    Other,
}

impl Endpoint {
    const ALL: [Endpoint; 8] = [
        Endpoint::Query,
        Endpoint::Ingest,
        Endpoint::Tables,
        Endpoint::Stats,
        Endpoint::Healthz,
        Endpoint::Metrics,
        Endpoint::Debug,
        Endpoint::Other,
    ];

    fn idx(self) -> usize {
        match self {
            Endpoint::Query => 0,
            Endpoint::Ingest => 1,
            Endpoint::Tables => 2,
            Endpoint::Stats => 3,
            Endpoint::Healthz => 4,
            Endpoint::Metrics => 5,
            Endpoint::Debug => 6,
            Endpoint::Other => 7,
        }
    }

    fn name(self) -> &'static str {
        match self {
            Endpoint::Query => "query",
            Endpoint::Ingest => "ingest",
            Endpoint::Tables => "tables",
            Endpoint::Stats => "stats",
            Endpoint::Healthz => "healthz",
            Endpoint::Metrics => "metrics",
            Endpoint::Debug => "debug",
            Endpoint::Other => "other",
        }
    }
}

/// One endpoint's registry handles: request/error counters plus the log₂
/// latency histogram that `/stats` quantiles and `/metrics` buckets both read.
struct EndpointMetrics {
    requests: Arc<Counter>,
    status_4xx: Arc<Counter>,
    status_5xx: Arc<Counter>,
    latency: Arc<Histogram>,
}

impl EndpointMetrics {
    fn new(registry: &Registry, name: &'static str) -> Self {
        let ep: &[(&str, &str)] = &[("endpoint", name)];
        Self {
            requests: registry.counter("ph_http_requests_total", "Requests served, by endpoint.", ep),
            status_4xx: registry.counter(
                "ph_http_errors_total",
                "Error responses, by endpoint and status class.",
                &[("endpoint", name), ("class", "4xx")],
            ),
            status_5xx: registry.counter(
                "ph_http_errors_total",
                "Error responses, by endpoint and status class.",
                &[("endpoint", name), ("class", "5xx")],
            ),
            latency: registry.histogram(
                "ph_http_request_seconds",
                "End-to-end request latency, by endpoint.",
                1e-6,
                ep,
            ),
        }
    }

    fn record(&self, status: u16, micros: u64) {
        self.requests.inc();
        if (400..500).contains(&status) {
            self.status_4xx.inc();
        } else if status >= 500 {
            self.status_5xx.inc();
        }
        self.latency.observe(micros);
    }
}

/// Every serving metric, backed by one [`Registry`] so `GET /metrics` renders
/// the lot without bespoke glue. Handles are relaxed atomics; the registry
/// mutex is touched only here (startup) and at scrape.
pub(crate) struct Metrics {
    registry: Registry,
    endpoints: [EndpointMetrics; 8],
    /// Admission `503`s: connections shed at the door plus requests shed at
    /// the executor queue.
    rejected: Arc<Counter>,
    /// Connections admitted past the cap since start.
    accepted: Arc<Counter>,
    /// Currently open connections.
    open: Arc<Gauge>,
    /// Requests parsed while an earlier request on the same connection was
    /// still unanswered — the pipelining win counter.
    pipelined: Arc<Counter>,
    /// `/query` requests executed (any status).
    queries: Arc<Counter>,
    /// `/ingest` batches applied successfully.
    ingest_batches: Arc<Counter>,
    /// Per-stage time from finished traces, indexed by [`Stage::code`].
    stages: Vec<Arc<Histogram>>,
    /// Jobs drained per executor wakeup — the snapshot-sharing batch size.
    exec_batch: Arc<Histogram>,
    /// Time the event loop spent blocked in the poller per iteration.
    poll_wait: Arc<Histogram>,
    /// Readiness events delivered per wakeup.
    wake_events: Arc<Histogram>,
    /// Timer-wheel entries fired (before lazy re-validation).
    timer_fired: Arc<Counter>,
}

impl Metrics {
    fn new() -> Self {
        let registry = Registry::new();
        let endpoints = Endpoint::ALL.map(|e| EndpointMetrics::new(&registry, e.name()));
        let stages = ph_obs::trace::ALL_STAGES
            .iter()
            .map(|s| {
                registry.histogram(
                    "ph_query_stage_seconds",
                    "Time spent per pipeline stage, from request traces.",
                    1e-9,
                    &[("stage", s.name())],
                )
            })
            .collect();
        Self {
            endpoints,
            rejected: registry.counter(
                "ph_requests_rejected_total",
                "Admission 503s: connections shed at the door plus requests shed at the executor queue.",
                &[],
            ),
            accepted: registry.counter(
                "ph_connections_accepted_total",
                "Connections admitted past the cap since start.",
                &[],
            ),
            open: registry.gauge("ph_connections_open", "Currently open connections.", &[]),
            pipelined: registry.counter(
                "ph_pipelined_requests_total",
                "Requests parsed behind an unanswered request on the same connection.",
                &[],
            ),
            queries: registry.counter("ph_queries_total", "Queries executed (any status).", &[]),
            ingest_batches: registry.counter(
                "ph_ingest_batches_total",
                "Ingest batches applied successfully.",
                &[],
            ),
            stages,
            exec_batch: registry.histogram(
                "ph_exec_batch_size",
                "Jobs drained per executor wakeup (one session snapshot per batch).",
                1.0,
                &[],
            ),
            poll_wait: registry.histogram(
                "ph_loop_poll_wait_seconds",
                "Time the event loop spent blocked in the poller per iteration.",
                1e-6,
                &[],
            ),
            wake_events: registry.histogram(
                "ph_loop_events_per_wake",
                "Readiness events delivered per event-loop wakeup.",
                1.0,
                &[],
            ),
            timer_fired: registry.counter(
                "ph_timer_wheel_fired_total",
                "Timer-wheel entries fired, before lazy re-validation.",
                &[],
            ),
            registry,
        }
    }

    fn endpoint(&self, e: Endpoint) -> &EndpointMetrics {
        // ph-lint: allow(no-panic-serving) — idx() enumerates Endpoint::ALL, 0..8
        &self.endpoints[e.idx()]
    }

    /// The per-stage histogram for `stage`, if registered.
    fn stage(&self, stage: Stage) -> Option<&Histogram> {
        self.stages.get(stage.code() as usize).map(Arc::as_ref)
    }

    fn to_json(&self) -> Json {
        Json::Obj(
            Endpoint::ALL
                .iter()
                .map(|e| {
                    let m = self.endpoint(*e);
                    (
                        e.name().to_string(),
                        obj(vec![
                            ("requests", Json::Num(m.requests.get() as f64)),
                            ("status_4xx", Json::Num(m.status_4xx.get() as f64)),
                            ("status_5xx", Json::Num(m.status_5xx.get() as f64)),
                            ("p50_us", Json::Num(m.latency.quantile(0.50))),
                            ("p90_us", Json::Num(m.latency.quantile(0.90))),
                            ("p99_us", Json::Num(m.latency.quantile(0.99))),
                        ]),
                    )
                })
                .collect(),
        )
    }
}

/// Connection- and queue-level serving counters, as reported under
/// `server.connections` in `GET /stats` and by [`Server::stats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServerStats {
    /// Currently open connections.
    pub open_connections: u64,
    /// Connections admitted since start.
    pub accepted_connections: u64,
    /// Admission `503`s (door + executor queue).
    pub rejected_503: u64,
    /// Requests parsed behind an unanswered request on the same connection.
    pub pipelined_requests: u64,
    /// High-water mark of the executor queue depth.
    pub executor_queue_hwm: u64,
}

/// One parsed request handed to the executor.
struct Job {
    key: usize,
    gen: u64,
    seq: u64,
    keep_alive: bool,
    req: Request,
    /// The request's trace (origin at its first byte, HTTP-read and admission
    /// spans already recorded); `None` when tracing is off.
    trace: Option<Trace>,
    /// When the job entered the executor queue — the queue-wait span's start.
    queued_at: Instant,
}

/// One finished response headed back to the loop.
struct Done {
    key: usize,
    gen: u64,
    seq: u64,
    bytes: Vec<u8>,
    keep_alive: bool,
}

/// The bounded handoff between the event loop and the executor workers.
struct WorkQueue {
    inner: Mutex<WorkInner>,
    ready: Condvar,
    cap: usize,
    /// Deepest the queue has been — the backlog signal operators watch.
    hwm: AtomicU64,
}

struct WorkInner {
    q: VecDeque<Job>,
    closed: bool,
}

impl WorkQueue {
    fn new(cap: usize) -> Self {
        Self {
            inner: Mutex::new(WorkInner { q: VecDeque::new(), closed: false }),
            ready: Condvar::new(),
            cap: cap.max(1),
            hwm: AtomicU64::new(0),
        }
    }

    /// Admits `job` if there is room; hands it back (for the in-stream 503)
    /// otherwise.
    ///
    /// Poison policy: the mutex is only held for these few lines, so a
    /// poisoned lock means a thread panicked mid-queue-op. That is treated as
    /// shutdown — the loop sheds requests (503) instead of propagating the
    /// panic and taking the whole server down with it.
    // The Err variant carries the whole Job back on purpose: the caller still
    // owns the parsed request and must fill its pipeline slot with the 503.
    // Boxing it would put an allocation on the admission path to move 152
    // bytes that the success path moves anyway.
    #[allow(clippy::result_large_err)]
    fn try_push(&self, job: Job) -> Result<(), Job> {
        let Ok(mut inner) = self.inner.lock() else { return Err(job) };
        if inner.closed || inner.q.len() >= self.cap {
            return Err(job);
        }
        inner.q.push_back(job);
        self.hwm.fetch_max(inner.q.len() as u64, Ordering::Relaxed);
        drop(inner);
        self.ready.notify_one();
        Ok(())
    }

    /// Blocks for the next batch (up to `max` jobs in one lock hold); `None`
    /// once closed and drained — or if the lock is poisoned (see
    /// [`WorkQueue::try_push`]): surviving workers drain out exactly as on a
    /// normal shutdown.
    fn pop_batch(&self, max: usize) -> Option<Vec<Job>> {
        let mut inner = self.inner.lock().ok()?;
        loop {
            if !inner.q.is_empty() {
                let n = inner.q.len().min(max.max(1));
                return Some(inner.q.drain(..n).collect());
            }
            if inner.closed {
                return None;
            }
            inner = self.ready.wait(inner).ok()?;
        }
    }

    /// Closes the queue. Shutdown must win even over poison, so the guard is
    /// recovered rather than discarded: `closed` is always set.
    fn close(&self) {
        self.inner.lock().unwrap_or_else(|p| p.into_inner()).closed = true;
        self.ready.notify_all();
    }
}

/// State shared by the loop, the executor workers and the handle.
pub(crate) struct Shared {
    pub(crate) session: Arc<Session>,
    cfg: ServerConfig,
    pub(crate) metrics: Metrics,
    qlog: Option<QueryLogWriter>,
    poller: Poller,
    work: WorkQueue,
    done: Mutex<Vec<Done>>,
    stop: AtomicBool,
    started: Instant,
    /// Flight recorder: the most recent spans across all traced requests.
    span_ring: SpanRing,
    /// Slow-query forensics behind `GET /debug/slow`.
    slow: SlowRing,
    /// Monotone trace IDs for the span ring.
    trace_seq: AtomicU64,
}

impl Shared {
    /// Drains the executing thread's finished trace into the per-stage
    /// histograms, the span flight recorder, and — for a slow query — the
    /// forensics ring. No-op when the request ran untraced.
    fn finish_trace(&self, endpoint: Endpoint, status: u16, total_us: u64, req: &Request) {
        let Some(trace) = ph_obs::trace::take() else { return };
        let spans = trace.into_spans();
        for s in &spans {
            if let Some(h) = self.metrics.stage(s.stage) {
                h.observe(s.dur_ns);
            }
        }
        let trace_id = self.trace_seq.fetch_add(1, Ordering::Relaxed) + 1;
        self.span_ring.push_trace(trace_id, &spans);
        // End-to-end latency from the trace origin (first byte): the furthest
        // span end covers HTTP read and queue wait, which the executor-side
        // clock does not.
        let total_us = spans
            .iter()
            .map(|s| s.start_ns.saturating_add(s.dur_ns) / 1_000)
            .max()
            .unwrap_or(0)
            .max(total_us);
        if endpoint == Endpoint::Query && total_us >= self.slow.threshold_us() {
            // Slow path only: re-deriving the canonical fingerprint re-parses
            // the SQL, which is fine at forensics frequency. The raw text is
            // never retained — unparseable queries fall back to a text hash.
            let fingerprint = query_text(req)
                .map(|sql| match ph_sql::parse_query(&sql) {
                    Ok(q) => q.fingerprint(),
                    Err(_) => ph_types::fnv1a(sql.as_bytes()),
                })
                .unwrap_or(0);
            let unix_ms = SystemTime::now()
                .duration_since(UNIX_EPOCH)
                .map(|d| d.as_millis() as u64)
                .unwrap_or(0);
            self.slow.offer(SlowQuery { fingerprint, total_us, status, unix_ms, spans });
        }
    }
}

/// A running server. Dropping the handle **without** calling
/// [`Server::shutdown`] detaches the threads (the process exit reaps them);
/// call `shutdown` for a deterministic, log-flushed stop.
pub struct Server {
    shared: Arc<Shared>,
    local_addr: SocketAddr,
    event_loop: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Binds `addr` (use port 0 for an ephemeral port) and starts the event
    /// loop and executor threads, serving `session`.
    pub fn bind(
        session: Arc<Session>,
        addr: impl ToSocketAddrs,
        cfg: ServerConfig,
    ) -> Result<Server, PhError> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        // std's bind hardcodes a listen backlog of 128, which a local connect
        // burst overflows in milliseconds whenever the loop thread loses the
        // CPU — every overflowed SYN then stalls that client ~1 s on a
        // retransmit. Resize the queue to cover the connection budget (the
        // kernel clamps to net.core.somaxconn); best-effort, since serving
        // still works at the default depth.
        let backlog = cfg.effective_max_connections().clamp(128, 4096) as i32;
        let _ = polling::set_listen_backlog(&listener, backlog);
        let local_addr = listener.local_addr()?;
        let qlog = match &cfg.query_log {
            Some(path) => Some(QueryLogWriter::create(path)?),
            None => None,
        };
        let poller = Poller::new()?;
        poller.add(&listener, Event::readable(LISTENER_KEY))?;
        let exec_n = cfg.workers;
        let shared = Arc::new(Shared {
            session,
            work: WorkQueue::new(cfg.queue_depth),
            metrics: Metrics::new(),
            qlog,
            poller,
            done: Mutex::new(Vec::new()),
            stop: AtomicBool::new(false),
            started: Instant::now(),
            span_ring: SpanRing::new(cfg.span_ring_spans),
            slow: SlowRing::new(cfg.slow_query_cap, cfg.slow_query_threshold_us),
            trace_seq: AtomicU64::new(0),
            cfg,
        });
        let event_loop = {
            let shared = shared.clone();
            std::thread::Builder::new()
                .name("ph-loop".into())
                .spawn(move || EventLoop::new(&shared, listener).run())
                .map_err(|e| PhError::Io(e.to_string()))?
        };
        let workers = (0..exec_n)
            .map(|i| {
                let shared = shared.clone();
                std::thread::Builder::new()
                    .name(format!("ph-exec-{i}"))
                    .spawn(move || executor_loop(&shared))
                    .map_err(|e| PhError::Io(e.to_string()))
            })
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Server { shared, local_addr, event_loop: Some(event_loop), workers })
    }

    /// The bound address (with the resolved port).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Admission `503`s so far (door + executor queue).
    pub fn rejected(&self) -> u64 {
        self.shared.metrics.rejected.get()
    }

    /// Connection- and queue-level counters.
    pub fn stats(&self) -> ServerStats {
        let m = &self.shared.metrics;
        ServerStats {
            open_connections: m.open.get().max(0) as u64,
            accepted_connections: m.accepted.get(),
            rejected_503: m.rejected.get(),
            pipelined_requests: m.pipelined.get(),
            executor_queue_hwm: self.shared.work.hwm.load(Ordering::Relaxed),
        }
    }

    /// The Prometheus text exposition `GET /metrics` serves.
    pub fn metrics_text(&self) -> String {
        metrics_text(&self.shared)
    }

    /// Stops accepting, answers every request already parsed, flushes the
    /// query log and joins every thread.
    pub fn shutdown(mut self) {
        self.shared.stop.store(true, Ordering::Release);
        let _ = self.shared.poller.notify();
        if let Some(h) = self.event_loop.take() {
            let _ = h.join();
        }
        self.shared.work.close();
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
        if let Some(qlog) = &self.shared.qlog {
            qlog.flush();
        }
    }
}

// ---------------------------------------------------------------------------
// Executor
// ---------------------------------------------------------------------------

fn executor_loop(shared: &Shared) {
    while let Some(jobs) = shared.work.pop_batch(EXEC_BATCH) {
        // One snapshot pin per table for the whole batch — the point of
        // draining in batches.
        shared.metrics.exec_batch.observe(jobs.len() as u64);
        let mut batch = shared.session.batch();
        let mut done = Vec::with_capacity(jobs.len());
        for mut job in jobs {
            if let Some(mut trace) = job.trace.take() {
                trace.record_between(Stage::QueueWait, job.queued_at, Instant::now());
                ph_obs::trace::install(trace);
            }
            let (_, _, bytes) = execute_traced(shared, &mut batch, &job.req, job.keep_alive);
            done.push(Done {
                key: job.key,
                gen: job.gen,
                seq: job.seq,
                bytes,
                keep_alive: job.keep_alive,
            });
        }
        {
            let mut pending = shared.done.lock().unwrap_or_else(|p| p.into_inner());
            pending.append(&mut done);
        }
        let _ = shared.poller.notify();
    }
}

/// The request root stage for tracing, by path: queries and ingests get a
/// whole-request root span; everything else runs untraced.
fn root_stage(req: &Request) -> Option<Stage> {
    match req.path.as_str() {
        "/query" => Some(Stage::Query),
        "/ingest" => Some(Stage::Ingest),
        _ => None,
    }
}

/// Runs one executor-bound request under its installed trace (if any): a root
/// span wraps execution and serialization, endpoint metrics and the query log
/// record the outcome, and the finished trace drains into the stage
/// histograms and forensics rings.
fn execute_traced(
    shared: &Shared,
    batch: &mut BatchSession<'_>,
    req: &Request,
    keep_alive: bool,
) -> (Endpoint, u16, Vec<u8>) {
    let t0 = Instant::now();
    let traced = ph_obs::trace::is_active();
    let root = root_stage(req).map(span);
    let (endpoint, status, body) = execute_request(shared, batch, req);
    let bytes = {
        let _serialize = span(Stage::Serialize);
        response_bytes(status, &body.to_string(), keep_alive)
    };
    drop(root);
    let micros = t0.elapsed().as_micros() as u64;
    shared.metrics.endpoint(endpoint).record(status, micros);
    match endpoint {
        Endpoint::Query => {
            shared.metrics.queries.inc();
            if let Some(qlog) = &shared.qlog {
                qlog.append(status, micros, &query_text(req).unwrap_or_default());
            }
        }
        Endpoint::Ingest if status == 200 => shared.metrics.ingest_batches.inc(),
        _ => {}
    }
    if traced {
        shared.finish_trace(endpoint, status, micros, req);
    }
    (endpoint, status, bytes)
}

// ---------------------------------------------------------------------------
// Timer wheel
// ---------------------------------------------------------------------------

/// Hashed timer wheel with lazy re-validation: entries are `(key, gen)`
/// hints, not authoritative deadlines. On fire the loop re-reads the
/// connection's *current* deadlines — an entry for a dead connection (gen
/// mismatch) is dropped, one for a moved deadline reschedules itself. So
/// arming is O(1), cancellation is free, and deadlines past one wheel
/// rotation merely fire a few cheap revalidations early.
struct TimerWheel {
    slots: Vec<Vec<(usize, u64)>>,
    origin: Instant,
    /// Ticks fully drained so far.
    cursor: u64,
}

impl TimerWheel {
    fn new(origin: Instant) -> Self {
        Self { slots: (0..WHEEL_SLOTS).map(|_| Vec::new()).collect(), origin, cursor: 0 }
    }

    fn tick_of(&self, t: Instant) -> u64 {
        (t.saturating_duration_since(self.origin).as_millis() / WHEEL_TICK.as_millis().max(1))
            as u64
    }

    fn schedule(&mut self, key: usize, gen: u64, deadline: Instant) {
        // +1 so the entry fires at-or-after the deadline, never a tick short;
        // never behind the cursor or it would sit un-drained for a rotation.
        let tick = (self.tick_of(deadline) + 1).max(self.cursor + 1);
        if let Some(slot) = self.slots.get_mut((tick % WHEEL_SLOTS as u64) as usize) {
            slot.push((key, gen));
        }
    }

    /// All entries whose tick has passed. Bounded: a loop stalled longer than
    /// one rotation drains every slot exactly once.
    fn drain_expired(&mut self, now: Instant) -> Vec<(usize, u64)> {
        let target = self.tick_of(now);
        if target <= self.cursor {
            return Vec::new();
        }
        let steps = (target - self.cursor).min(WHEEL_SLOTS as u64);
        let mut out = Vec::new();
        for _ in 0..steps {
            self.cursor += 1;
            if let Some(slot) = self.slots.get_mut((self.cursor % WHEEL_SLOTS as u64) as usize) {
                out.append(slot);
            }
        }
        self.cursor = target;
        out
    }

    /// Time until the next non-empty slot fires, if any entry is armed.
    fn next_wakeup(&self, now: Instant) -> Option<Duration> {
        let mut nearest: Option<u64> = None;
        for (i, slot) in self.slots.iter().enumerate() {
            if slot.is_empty() {
                continue;
            }
            // The slot's next firing tick at or after cursor+1.
            let base = self.cursor + 1;
            let phase = (i as u64 + WHEEL_SLOTS as u64 - base % WHEEL_SLOTS as u64)
                % WHEEL_SLOTS as u64;
            let tick = base + phase;
            nearest = Some(nearest.map_or(tick, |n| n.min(tick)));
        }
        let tick = nearest?;
        let due = self.origin + WHEEL_TICK.saturating_mul(tick as u32).max(WHEEL_TICK);
        Some(due.saturating_duration_since(now).max(Duration::from_millis(1)))
    }
}

// ---------------------------------------------------------------------------
// Event loop
// ---------------------------------------------------------------------------

/// One connection's state machine.
struct Conn {
    stream: TcpStream,
    /// Generation stamp: completions and wheel entries carry it, so a slot
    /// reused after a close never receives a stale delivery.
    gen: u64,
    /// Unparsed received bytes (at most one partial request: complete
    /// requests are drained eagerly).
    buf: Vec<u8>,
    /// Serialized responses not yet accepted by the socket.
    out: Vec<u8>,
    out_pos: usize,
    /// Ordered response slots: index `seq - base_seq`. A request takes a
    /// `None` slot at parse time; its response fills it; the front drains to
    /// `out` in order.
    inflight: VecDeque<Option<(Vec<u8>, bool)>>,
    base_seq: u64,
    next_seq: u64,
    /// No more requests will be parsed; close once every slot has flushed.
    closing: bool,
    /// Peer sent EOF (half-close): serve what's buffered, then close.
    peer_closed: bool,
    /// Armed at the first byte of a partial request; never extended.
    read_deadline: Option<Instant>,
    /// When the first byte of the currently-buffered request arrived — the
    /// trace origin, so the HTTP-read span starts at offset zero.
    req_t0: Option<Instant>,
    /// Armed when a response backlog stalls in `out`.
    write_deadline: Option<Instant>,
    /// Rolling keep-alive deadline between requests.
    idle_deadline: Instant,
    /// Whether the poller registration currently includes write interest.
    interest_w: bool,
}

struct EventLoop<'a> {
    shared: &'a Shared,
    listener: TcpListener,
    conns: Vec<Option<Conn>>,
    free: Vec<usize>,
    gen_counter: u64,
    wheel: TimerWheel,
    open: usize,
    max_conns: usize,
    /// Set once `stop` is observed: accepting has ceased, idle connections
    /// are swept, the loop drains in-flight work then exits.
    stopping: bool,
}

impl<'a> EventLoop<'a> {
    fn new(shared: &'a Shared, listener: TcpListener) -> Self {
        let max_conns = shared.cfg.effective_max_connections();
        EventLoop {
            shared,
            listener,
            conns: Vec::new(),
            free: Vec::new(),
            gen_counter: 0,
            wheel: TimerWheel::new(Instant::now()),
            open: 0,
            max_conns,
            stopping: false,
        }
    }

    fn run(mut self) {
        let shared = self.shared;
        let inline = shared.cfg.workers == 0;
        let mut events: Vec<Event> = Vec::new();
        loop {
            if !self.stopping && shared.stop.load(Ordering::Acquire) {
                self.begin_shutdown();
            }
            if self.stopping && self.open == 0 {
                return;
            }
            let now = Instant::now();
            let timeout = match self.wheel.next_wakeup(now) {
                Some(d) => Some(d.min(Duration::from_secs(1))),
                None => Some(Duration::from_secs(1)),
            };
            let wait_t0 = Instant::now();
            if shared.poller.wait(&mut events, timeout).is_err() {
                // A failing poller cannot serve; back off instead of spinning.
                std::thread::sleep(Duration::from_millis(5));
            }
            shared.metrics.poll_wait.observe(wait_t0.elapsed().as_micros() as u64);
            shared.metrics.wake_events.observe(events.len() as u64);
            // Responses finished by the executor first: they free slots and
            // may retire connections before new bytes are read.
            let finished: Vec<Done> =
                std::mem::take(&mut *shared.done.lock().unwrap_or_else(|p| p.into_inner()));
            for done in finished {
                self.apply_done(done);
            }
            // One pinned snapshot per poll drain in inline mode.
            let mut batch = if inline { Some(shared.session.batch()) } else { None };
            for i in 0..events.len() {
                let Some(ev) = events.get(i).copied() else { break };
                if ev.key == LISTENER_KEY {
                    if !self.stopping {
                        self.accept_ready();
                    }
                    continue;
                }
                if ev.writable {
                    self.write_out(ev.key);
                }
                if ev.readable {
                    self.conn_readable(ev.key, &mut batch);
                }
            }
            drop(batch);
            let now = Instant::now();
            for (key, gen) in self.wheel.drain_expired(now) {
                shared.metrics.timer_fired.inc();
                self.check_deadlines(key, gen, now);
            }
        }
    }

    /// Stop accepting and sweep connections that owe nothing.
    fn begin_shutdown(&mut self) {
        self.stopping = true;
        let _ = self.shared.poller.delete(&self.listener);
        for key in 0..self.conns.len() {
            let idle = match self.conns.get_mut(key).and_then(|s| s.as_mut()) {
                Some(conn) => {
                    conn.closing = true;
                    conn.buf.clear();
                    conn.inflight.is_empty() && conn.out_pos >= conn.out.len()
                }
                None => false,
            };
            if idle {
                self.close(key);
            }
        }
    }

    fn accept_ready(&mut self) {
        loop {
            let stream = match self.listener.accept() {
                Ok((stream, _)) => stream,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
                // Transient accept failures (ECONNABORTED, EMFILE under fd
                // exhaustion): stop this drain; the next readiness retries.
                Err(_) => return,
            };
            if self.shared.stop.load(Ordering::Acquire) {
                continue;
            }
            if self.open >= self.max_conns {
                // Admission control: shed at the door, explicitly.
                self.shared.metrics.rejected.inc();
                reject_at_door(stream);
                continue;
            }
            if stream.set_nonblocking(true).is_err() {
                continue;
            }
            let _ = stream.set_nodelay(true);
            let now = Instant::now();
            self.gen_counter += 1;
            let conn = Conn {
                stream,
                gen: self.gen_counter,
                buf: Vec::new(),
                out: Vec::new(),
                out_pos: 0,
                inflight: VecDeque::new(),
                base_seq: 0,
                next_seq: 0,
                closing: false,
                peer_closed: false,
                read_deadline: None,
                req_t0: None,
                write_deadline: None,
                idle_deadline: now + self.shared.cfg.idle_timeout,
                interest_w: false,
            };
            let key = match self.free.pop() {
                Some(k) => k,
                None => {
                    self.conns.push(None);
                    self.conns.len() - 1
                }
            };
            let registered = self
                .shared
                .poller
                .add(&conn.stream, Event::readable(key))
                .is_ok();
            if !registered {
                self.free.push(key);
                continue;
            }
            let gen = conn.gen;
            let deadline = conn.idle_deadline;
            if let Some(slot) = self.conns.get_mut(key) {
                *slot = Some(conn);
            }
            self.wheel.schedule(key, gen, deadline);
            self.open += 1;
            self.shared.metrics.accepted.inc();
            self.shared.metrics.open.add(1);
        }
    }

    fn conn_readable(&mut self, key: usize, batch: &mut Option<BatchSession<'_>>) {
        let mut fatal = false;
        {
            let Some(conn) = self.conns.get_mut(key).and_then(|s| s.as_mut()) else { return };
            if conn.closing {
                // Drain the socket so level-triggered readiness quiesces, but
                // parse nothing further.
                let mut chunk = [0u8; READ_CHUNK];
                loop {
                    match conn.stream.read(&mut chunk) {
                        Ok(0) => {
                            conn.peer_closed = true;
                            break;
                        }
                        Ok(_) => continue,
                        Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                        Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                        Err(_) => {
                            fatal = true;
                            break;
                        }
                    }
                }
            } else {
                let mut chunk = [0u8; READ_CHUNK];
                loop {
                    match conn.stream.read(&mut chunk) {
                        Ok(0) => {
                            conn.peer_closed = true;
                            break;
                        }
                        // Read's contract bounds n by the buffer length.
                        Ok(n) => conn.buf.extend_from_slice(chunk.get(..n).unwrap_or(&chunk)),
                        Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                        Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                        Err(_) => {
                            fatal = true;
                            break;
                        }
                    }
                }
                if !conn.buf.is_empty() && conn.req_t0.is_none() {
                    // First byte of the next request this wake: the trace
                    // origin (and the span clock's zero) for that request.
                    conn.req_t0 = Some(Instant::now());
                }
            }
        }
        if fatal {
            return self.close(key);
        }
        self.parse_requests(key, batch);
        self.after_read(key);
    }

    /// Drain every complete pipelined request buffered on `key`.
    fn parse_requests(&mut self, key: usize, batch: &mut Option<BatchSession<'_>>) {
        let max_body = self.shared.cfg.max_body_bytes;
        loop {
            enum Parsed {
                Req { seq: u64, keep: bool, req: Request, trace: Option<Trace> },
                Fatal { seq: u64, status: u16, kind: &'static str, message: String },
                Silent,
                Idle,
            }
            let parsed = {
                let Some(conn) = self.conns.get_mut(key).and_then(|s| s.as_mut()) else {
                    return;
                };
                if conn.closing {
                    conn.buf.clear();
                    return;
                }
                match try_parse_request(&mut conn.buf, max_body) {
                    Ok(Some(req)) => {
                        // The first request parsed this wake is anchored at
                        // its observed first byte; pipelined successors start
                        // now. Only executor-bound endpoints are traced.
                        let t0 = conn.req_t0.take();
                        let trace = if ph_obs::tracing_on() && root_stage(&req).is_some() {
                            let origin = t0.unwrap_or_else(Instant::now);
                            let mut t = Trace::with_origin(origin);
                            t.record_between(Stage::HttpRead, origin, Instant::now());
                            Some(t)
                        } else {
                            None
                        };
                        let seq = conn.next_seq;
                        conn.next_seq += 1;
                        conn.inflight.push_back(None);
                        if conn.inflight.len() > 1 {
                            self.shared.metrics.pipelined.inc();
                        }
                        let keep =
                            req.keep_alive() && !self.shared.stop.load(Ordering::Acquire);
                        if !keep {
                            // The response will say `Connection: close`; later
                            // pipelined bytes are dead.
                            conn.closing = true;
                            conn.buf.clear();
                        }
                        conn.idle_deadline = Instant::now() + self.shared.cfg.idle_timeout;
                        Parsed::Req { seq, keep, req, trace }
                    }
                    Ok(None) => Parsed::Idle,
                    Err(HttpError::Malformed(m)) => {
                        let seq = conn.next_seq;
                        conn.next_seq += 1;
                        conn.inflight.push_back(None);
                        conn.closing = true;
                        conn.buf.clear();
                        Parsed::Fatal { seq, status: 400, kind: "bad_request", message: m }
                    }
                    Err(HttpError::TooLarge(m)) => {
                        let seq = conn.next_seq;
                        conn.next_seq += 1;
                        conn.inflight.push_back(None);
                        conn.closing = true;
                        conn.buf.clear();
                        Parsed::Fatal { seq, status: 413, kind: "too_large", message: m }
                    }
                    Err(_) => Parsed::Silent,
                }
            };
            match parsed {
                Parsed::Req { seq, keep, req, trace } => {
                    self.route(key, seq, keep, req, trace, batch);
                }
                Parsed::Fatal { seq, status, kind, message } => {
                    let body = error_body(status, kind, &message, None);
                    self.fill(key, seq, response_bytes(status, &body.to_string(), false), false);
                    return;
                }
                Parsed::Silent => return self.close(key),
                Parsed::Idle => return,
            }
        }
    }

    /// Dispatch one parsed request: loop-served endpoints answer inline;
    /// query/ingest go to the executor (or run on the inline batch).
    fn route(
        &mut self,
        key: usize,
        seq: u64,
        keep: bool,
        req: Request,
        mut trace: Option<Trace>,
        batch: &mut Option<BatchSession<'_>>,
    ) {
        let shared = self.shared;
        let gen = match self.conns.get(key).and_then(|s| s.as_ref()) {
            Some(conn) => conn.gen,
            None => return,
        };
        let t0 = Instant::now();
        if req.method == "GET" && req.path == "/metrics" {
            // Text exposition, not JSON: answered here instead of route_inline.
            let text = metrics_text(shared);
            let micros = t0.elapsed().as_micros() as u64;
            shared.metrics.endpoint(Endpoint::Metrics).record(200, micros);
            let bytes =
                response_bytes_typed(200, "text/plain; version=0.0.4", &text, keep);
            self.fill(key, seq, bytes, keep);
            return;
        }
        if let Some((endpoint, status, body)) = route_inline(shared, &req) {
            let micros = t0.elapsed().as_micros() as u64;
            shared.metrics.endpoint(endpoint).record(status, micros);
            self.fill(key, seq, response_bytes(status, &body.to_string(), keep), keep);
            return;
        }
        if let Some(b) = batch.as_mut() {
            // Inline mode: no queue, so admission is a zero-width marker and
            // the trace installs on the loop thread itself.
            if let Some(mut t) = trace.take() {
                let now = Instant::now();
                t.record_between(Stage::Admission, t0, now);
                ph_obs::trace::install(t);
            }
            let (_, _, bytes) = execute_traced(shared, b, &req, keep);
            self.fill(key, seq, bytes, keep);
            return;
        }
        if let Some(t) = trace.as_mut() {
            t.record_between(Stage::Admission, t0, Instant::now());
        }
        let job = Job { key, gen, seq, keep_alive: keep, req, trace, queued_at: Instant::now() };
        if shared.work.try_push(job).is_err() {
            // Admission control, stage two: the executor queue is full.
            shared.metrics.rejected.inc();
            let body = error_body(
                503,
                "overload",
                "server at capacity (executor queue full); retry with backoff",
                None,
            );
            self.fill(key, seq, response_bytes(503, &body.to_string(), keep), keep);
        }
    }

    /// A finished executor response; dropped if the connection died or the
    /// slot was reused (generation mismatch).
    fn apply_done(&mut self, done: Done) {
        let live = self
            .conns
            .get(done.key)
            .and_then(|s| s.as_ref())
            .is_some_and(|c| c.gen == done.gen);
        if live {
            self.fill(done.key, done.seq, done.bytes, done.keep_alive);
        }
    }

    /// Deliver a response into its ordered slot and flush whatever is ready.
    fn fill(&mut self, key: usize, seq: u64, bytes: Vec<u8>, keep: bool) {
        {
            let Some(conn) = self.conns.get_mut(key).and_then(|s| s.as_mut()) else { return };
            let Some(idx) = seq.checked_sub(conn.base_seq) else { return };
            match conn.inflight.get_mut(idx as usize) {
                Some(slot) => *slot = Some((bytes, keep)),
                None => return,
            }
            // Drain the in-order prefix of filled slots into the write buffer.
            while matches!(conn.inflight.front(), Some(Some(_))) {
                if let Some(Some((bytes, keep))) = conn.inflight.pop_front() {
                    conn.base_seq += 1;
                    conn.out.extend_from_slice(&bytes);
                    if !keep {
                        // This response closes the connection: everything
                        // behind it is dead. base_seq jumps so stale
                        // completions fall out of range.
                        conn.closing = true;
                        conn.buf.clear();
                        conn.inflight.clear();
                        conn.base_seq = conn.next_seq;
                        break;
                    }
                }
            }
        }
        self.write_out(key);
    }

    /// Push the write buffer into the socket as far as it will go.
    fn write_out(&mut self, key: usize) {
        enum Outcome {
            Close,
            Drained { close: bool },
            Stalled { arm: Option<(u64, Instant)> },
        }
        let outcome = {
            let Some(conn) = self.conns.get_mut(key).and_then(|s| s.as_mut()) else { return };
            let mut failed = false;
            while conn.out_pos < conn.out.len() {
                let pending = conn.out.get(conn.out_pos..).unwrap_or(&[]);
                match conn.stream.write(pending) {
                    Ok(0) => {
                        failed = true;
                        break;
                    }
                    Ok(n) => conn.out_pos += n,
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(_) => {
                        failed = true;
                        break;
                    }
                }
            }
            if failed {
                Outcome::Close
            } else if conn.out_pos >= conn.out.len() {
                conn.out.clear();
                conn.out_pos = 0;
                conn.write_deadline = None;
                conn.idle_deadline = Instant::now() + self.shared.cfg.idle_timeout;
                Outcome::Drained {
                    close: (conn.closing || conn.peer_closed) && conn.inflight.is_empty(),
                }
            } else {
                let arm = if conn.write_deadline.is_none() {
                    let deadline = Instant::now() + self.shared.cfg.write_timeout;
                    conn.write_deadline = Some(deadline);
                    Some((conn.gen, deadline))
                } else {
                    None
                };
                Outcome::Stalled { arm }
            }
        };
        match outcome {
            Outcome::Close => self.close(key),
            Outcome::Drained { close: true } => self.close(key),
            Outcome::Drained { close: false } => self.update_interest(key),
            Outcome::Stalled { arm } => {
                if let Some((gen, deadline)) = arm {
                    self.wheel.schedule(key, gen, deadline);
                }
                self.update_interest(key);
            }
        }
    }

    /// Post-read bookkeeping: arm/clear the read deadline for a partial
    /// request, honor a half-close, retire a finished connection.
    fn after_read(&mut self, key: usize) {
        let mut arm: Option<(u64, Instant)> = None;
        let close_now;
        {
            let Some(conn) = self.conns.get_mut(key).and_then(|s| s.as_mut()) else { return };
            if conn.peer_closed {
                // Whatever was buffered has been parsed; nothing more can
                // arrive. Finish what is owed, then close.
                conn.closing = true;
                conn.buf.clear();
            }
            if conn.buf.is_empty() || conn.closing {
                conn.read_deadline = None;
            } else if conn.read_deadline.is_none() {
                // First byte of a partial request: the whole message must
                // arrive within read_timeout. Deliberately never extended —
                // trickling bytes (slowloris) does not push it back.
                let deadline = Instant::now() + self.shared.cfg.read_timeout;
                conn.read_deadline = Some(deadline);
                arm = Some((conn.gen, deadline));
            }
            close_now =
                conn.closing && conn.inflight.is_empty() && conn.out_pos >= conn.out.len();
        }
        if let Some((gen, deadline)) = arm {
            self.wheel.schedule(key, gen, deadline);
        }
        if close_now {
            self.close(key);
        }
    }

    /// A wheel entry fired: re-validate against the connection's current
    /// deadlines — close if one truly expired, reschedule otherwise.
    fn check_deadlines(&mut self, key: usize, gen: u64, now: Instant) {
        enum Verdict {
            Dead,
            Expired,
            Reschedule(Instant),
        }
        let verdict = {
            let Some(conn) = self.conns.get_mut(key).and_then(|s| s.as_mut()) else {
                return;
            };
            if conn.gen != gen {
                Verdict::Dead
            } else {
                let busy = !conn.inflight.is_empty() || conn.out_pos < conn.out.len();
                let expired = conn.read_deadline.is_some_and(|d| d <= now)
                    || conn.write_deadline.is_some_and(|d| d <= now)
                    || (!busy && conn.buf.is_empty() && conn.idle_deadline <= now);
                if expired {
                    Verdict::Expired
                } else {
                    if busy && conn.idle_deadline <= now {
                        // Still working on its behalf: keep-alive clock
                        // restarts rather than killing an active connection.
                        conn.idle_deadline = now + self.shared.cfg.idle_timeout;
                    }
                    let mut next = conn.idle_deadline;
                    if let Some(d) = conn.read_deadline {
                        next = next.min(d);
                    }
                    if let Some(d) = conn.write_deadline {
                        next = next.min(d);
                    }
                    Verdict::Reschedule(next)
                }
            }
        };
        match verdict {
            Verdict::Dead => {}
            // Timeouts close silently, exactly like the blocking pool's
            // socket-timeout path: a stalled peer gets no farewell body.
            Verdict::Expired => self.close(key),
            Verdict::Reschedule(next) => self.wheel.schedule(key, gen, next),
        }
    }

    fn update_interest(&mut self, key: usize) {
        let Some(conn) = self.conns.get_mut(key).and_then(|s| s.as_mut()) else { return };
        let want_w = conn.out_pos < conn.out.len();
        if want_w != conn.interest_w {
            conn.interest_w = want_w;
            let interest =
                if want_w { Event::all(key) } else { Event::readable(key) };
            let _ = self.shared.poller.modify(&conn.stream, interest);
        }
    }

    fn close(&mut self, key: usize) {
        if let Some(conn) = self.conns.get_mut(key).and_then(|s| s.take()) {
            let _ = self.shared.poller.delete(&conn.stream);
            self.open = self.open.saturating_sub(1);
            self.shared.metrics.open.sub(1);
            self.free.push(key);
        }
    }
}

/// Best-effort `503` to a just-accepted connection over the cap. One
/// non-blocking write: the ~190 bytes always fit an empty send buffer, and
/// the loop must never block on a stranger's socket.
fn reject_at_door(stream: TcpStream) {
    let _ = stream.set_nonblocking(true);
    let body = error_body(
        503,
        "overload",
        "server at capacity (connection limit reached); retry with backoff",
        None,
    );
    let bytes = response_bytes(503, &body.to_string(), false);
    let mut stream = stream;
    let _ = stream.write(&bytes);
}

/// The SQL text of a `/query` request: a JSON body's `"sql"` member, or the
/// raw body as UTF-8.
fn query_text(req: &Request) -> Option<String> {
    let text = std::str::from_utf8(&req.body).ok()?;
    if text.trim_start().starts_with('{') {
        let doc = Json::parse(text).ok()?;
        return doc.get("sql")?.as_str().map(str::to_string);
    }
    Some(text.to_string())
}

/// Endpoints the loop answers without involving the executor: cheap reads of
/// shared state plus routing errors. `/healthz` in particular stays
/// responsive even when every executor is busy. `None` → executor work.
fn route_inline(shared: &Shared, req: &Request) -> Option<(Endpoint, u16, Json)> {
    match (req.method.as_str(), req.path.as_str()) {
        ("POST", "/query") | ("POST", "/ingest") => None,
        ("GET", "/tables") => Some((Endpoint::Tables, 200, tables_json(shared))),
        ("GET", "/stats") => Some((Endpoint::Stats, 200, stats_json(shared))),
        ("GET", "/debug/slow") => Some((Endpoint::Debug, 200, slow_json(shared))),
        ("GET", "/healthz") => Some((
            Endpoint::Healthz,
            200,
            obj(vec![
                ("status", Json::Str("ok".into())),
                ("version", Json::Str(env!("CARGO_PKG_VERSION").into())),
                ("tables", Json::Num(shared.session.tables().len() as f64)),
                ("uptime_seconds", Json::Num(shared.started.elapsed().as_secs_f64())),
            ]),
        )),
        (_, "/query" | "/ingest" | "/tables" | "/stats" | "/healthz" | "/metrics"
        | "/debug/slow") => {
            let body = error_body(
                405,
                "method_not_allowed",
                &format!("{} is not supported on {}", req.method, req.path),
                None,
            );
            Some((Endpoint::Other, 405, body))
        }
        _ => {
            let body = error_body(
                404,
                "no_such_endpoint",
                &format!(
                    "{:?} is not an endpoint (have: POST /query, POST /ingest, GET /tables, \
                     GET /stats, GET /healthz, GET /metrics, GET /debug/slow)",
                    req.path
                ),
                None,
            );
            Some((Endpoint::Other, 404, body))
        }
    }
}

/// The `GET /debug/slow` body: ring configuration plus the retained slow
/// queries, most recent last, each with its full stage breakdown. Queries are
/// identified by fingerprint — raw SQL never appears here.
fn slow_json(shared: &Shared) -> Json {
    let entries = shared
        .slow
        .snapshot()
        .into_iter()
        .map(|q| {
            let spans = q
                .spans
                .iter()
                .map(|s| {
                    obj(vec![
                        ("stage", Json::Str(s.stage.name().into())),
                        ("id", Json::Num(f64::from(s.id))),
                        ("parent", Json::Num(f64::from(s.parent))),
                        ("start_us", Json::Num(s.start_ns as f64 / 1_000.0)),
                        ("dur_us", Json::Num(s.dur_ns as f64 / 1_000.0)),
                    ])
                })
                .collect();
            obj(vec![
                ("fingerprint", Json::Str(format!("{:016x}", q.fingerprint))),
                ("total_us", Json::Num(q.total_us as f64)),
                ("status", Json::Num(f64::from(q.status))),
                ("unix_ms", Json::Num(q.unix_ms as f64)),
                ("spans", Json::Arr(spans)),
            ])
        })
        .collect();
    obj(vec![
        ("threshold_us", Json::Num(shared.slow.threshold_us() as f64)),
        ("cap", Json::Num(shared.slow.cap() as f64)),
        ("count", Json::Num(shared.slow.len() as f64)),
        ("slow", Json::Arr(entries)),
    ])
}

/// The `GET /metrics` body: every registered family, then dynamic families
/// computed at scrape time (uptime, queue high-water mark, plan cache, ring
/// occupancy, per-table footprint). Table footprints read the snapshot cache
/// on [`ph_core::FootprintReport`]'s side, so a 1 Hz scraper never recomputes
/// synopsis sizes and cannot perturb serving.
fn metrics_text(shared: &Shared) -> String {
    let mut out = shared.metrics.registry.render();
    push_header(&mut out, "ph_uptime_seconds", "Seconds since the server started.", Kind::Gauge);
    push_sample(&mut out, "ph_uptime_seconds", &[], shared.started.elapsed().as_secs_f64());
    push_header(
        &mut out,
        "ph_executor_queue_hwm",
        "Deepest the executor queue has been since start.",
        Kind::Gauge,
    );
    push_sample(
        &mut out,
        "ph_executor_queue_hwm",
        &[],
        shared.work.hwm.load(Ordering::Relaxed) as f64,
    );
    push_header(
        &mut out,
        "ph_span_ring_spans",
        "Spans currently retained by the trace flight recorder.",
        Kind::Gauge,
    );
    push_sample(&mut out, "ph_span_ring_spans", &[], shared.span_ring.len() as f64);
    push_header(
        &mut out,
        "ph_slow_queries_retained",
        "Slow queries currently retained by the forensics ring.",
        Kind::Gauge,
    );
    push_sample(&mut out, "ph_slow_queries_retained", &[], shared.slow.len() as f64);
    let stats = shared.session.stats();
    push_header(
        &mut out,
        "ph_plan_cache_hits_total",
        "Plan-cache hits since start.",
        Kind::Counter,
    );
    push_sample(&mut out, "ph_plan_cache_hits_total", &[], stats.cache.hits as f64);
    push_header(
        &mut out,
        "ph_plan_cache_misses_total",
        "Plan-cache misses since start.",
        Kind::Counter,
    );
    push_sample(&mut out, "ph_plan_cache_misses_total", &[], stats.cache.misses as f64);
    push_header(
        &mut out,
        "ph_table_bytes",
        "Per-table storage footprint by component, from the snapshot cache.",
        Kind::Gauge,
    );
    for t in &stats.tables {
        if let Ok(f) = shared.session.footprint_report(&t.name) {
            let table = t.name.as_str();
            push_sample(
                &mut out,
                "ph_table_bytes",
                &[("table", table), ("component", "synopsis")],
                f.synopsis_bytes as f64,
            );
            push_sample(
                &mut out,
                "ph_table_bytes",
                &[("table", table), ("component", "row_store")],
                f.row_store_bytes as f64,
            );
            push_sample(
                &mut out,
                "ph_table_bytes",
                &[("table", table), ("component", "delta")],
                f.delta_bytes as f64,
            );
        }
    }
    push_header(&mut out, "ph_table_rows", "Per-table row counts by tier.", Kind::Gauge);
    for t in &stats.tables {
        let table = t.name.as_str();
        push_sample(
            &mut out,
            "ph_table_rows",
            &[("table", table), ("tier", "sealed")],
            t.sealed_rows as f64,
        );
        push_sample(
            &mut out,
            "ph_table_rows",
            &[("table", table), ("tier", "delta")],
            t.delta_rows as f64,
        );
    }
    out
}

/// Executor-side routing: the two stateful endpoints. Everything else was
/// answered inline and never reaches here.
fn execute_request(
    shared: &Shared,
    batch: &mut BatchSession<'_>,
    req: &Request,
) -> (Endpoint, u16, Json) {
    match (req.method.as_str(), req.path.as_str()) {
        ("POST", "/query") => {
            let (status, body) = handle_query(batch, req);
            (Endpoint::Query, status, body)
        }
        ("POST", "/ingest") => {
            let (status, body) = handle_ingest(shared, req);
            (Endpoint::Ingest, status, body)
        }
        _ => {
            let body =
                error_body(404, "no_such_endpoint", &format!("{:?}", req.path), None);
            (Endpoint::Other, 404, body)
        }
    }
}

fn handle_query(batch: &mut BatchSession<'_>, req: &Request) -> (u16, Json) {
    let Some(sql) = query_text(req) else {
        return (
            400,
            error_body(
                400,
                "bad_request",
                "body must be SQL text or a JSON object with an \"sql\" member",
                None,
            ),
        );
    };
    let t0 = Instant::now();
    match batch.sql(&sql) {
        Ok(answer) => {
            let mut body = answer_to_json(&answer);
            if let Json::Obj(members) = &mut body {
                members.push((
                    "latency_us".into(),
                    Json::Num(t0.elapsed().as_micros() as f64),
                ));
            }
            (200, body)
        }
        Err(e) => {
            let status = status_for(&e);
            // Recover the byte offset a parse error loses crossing `PhError`.
            let position = match &e {
                PhError::Parse(_) => ph_sql::error_offset(&sql),
                _ => None,
            };
            (status, error_body(status, kind_of(&e), &e.to_string(), position))
        }
    }
}

fn handle_ingest(shared: &Shared, req: &Request) -> (u16, Json) {
    match dataset_from_body(&shared.session, req) {
        Ok((table, batch)) => match shared.session.ingest(&table, &batch) {
            Ok(report) => (
                200,
                obj(vec![
                    ("table", Json::Str(table)),
                    ("rows", Json::Num(report.rows as f64)),
                    ("staleness", Json::Num(report.staleness)),
                    ("rebuilt", Json::Bool(report.rebuilt)),
                    ("sealed_segments", Json::Num(report.sealed_segments as f64)),
                ]),
            ),
            Err(e) => {
                let status = status_for(&e);
                (status, error_body(status, kind_of(&e), &e.to_string(), None))
            }
        },
        Err(e) => {
            let status = status_for(&e);
            (status, error_body(status, kind_of(&e), &e.to_string(), None))
        }
    }
}

fn tables_json(shared: &Shared) -> Json {
    let stats = shared.session.stats();
    Json::Obj(vec![(
        "tables".into(),
        Json::Arr(
            stats
                .tables
                .iter()
                .map(|t| {
                    obj(vec![
                        ("name", Json::Str(t.name.clone())),
                        ("epoch", Json::Num(t.epoch as f64)),
                        ("segments", Json::Num(t.segments as f64)),
                        ("sealed_rows", Json::Num(t.sealed_rows as f64)),
                        ("delta_rows", Json::Num(t.delta_rows as f64)),
                        ("staleness", Json::Num(t.staleness)),
                    ])
                })
                .collect(),
        ),
    )])
}

fn stats_json(shared: &Shared) -> Json {
    let stats = shared.session.stats();
    let tables = stats
        .tables
        .iter()
        .map(|t| {
            let footprint = shared
                .session
                .footprint_report(&t.name)
                .map(|f| {
                    obj(vec![
                        ("synopsis_bytes", Json::Num(f.synopsis_bytes as f64)),
                        ("row_store_bytes", Json::Num(f.row_store_bytes as f64)),
                        ("delta_bytes", Json::Num(f.delta_bytes as f64)),
                        ("total_bytes", Json::Num(f.total as f64)),
                    ])
                })
                .unwrap_or(Json::Null);
            // Codec mix of the sealed row stores: column counts keyed by the
            // winning codec, so operators can see what the cascade picked.
            let codec_mix = Json::Obj(
                t.codec_mix
                    .iter()
                    .map(|(name, cols)| (name.clone(), Json::Num(*cols as f64)))
                    .collect(),
            );
            obj(vec![
                ("name", Json::Str(t.name.clone())),
                ("epoch", Json::Num(t.epoch as f64)),
                ("segments", Json::Num(t.segments as f64)),
                ("sealed_rows", Json::Num(t.sealed_rows as f64)),
                ("delta_rows", Json::Num(t.delta_rows as f64)),
                ("staleness", Json::Num(t.staleness)),
                ("codec_mix", codec_mix),
                ("footprint", footprint),
            ])
        })
        .collect();
    // Quarantined tables: present in the persisted catalog but isolated after
    // failing open-time verification. Operators watch this array — a non-empty
    // value means durable state needs attention even though serving is up.
    let quarantined = shared
        .session
        .quarantined()
        .into_iter()
        .map(|(table, reason)| {
            obj(vec![("table", Json::Str(table)), ("reason", Json::Str(reason))])
        })
        .collect();
    let m = &shared.metrics;
    obj(vec![
        ("uptime_seconds", Json::Num(shared.started.elapsed().as_secs_f64())),
        (
            "plan_cache",
            obj(vec![
                ("hits", Json::Num(stats.cache.hits as f64)),
                ("misses", Json::Num(stats.cache.misses as f64)),
                ("entries", Json::Num(stats.cache.entries as f64)),
            ]),
        ),
        ("tables", Json::Arr(tables)),
        ("quarantined", Json::Arr(quarantined)),
        (
            "server",
            obj(vec![
                ("workers", Json::Num(shared.cfg.workers as f64)),
                ("queue_depth", Json::Num(shared.cfg.queue_depth as f64)),
                (
                    "max_connections",
                    Json::Num(shared.cfg.effective_max_connections() as f64),
                ),
                (
                    "rejected_503",
                    Json::Num(m.rejected.get() as f64),
                ),
                (
                    "connections",
                    obj(vec![
                        ("open", Json::Num(m.open.get() as f64)),
                        ("accepted", Json::Num(m.accepted.get() as f64)),
                        ("rejected", Json::Num(m.rejected.get() as f64)),
                        (
                            "pipelined_requests",
                            Json::Num(m.pipelined.get() as f64),
                        ),
                        (
                            "executor_queue_hwm",
                            Json::Num(shared.work.hwm.load(Ordering::Relaxed) as f64),
                        ),
                    ]),
                ),
                ("endpoints", m.to_json()),
            ]),
        ),
    ])
}

/// The error `kind` slug of a [`PhError`], mirrored by the client.
pub(crate) fn kind_of(e: &PhError) -> &'static str {
    match e {
        PhError::Parse(_) => "parse",
        PhError::UnknownTable(_) => "unknown_table",
        PhError::UnknownColumn(_) => "unknown_column",
        PhError::InvalidQuery(_) => "invalid_query",
        PhError::StalePlan(_) => "stale_plan",
        PhError::Unsupported(_) => "unsupported",
        PhError::Schema(_) => "schema",
        PhError::Io(_) => "io",
        PhError::Corrupt(_) => "corrupt",
        PhError::Quarantined(_) => "quarantined",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn job(seq: u64) -> Job {
        Job {
            key: 0,
            gen: 1,
            seq,
            keep_alive: true,
            req: Request {
                method: "POST".into(),
                path: "/query".into(),
                params: Vec::new(),
                headers: Vec::new(),
                body: Vec::new(),
            },
            trace: None,
            queued_at: Instant::now(),
        }
    }

    /// Poisons `queue`'s mutex by locking it on a thread that then panics.
    fn poison(queue: &Arc<WorkQueue>) {
        let q = Arc::clone(queue);
        let h = std::thread::spawn(move || {
            let _guard = q.inner.lock().unwrap();
            panic!("worker dies holding the queue lock");
        });
        assert!(h.join().is_err(), "the poisoning thread must have panicked");
        assert!(queue.inner.lock().is_err(), "mutex is poisoned");
    }

    /// The regression this module exists for: a worker panicking while it
    /// holds the queue lock must not wedge or crash the rest of the server.
    /// Poison degrades to shutdown semantics — push sheds, pop drains out,
    /// close still closes — instead of cascading the panic.
    #[test]
    fn poisoned_work_queue_degrades_to_shutdown() {
        let queue = Arc::new(WorkQueue::new(4));
        poison(&queue);
        assert!(queue.try_push(job(0)).is_err(), "push sheds instead of panicking");
        assert!(queue.pop_batch(8).is_none(), "pop drains out instead of panicking");
        queue.close(); // must not panic, and must still mark the queue closed
        assert!(queue.inner.lock().unwrap_or_else(|p| p.into_inner()).closed);
    }

    /// Without poison the queue behaves as a bounded batch queue: jobs come
    /// back in order and in one batch, the cap sheds, close wakes a parked
    /// consumer, and the high-water mark records the deepest backlog.
    #[test]
    fn work_queue_batches_caps_and_closes() {
        let queue = Arc::new(WorkQueue::new(2));
        assert!(queue.try_push(job(0)).is_ok());
        assert!(queue.try_push(job(1)).is_ok());
        assert!(queue.try_push(job(2)).is_err(), "cap of 2 sheds the third");
        assert_eq!(queue.hwm.load(Ordering::Relaxed), 2);
        let batch = queue.pop_batch(8).unwrap();
        assert_eq!(batch.iter().map(|j| j.seq).collect::<Vec<_>>(), vec![0, 1]);
        let q = Arc::clone(&queue);
        let waiter = std::thread::spawn(move || q.pop_batch(8));
        std::thread::sleep(Duration::from_millis(20));
        queue.close();
        assert!(waiter.join().unwrap().is_none(), "parked pop wakes with None on close");
    }

    /// Latency buckets clamp: the u64 extremes land in the last bucket rather
    /// than out of bounds, and quantiles stay finite. (The histogram itself
    /// lives in ph_obs now; this pins the serving-side contract.)
    #[test]
    fn latency_hist_extremes_are_clamped() {
        let m = Metrics::new();
        let ep = m.endpoint(Endpoint::Query);
        ep.record(200, 0);
        ep.record(404, 1);
        ep.record(500, u64::MAX);
        assert_eq!(ep.latency.count(), 3, "every sample landed in some bucket");
        assert_eq!(ep.requests.get(), 3);
        assert_eq!(ep.status_4xx.get(), 1);
        assert_eq!(ep.status_5xx.get(), 1);
        assert!(ep.latency.quantile(0.99).is_finite());
    }

    /// The registry behind `/metrics` carries every family CI greps for, with
    /// headers present even before the first increment.
    #[test]
    fn required_metric_families_render_from_start() {
        let m = Metrics::new();
        let text = m.registry.render();
        for family in [
            "ph_queries_total",
            "ph_query_stage_seconds",
            "ph_ingest_batches_total",
            "ph_connections_open",
            "ph_http_requests_total",
            "ph_http_request_seconds",
        ] {
            assert!(text.contains(&format!("# TYPE {family}")), "missing family {family}");
        }
        // Every stage has a labeled histogram child.
        for s in ph_obs::trace::ALL_STAGES {
            assert!(
                text.contains(&format!("stage=\"{}\"", s.name())),
                "missing stage label {}",
                s.name()
            );
        }
    }

    /// Wheel entries fire at-or-after their deadline, stale generations are
    /// the caller's problem (the wheel just hands back hints), and deadlines
    /// beyond one rotation still fire (early, via wrap) rather than never.
    #[test]
    fn timer_wheel_fires_at_or_after_deadline() {
        let t0 = Instant::now();
        let mut wheel = TimerWheel::new(t0);
        wheel.schedule(7, 1, t0 + Duration::from_millis(60));
        assert!(wheel.drain_expired(t0 + Duration::from_millis(10)).is_empty());
        assert!(wheel.next_wakeup(t0 + Duration::from_millis(10)).is_some());
        let fired = wheel.drain_expired(t0 + Duration::from_millis(200));
        assert_eq!(fired, vec![(7, 1)]);
        assert!(wheel.next_wakeup(t0 + Duration::from_millis(200)).is_none());
        // Far beyond one rotation: wraps, fires early at some point ≤ deadline.
        let far = t0 + WHEEL_TICK.saturating_mul(WHEEL_SLOTS as u32 * 3);
        wheel.schedule(9, 2, far);
        let fired = wheel.drain_expired(far);
        assert!(fired.contains(&(9, 2)), "wrapped entry eventually drains");
    }

    /// The legacy cap derivation: `max_connections == 0` reproduces the old
    /// pool's capacity (held + queued), explicit values win as-is.
    #[test]
    fn connection_cap_derivation_matches_legacy_pool() {
        let legacy = ServerConfig { workers: 1, queue_depth: 1, ..Default::default() };
        assert_eq!(legacy.effective_max_connections(), 2);
        let explicit = ServerConfig {
            max_connections: 10_000,
            workers: 2,
            ..Default::default()
        };
        assert_eq!(explicit.effective_max_connections(), 10_000);
    }
}
