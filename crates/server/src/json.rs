//! A small, total JSON reader/writer for the serving layer's wire format.
//!
//! The offline build environment has no `serde_json`, and the server's needs
//! are narrow: parse ingest payloads and client-side responses, write answer
//! and error bodies. Numbers are `f64` end-to-end; Rust's shortest-round-trip
//! float formatting guarantees that an [`AqpAnswer`](ph_core::AqpAnswer) serialized here and
//! parsed back is **bit-identical** — the property the end-to-end tests pin.
//!
//! Parsing is total (returns `Err`, never panics) and depth-capped, so hostile
//! request bodies cannot blow the stack.

use std::fmt::Write as _;

use ph_types::PhError;

/// Maximum nesting depth the parser accepts.
const MAX_DEPTH: usize = 64;

/// A JSON value. Object keys keep their order of appearance (insertion order
/// is meaningful for readable `/stats` output, and lookups are few and small).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, keys in order of appearance.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Member of an object by key.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// String payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Number payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// Array payload, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Object members, if this is an object.
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(members) => Some(members),
            _ => None,
        }
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(x) => write_f64(out, *x),
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(members) => {
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, k);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Parses one JSON document (surrounding whitespace allowed, trailing
    /// garbage rejected). Errors are [`PhError::Parse`] and carry the byte
    /// offset of the problem.
    pub fn parse(input: &str) -> Result<Json, PhError> {
        let bytes = input.as_bytes();
        let mut pos = 0usize;
        let v = parse_value(bytes, &mut pos, 0).map_err(PhError::Parse)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(PhError::Parse(format!("trailing bytes after document at offset {pos}")));
        }
        Ok(v)
    }
}

/// Writes `x` as a JSON number. JSON has no NaN/∞, so non-finite values become
/// `null` (the reader treats both as "no value"). Finite floats use Rust's
/// shortest round-trip formatting, so the exact bits survive the wire.
fn write_f64(out: &mut String, x: f64) {
    if x.is_finite() {
        let _ = write!(out, "{x}");
    } else {
        out.push_str("null");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while matches!(bytes.get(*pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, lit: &str) -> Result<(), String> {
    if bytes.get(*pos..).is_some_and(|rest| rest.starts_with(lit.as_bytes())) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(format!("expected {lit:?} at offset {pos}", pos = *pos))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<Json, String> {
    if depth > MAX_DEPTH {
        return Err(format!("nesting deeper than {MAX_DEPTH} at offset {pos}", pos = *pos));
    }
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'n') => expect(bytes, pos, "null").map(|_| Json::Null),
        Some(b't') => expect(bytes, pos, "true").map(|_| Json::Bool(true)),
        Some(b'f') => expect(bytes, pos, "false").map(|_| Json::Bool(false)),
        Some(b'"') => parse_string(bytes, pos).map(Json::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos, depth + 1)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at offset {pos}", pos = *pos)),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut members = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(members));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                if bytes.get(*pos) != Some(&b':') {
                    return Err(format!("expected ':' at offset {pos}", pos = *pos));
                }
                *pos += 1;
                let value = parse_value(bytes, pos, depth + 1)?;
                members.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(members));
                    }
                    _ => return Err(format!("expected ',' or '}}' at offset {pos}", pos = *pos)),
                }
            }
        }
        Some(_) => parse_number(bytes, pos).map(Json::Num),
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err(format!("expected '\"' at offset {pos}", pos = *pos));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{0008}'),
                    Some(b'f') => out.push('\u{000C}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let cp = parse_hex4(bytes, *pos + 1)?;
                        // Surrogate pair?
                        if (0xD800..0xDC00).contains(&cp)
                            && bytes.get(*pos + 5..*pos + 7) == Some(b"\\u")
                        {
                            let low = parse_hex4(bytes, *pos + 7)?;
                            if (0xDC00..0xE000).contains(&low) {
                                let combined =
                                    0x10000 + ((cp - 0xD800) << 10) + (low - 0xDC00);
                                out.push(
                                    char::from_u32(combined)
                                        .ok_or("invalid surrogate pair")?,
                                );
                                // `u XXXX \ u YYYY` = 11 bytes from the `u`.
                                *pos += 11;
                                continue;
                            }
                        }
                        out.push(char::from_u32(cp).unwrap_or('\u{FFFD}'));
                        *pos += 4;
                    }
                    other => return Err(format!("bad escape {other:?}")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Take the longest valid UTF-8 run up to the next quote/escape.
                let start = *pos;
                while matches!(bytes.get(*pos), Some(b) if *b != b'"' && *b != b'\\') {
                    *pos += 1;
                }
                let run = bytes.get(start..*pos).unwrap_or_default();
                let chunk = std::str::from_utf8(run)
                    .map_err(|_| format!("invalid UTF-8 in string at offset {start}"))?;
                out.push_str(chunk);
            }
        }
    }
}

fn parse_hex4(bytes: &[u8], at: usize) -> Result<u32, String> {
    let hex = bytes
        .get(at..at + 4)
        .and_then(|h| std::str::from_utf8(h).ok())
        .ok_or_else(|| format!("truncated \\u escape at offset {at}"))?;
    u32::from_str_radix(hex, 16).map_err(|_| format!("bad \\u escape {hex:?}"))
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<f64, String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while matches!(
        bytes.get(*pos),
        Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
    ) {
        *pos += 1;
    }
    let text = std::str::from_utf8(bytes.get(start..*pos).unwrap_or_default())
        .map_err(|_| format!("bad number at offset {start}"))?;
    let x: f64 = text
        .parse()
        .map_err(|_| format!("bad number {text:?} at offset {start}"))?;
    if x.is_finite() {
        Ok(x)
    } else {
        Err(format!("number {text:?} overflows f64 at offset {start}"))
    }
}

/// Serialization to compact JSON (also provides `Json::to_string`).
impl std::fmt::Display for Json {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut out = String::new();
        self.write(&mut out);
        f.write_str(&out)
    }
}

/// Builder shorthand: an object from key/value pairs.
pub fn obj(members: Vec<(&str, Json)>) -> Json {
    Json::Obj(members.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_and_prints_documents() {
        let text = r#"{"a": [1, 2.5, -3e2], "b": {"c": null, "d": true}, "s": "x\"\n\u00e9"}"#;
        let v = Json::parse(text).unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap()[2].as_f64(), Some(-300.0));
        assert_eq!(v.get("s").unwrap().as_str(), Some("x\"\né"));
        // Print → reparse is identity.
        assert_eq!(Json::parse(&v.to_string()).unwrap(), v);
    }

    #[test]
    fn f64_bits_survive_the_wire() {
        for x in [0.1, 1.0 / 3.0, f64::MAX, f64::MIN_POSITIVE, -0.0, 123456.789e-12] {
            let text = Json::Num(x).to_string();
            let back = Json::parse(&text).unwrap().as_f64().unwrap();
            assert_eq!(back.to_bits(), x.to_bits(), "{x} -> {text} -> {back}");
        }
        assert_eq!(Json::Num(f64::NAN).to_string(), "null");
        assert_eq!(Json::Num(f64::INFINITY).to_string(), "null");
    }

    #[test]
    fn surrogate_pairs_decode() {
        assert_eq!(
            Json::parse(r#""\ud83d\ude00""#).unwrap().as_str(),
            Some("😀")
        );
    }

    #[test]
    fn hostile_inputs_error_cleanly() {
        for bad in [
            "", "{", "[", "\"", "{\"a\"}", "{\"a\":}", "[1,]", "nul", "tru", "01x",
            "--3", "1e", "{\"a\":1,}", "\"\\u12\"", "\u{0}", "[[[[", "1 2",
        ] {
            assert!(Json::parse(bad).is_err(), "{bad:?} must be rejected");
        }
        // Depth cap, not stack overflow.
        let deep = "[".repeat(100_000) + &"]".repeat(100_000);
        assert!(Json::parse(&deep).is_err());
    }
}
