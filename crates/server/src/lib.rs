//! # `ph_server` — the networked AQP serving layer
//!
//! Everything below this crate answers queries *in process*; this crate puts
//! the system on a socket. A [`Server`] is a dependency-free HTTP/1.1 process
//! component on `std::net`: a readiness-driven event loop (epoll/`poll(2)`
//! via the offline `polling` shim) holding thousands of non-blocking
//! keep-alive connections, with a batched executor pool over one shared
//! [`Session`](ph_core::Session) — serving:
//!
//! | endpoint        | what it does |
//! |-----------------|--------------|
//! | `POST /query`   | SQL in (raw text or `{"sql": …}`), JSON estimate with bounds out |
//! | `POST /ingest`  | JSON rows or CSV into a named table (O(batch) segmented ingest) |
//! | `GET /tables`   | catalog with per-table epoch / segment / row counts |
//! | `GET /stats`    | plan-cache hit/miss, per-table footprint, per-endpoint p50/p90/p99 latency |
//! | `GET /healthz`  | liveness, version, uptime |
//! | `GET /metrics`  | every metric family in Prometheus text exposition format ([`ph_obs`]) |
//! | `GET /debug/slow` | last N over-threshold queries: SQL fingerprint + full stage breakdown |
//!
//! Three serving-layer guarantees the in-process library cannot give:
//!
//! * **Admission control.** A connection past the cap is answered `503` at
//!   the door; a parsed request that doesn't fit the bounded executor queue
//!   is answered `503` in-stream. Either way the server sheds load fast and
//!   explicitly instead of accumulating unbounded work. Connection *capacity*
//!   is an fd budget, not a thread count: the event loop holds 10k+ idle
//!   keep-alive sockets for a slab slot each, and pipelined requests on one
//!   connection are answered strictly in request order.
//! * **Structured failure.** Every [`PhError`](ph_types::PhError) maps to an
//!   HTTP status ([`status_for`]) and a JSON error body with a machine-readable
//!   `kind` — parse errors even carry the byte offset of the syntax error.
//! * **A workload memory.** Every `/query` is appended to a varint-compressed
//!   query log (the `PHQL1` format in [`ph_encoding`], after Xie et al.'s query
//!   log compression work), replayable by the `logreplay` bench bin — and by
//!   the tests, which assert a replayed log reproduces the served estimates.
//! * **Self-description.** Every request is traced through the [`ph_obs`]
//!   pipeline — HTTP read → admission → queue wait → parse → plan cache →
//!   per-segment estimate → merge → serialize — feeding the
//!   `ph_query_stage_seconds{stage}` histograms, a compact span flight
//!   recorder, and the `/debug/slow` forensics ring (fingerprints, never raw
//!   SQL). A 1 Hz scraper on `/metrics` costs the serving path nothing it
//!   wasn't already paying: handles are relaxed atomics and table footprints
//!   are cached on the immutable snapshot.
//!
//! The [`Client`] speaks the same wire format back: `Client::query` returns
//! the same [`AqpAnswer`](ph_core::AqpAnswer) a local `Session::sql` call
//! does, **bit-identical** (float-lossless JSON on both sides).
//!
//! ## Quick start
//!
//! ```
//! use std::sync::Arc;
//! use ph_core::Session;
//! use ph_server::{Client, Server, ServerConfig};
//! use ph_types::{Column, Dataset};
//!
//! let data = Dataset::builder("demo")
//!     .column(Column::from_ints("x", (0..8_000).map(|i| Some(i % 100)).collect())).unwrap()
//!     .column(Column::from_ints("y", (0..8_000).map(|i| Some((i % 100) * 2)).collect())).unwrap()
//!     .build();
//! let session = Arc::new(Session::new());
//! session.register(data).unwrap();
//!
//! // Port 0 = ephemeral; `local_addr` has the resolved port.
//! let server = Server::bind(session, "127.0.0.1:0", ServerConfig::default()).unwrap();
//! let mut client = Client::new(server.local_addr().to_string());
//! let estimate = client.query_scalar("SELECT COUNT(y) FROM demo WHERE x >= 50;").unwrap();
//! assert!(estimate.lo <= estimate.value && estimate.value <= estimate.hi);
//!
//! // Scrape the observability surface like Prometheus would.
//! let metrics = client.metrics().unwrap();
//! assert!(metrics.contains("# TYPE ph_queries_total counter"));
//! assert!(metrics.contains("ph_queries_total 1"));
//! server.shutdown();
//! ```
//!
//! Binaries: `ph-serve` (the server process) and `ph-bench-client` (a
//! closed-loop load generator over [`load::run_load`] — active closed loops,
//! optional pipelining, and an optional held-idle keep-alive population).

// Debug/scaffolding egress is banned in library code: a stray println corrupts
// bin protocols (ph-serve speaks HTTP on stdout-adjacent fds) and dbg!/todo!
// are development leftovers. ph-lint R2 bans the panicking macros; these
// clippy denies catch the printing/scaffolding ones.
#![deny(clippy::dbg_macro, clippy::todo, clippy::unimplemented)]
#![deny(clippy::print_stdout, clippy::print_stderr)]
pub mod client;
pub mod http;
mod ingest;
pub mod json;
pub mod load;
pub mod querylog;
pub mod server;
pub mod wire;

pub use client::{Client, ClientError, RetryPolicy};
pub use json::Json;
/// The observability substrate, re-exported for embedders and the `ph-serve`
/// bin (runtime tracing switch, registry/ring types).
pub use ph_obs as obs;
pub use load::{run_closed_loop, run_load, LoadProfile, LoadReport};
pub use querylog::{read_query_log, read_query_log_lossy, QueryLogWriter};
pub use server::{Server, ServerConfig, ServerStats};
pub use wire::{answer_from_json, answer_to_json, error_body, status_for};
