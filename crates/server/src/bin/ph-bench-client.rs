//! `ph-bench-client`: closed-loop load generator against a running `ph-serve`.
//!
//! ```text
//! ph-bench-client --addr HOST:PORT [--connections N] [--hold N] [--pipeline K]
//!                 [--seconds S] [--sql Q]...
//! ```
//!
//! Each active connection is one closed loop (fire the next query — or, with
//! `--pipeline K`, the next K-deep pipelined batch — as soon as the previous
//! answer lands); the report is sustained qps plus p50/p99 latency. `--hold N`
//! additionally opens N keep-alive connections that sit **idle** for the whole
//! run, exercising the server's ability to hold a large silent population
//! while serving the active one; the report says how many were still open at
//! the end. Without `--sql`, the standard Power scalar query mix is used
//! (matching the demo table `ph-serve` registers).

use std::process::exit;
use std::time::Duration;

use ph_server::{run_load, LoadProfile};

const DEFAULT_QUERIES: [&str; 4] = [
    "SELECT COUNT(global_active_power) FROM Power WHERE voltage > 238;",
    "SELECT AVG(global_active_power) FROM Power WHERE voltage > 238;",
    "SELECT SUM(global_active_power) FROM Power WHERE voltage > 238;",
    "SELECT MAX(global_active_power) FROM Power WHERE voltage > 238;",
];

fn usage() -> ! {
    eprintln!(
        "usage: ph-bench-client --addr HOST:PORT [--connections N] [--hold N] \
         [--pipeline K] [--seconds S] [--sql Q]..."
    );
    exit(2);
}

fn main() {
    let mut addr: Option<String> = None;
    let mut profile = LoadProfile::default();
    let mut seconds = 5.0f64;
    let mut queries: Vec<String> = Vec::new();
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().unwrap_or_else(|| {
            eprintln!("{name} needs a value");
            usage();
        });
        match flag.as_str() {
            "--addr" => addr = Some(value("--addr")),
            "--connections" => {
                profile.active = value("--connections").parse().unwrap_or_else(|_| usage())
            }
            "--hold" => {
                profile.held_idle = value("--hold").parse().unwrap_or_else(|_| usage())
            }
            "--pipeline" => {
                profile.pipeline_depth =
                    value("--pipeline").parse().unwrap_or_else(|_| usage())
            }
            "--seconds" => seconds = value("--seconds").parse().unwrap_or_else(|_| usage()),
            "--sql" => queries.push(value("--sql")),
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag {other:?}");
                usage();
            }
        }
    }
    let Some(addr) = addr else { usage() };
    if queries.is_empty() {
        queries = DEFAULT_QUERIES.iter().map(|q| q.to_string()).collect();
    }
    // Fail fast (and loudly) if the mix can't be served at all.
    let mut probe = ph_server::Client::new(addr.clone());
    if let Err(e) = probe.query(&queries[0]) {
        eprintln!("probe query failed against {addr}: {e}");
        exit(1);
    }
    drop(probe);
    let report = run_load(&addr, &profile, Duration::from_secs_f64(seconds), &queries);
    println!(
        "connections={} held_idle={} pipeline={} seconds={:.1} ok={} errors={} qps={:.0} \
         p50={:.1}us p99={:.1}us",
        report.connections,
        report.held_idle,
        report.pipeline_depth,
        report.seconds,
        report.ok,
        report.errors,
        report.qps,
        report.p50_us,
        report.p99_us,
    );
    // Held-idle sockets that died mid-run mean the server shed its keep-alive
    // population — the exact regression --hold exists to catch.
    if report.held_idle < profile.held_idle {
        eprintln!(
            "warning: only {}/{} held connections survived the run",
            report.held_idle, profile.held_idle
        );
        exit(1);
    }
}
