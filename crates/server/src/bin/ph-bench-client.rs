//! `ph-bench-client`: closed-loop load generator against a running `ph-serve`.
//!
//! ```text
//! ph-bench-client --addr HOST:PORT [--connections N] [--seconds S] [--sql Q]...
//! ```
//!
//! Each connection is one closed loop (fire the next query as soon as the
//! previous answer lands); the report is sustained qps plus p50/p99 latency.
//! Without `--sql`, the standard Power scalar query mix is used (matching the
//! demo table `ph-serve` registers).

use std::process::exit;
use std::time::Duration;

use ph_server::run_closed_loop;

const DEFAULT_QUERIES: [&str; 4] = [
    "SELECT COUNT(global_active_power) FROM Power WHERE voltage > 238;",
    "SELECT AVG(global_active_power) FROM Power WHERE voltage > 238;",
    "SELECT SUM(global_active_power) FROM Power WHERE voltage > 238;",
    "SELECT MAX(global_active_power) FROM Power WHERE voltage > 238;",
];

fn usage() -> ! {
    eprintln!(
        "usage: ph-bench-client --addr HOST:PORT [--connections N] [--seconds S] [--sql Q]..."
    );
    exit(2);
}

fn main() {
    let mut addr: Option<String> = None;
    let mut connections = 4usize;
    let mut seconds = 5.0f64;
    let mut queries: Vec<String> = Vec::new();
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().unwrap_or_else(|| {
            eprintln!("{name} needs a value");
            usage();
        });
        match flag.as_str() {
            "--addr" => addr = Some(value("--addr")),
            "--connections" => {
                connections = value("--connections").parse().unwrap_or_else(|_| usage())
            }
            "--seconds" => seconds = value("--seconds").parse().unwrap_or_else(|_| usage()),
            "--sql" => queries.push(value("--sql")),
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag {other:?}");
                usage();
            }
        }
    }
    let Some(addr) = addr else { usage() };
    if queries.is_empty() {
        queries = DEFAULT_QUERIES.iter().map(|q| q.to_string()).collect();
    }
    // Fail fast (and loudly) if the mix can't be served at all.
    let mut probe = ph_server::Client::new(addr.clone());
    if let Err(e) = probe.query(&queries[0]) {
        eprintln!("probe query failed against {addr}: {e}");
        exit(1);
    }
    let report =
        run_closed_loop(&addr, connections, Duration::from_secs_f64(seconds), &queries);
    println!(
        "connections={} seconds={:.1} ok={} errors={} qps={:.0} p50={:.1}us p99={:.1}us",
        report.connections,
        report.seconds,
        report.ok,
        report.errors,
        report.qps,
        report.p50_us,
        report.p99_us,
    );
}
