//! `ph-serve`: the serving process.
//!
//! ```text
//! ph-serve [--addr HOST:PORT] [--workers N] [--queue N] [--qlog PATH]
//!          [--data-dir DIR | --demo ROWS]
//! ```
//!
//! With `--data-dir` the catalog is reopened from a `Session::save_dir`
//! directory; otherwise a synthetic `Power` table of `--demo ROWS` rows
//! (default 50 000) is registered so the server is immediately queryable:
//!
//! ```text
//! curl -s localhost:7871/healthz
//! curl -s -XPOST localhost:7871/query \
//!      -d 'SELECT COUNT(global_active_power) FROM Power WHERE voltage > 238;'
//! ```
//!
//! Runs until killed. The query log (if any) is flushed on every append, so a
//! `SIGKILL` loses at most the in-flight record.

use std::process::exit;
use std::sync::Arc;

use ph_core::Session;
use ph_server::{Server, ServerConfig};

struct Args {
    addr: String,
    cfg: ServerConfig,
    data_dir: Option<String>,
    demo_rows: usize,
}

fn usage() -> ! {
    eprintln!(
        "usage: ph-serve [--addr HOST:PORT] [--workers N] [--queue N] [--qlog PATH] \
         [--data-dir DIR | --demo ROWS]"
    );
    exit(2);
}

fn parse_args() -> Args {
    let mut args = Args {
        addr: "127.0.0.1:7871".into(),
        cfg: ServerConfig::default(),
        data_dir: None,
        demo_rows: 50_000,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().unwrap_or_else(|| {
            eprintln!("{name} needs a value");
            usage();
        });
        match flag.as_str() {
            "--addr" => args.addr = value("--addr"),
            "--workers" => {
                args.cfg.workers = value("--workers").parse().unwrap_or_else(|_| usage())
            }
            "--queue" => {
                args.cfg.queue_depth = value("--queue").parse().unwrap_or_else(|_| usage())
            }
            "--qlog" => args.cfg.query_log = Some(value("--qlog").into()),
            "--data-dir" => args.data_dir = Some(value("--data-dir")),
            "--demo" => {
                args.demo_rows = value("--demo").parse().unwrap_or_else(|_| usage())
            }
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag {other:?}");
                usage();
            }
        }
    }
    args
}

fn main() {
    let args = parse_args();
    let session = match &args.data_dir {
        Some(dir) => match Session::open_dir(dir) {
            Ok(s) => {
                eprintln!("opened catalog {dir} ({} tables)", s.tables().len());
                s
            }
            Err(e) => {
                eprintln!("cannot open {dir}: {e}");
                exit(1);
            }
        },
        None => {
            let s = Session::new();
            let data = ph_datagen::generate("Power", args.demo_rows, 7)
                .expect("demo dataset generates");
            eprintln!(
                "no --data-dir: registered demo table 'Power' ({} rows, columns: {})",
                data.n_rows(),
                data.columns().iter().map(|c| c.name()).collect::<Vec<_>>().join(", ")
            );
            s.register(data).expect("demo table registers");
            s
        }
    };
    let server = match Server::bind(Arc::new(session), &args.addr, args.cfg.clone()) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("cannot bind {}: {e}", args.addr);
            exit(1);
        }
    };
    // Stdout so scripts can scrape the resolved (possibly ephemeral) port.
    println!("ph-serve listening on {}", server.local_addr());
    eprintln!(
        "workers={} queue={} qlog={}",
        args.cfg.workers,
        args.cfg.queue_depth,
        args.cfg.query_log.as_deref().map(|p| p.display().to_string()).unwrap_or_else(|| "off".into()),
    );
    // Serve until the process is killed.
    loop {
        std::thread::park();
    }
}
