//! `ph-serve`: the serving process.
//!
//! ```text
//! ph-serve [--addr HOST:PORT] [--workers N] [--queue N] [--max-conns N]
//!          [--read-timeout SECS] [--idle-timeout SECS] [--serve-seconds S]
//!          [--qlog PATH] [--data-dir DIR | --demo ROWS]
//! ```
//!
//! With `--data-dir` the catalog is reopened from a `Session::save_dir`
//! directory; otherwise a synthetic `Power` table of `--demo ROWS` rows
//! (default 50 000) is registered so the server is immediately queryable:
//!
//! ```text
//! curl -s localhost:7871/healthz
//! curl -s -XPOST localhost:7871/query \
//!      -d 'SELECT COUNT(global_active_power) FROM Power WHERE voltage > 238;'
//! ```
//!
//! Runs until killed — or, with `--serve-seconds S`, shuts down gracefully
//! after `S` seconds (draining in-flight responses and flushing the query
//! log), which is what the CI smoke jobs use for a clean bounded run. The
//! query log (if any) is flushed on every append, so a `SIGKILL` loses at
//! most the in-flight record.
//!
//! As a standalone process the default connection cap is 10 000 (the
//! event loop holds idle keep-alive sockets for a slab slot each; raise it
//! to the fd budget with `--max-conns`). Embedded `Server`s default to the
//! legacy `workers + queue_depth` derivation instead.

use std::process::exit;
use std::sync::Arc;

use ph_core::Session;
use ph_server::{Server, ServerConfig};

struct Args {
    addr: String,
    cfg: ServerConfig,
    data_dir: Option<String>,
    demo_rows: usize,
    serve_seconds: Option<f64>,
}

fn usage() -> ! {
    eprintln!(
        "usage: ph-serve [--addr HOST:PORT] [--workers N] [--queue N] [--max-conns N] \
         [--read-timeout SECS] [--idle-timeout SECS] [--serve-seconds S] [--qlog PATH] \
         [--slow-threshold-us MICROS] [--slow-cap N] [--no-tracing] \
         [--data-dir DIR | --demo ROWS]"
    );
    exit(2);
}

fn parse_args() -> Args {
    let mut args = Args {
        addr: "127.0.0.1:7871".into(),
        cfg: ServerConfig {
            // The standalone process is the 10k-connection deployment shape;
            // the legacy workers+queue derivation only suits embedded tests.
            max_connections: 10_000,
            ..ServerConfig::default()
        },
        data_dir: None,
        demo_rows: 50_000,
        serve_seconds: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().unwrap_or_else(|| {
            eprintln!("{name} needs a value");
            usage();
        });
        match flag.as_str() {
            "--addr" => args.addr = value("--addr"),
            "--workers" => {
                args.cfg.workers = value("--workers").parse().unwrap_or_else(|_| usage())
            }
            "--queue" => {
                args.cfg.queue_depth = value("--queue").parse().unwrap_or_else(|_| usage())
            }
            "--max-conns" => {
                args.cfg.max_connections =
                    value("--max-conns").parse().unwrap_or_else(|_| usage())
            }
            "--read-timeout" => {
                let secs: f64 = value("--read-timeout").parse().unwrap_or_else(|_| usage());
                args.cfg.read_timeout = std::time::Duration::from_secs_f64(secs.max(0.001));
            }
            "--idle-timeout" => {
                let secs: f64 = value("--idle-timeout").parse().unwrap_or_else(|_| usage());
                args.cfg.idle_timeout = std::time::Duration::from_secs_f64(secs.max(0.001));
            }
            "--serve-seconds" => {
                args.serve_seconds =
                    Some(value("--serve-seconds").parse().unwrap_or_else(|_| usage()))
            }
            "--qlog" => args.cfg.query_log = Some(value("--qlog").into()),
            "--slow-threshold-us" => {
                args.cfg.slow_query_threshold_us =
                    value("--slow-threshold-us").parse().unwrap_or_else(|_| usage())
            }
            "--slow-cap" => {
                args.cfg.slow_query_cap = value("--slow-cap").parse().unwrap_or_else(|_| usage())
            }
            "--no-tracing" => ph_server::obs::set_tracing(false),
            "--data-dir" => args.data_dir = Some(value("--data-dir")),
            "--demo" => {
                args.demo_rows = value("--demo").parse().unwrap_or_else(|_| usage())
            }
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag {other:?}");
                usage();
            }
        }
    }
    args
}

fn main() {
    let args = parse_args();
    let session = match &args.data_dir {
        Some(dir) => match Session::open_dir(dir) {
            Ok(s) => {
                eprintln!("opened catalog {dir} ({} tables)", s.tables().len());
                s
            }
            Err(e) => {
                eprintln!("cannot open {dir}: {e}");
                exit(1);
            }
        },
        None => {
            let s = Session::new();
            let data = ph_datagen::generate("Power", args.demo_rows, 7)
                .expect("demo dataset generates");
            eprintln!(
                "no --data-dir: registered demo table 'Power' ({} rows, columns: {})",
                data.n_rows(),
                data.columns().iter().map(|c| c.name()).collect::<Vec<_>>().join(", ")
            );
            s.register(data).expect("demo table registers");
            s
        }
    };
    let server = match Server::bind(Arc::new(session), &args.addr, args.cfg.clone()) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("cannot bind {}: {e}", args.addr);
            exit(1);
        }
    };
    // Stdout so scripts can scrape the resolved (possibly ephemeral) port.
    println!("ph-serve listening on {}", server.local_addr());
    eprintln!(
        "workers={} queue={} max_conns={} qlog={}",
        args.cfg.workers,
        args.cfg.queue_depth,
        args.cfg.effective_max_connections(),
        args.cfg.query_log.as_deref().map(|p| p.display().to_string()).unwrap_or_else(|| "off".into()),
    );
    match args.serve_seconds {
        // Bounded run (CI smoke): serve, then shut down gracefully — drain
        // in-flight responses, flush the qlog, join every thread — and print
        // the serving counters so the harness can assert on them.
        Some(secs) => {
            std::thread::sleep(std::time::Duration::from_secs_f64(secs.max(0.0)));
            let stats = server.stats();
            server.shutdown();
            println!(
                "ph-serve done: accepted={} open_at_stop={} rejected_503={} pipelined={} queue_hwm={}",
                stats.accepted_connections,
                stats.open_connections,
                stats.rejected_503,
                stats.pipelined_requests,
                stats.executor_queue_hwm,
            );
        }
        // Serve until the process is killed.
        None => loop {
            std::thread::park();
        },
    }
}
