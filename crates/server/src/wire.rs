//! The wire format shared by server and client: answers and errors as JSON,
//! and the [`PhError`] → HTTP status mapping.
//!
//! The serialization is **lossless for `f64`** (shortest-round-trip float
//! formatting on both sides), so an [`AqpAnswer`] that crosses the wire and
//! comes back compares `==` to the original — the bit-identity contract the
//! end-to-end tests pin down.

use std::collections::BTreeMap;

use ph_core::{AqpAnswer, Estimate};
use ph_types::PhError;

use crate::json::{obj, Json};

/// The HTTP status a [`PhError`] surfaces as.
///
/// 4xx = the request is at fault and retrying it unchanged cannot help
/// (malformed SQL, names that don't resolve, a schema the table rejects).
/// `503` = transient serving condition (a plan raced a seal — the retry the
/// session already does internally almost always absorbs this — or the table
/// is quarantined after failing open-time verification: unavailable until an
/// operator re-registers or drops it, while the rest of the catalog serves).
/// `500` = the server's own storage failed.
pub fn status_for(e: &PhError) -> u16 {
    match e {
        PhError::Parse(_) | PhError::UnknownColumn(_) | PhError::InvalidQuery(_) => 400,
        PhError::UnknownTable(_) => 404,
        PhError::Unsupported(_) | PhError::Schema(_) => 422,
        PhError::StalePlan(_) | PhError::Quarantined(_) => 503,
        PhError::Io(_) | PhError::Corrupt(_) => 500,
    }
}

/// The structured error body:
/// `{"error":{"kind":…,"status":…,"message":…[,"position":…]}}`.
/// `position` is the byte offset into the SQL text, when known (parse errors).
pub fn error_body(status: u16, kind: &str, message: &str, position: Option<usize>) -> Json {
    let mut members = vec![
        ("kind", Json::Str(kind.to_owned())),
        ("status", Json::Num(f64::from(status))),
        ("message", Json::Str(message.to_owned())),
    ];
    if let Some(at) = position {
        members.push(("position", Json::Num(at as f64)));
    }
    obj(vec![("error", obj(members))])
}

fn estimate_to_json(e: &Estimate) -> Json {
    obj(vec![
        ("value", Json::Num(e.value)),
        ("lo", Json::Num(e.lo)),
        ("hi", Json::Num(e.hi)),
        ("support", Json::Num(e.support)),
        ("mean", Json::Num(e.mean)),
    ])
}

fn estimate_from_json(v: &Json) -> Result<Estimate, String> {
    let field = |name: &str| -> Result<f64, String> {
        match v.get(name) {
            Some(Json::Num(x)) => Ok(*x),
            Some(Json::Null) | None => Err(format!("estimate is missing {name:?}")),
            Some(other) => Err(format!("estimate member {name:?} is not a number: {other:?}")),
        }
    };
    Ok(Estimate {
        value: field("value")?,
        lo: field("lo")?,
        hi: field("hi")?,
        support: field("support")?,
        mean: field("mean")?,
    })
}

/// `{"kind":"scalar","estimate":{…}|null}` or `{"kind":"groups","groups":{…}}`.
pub fn answer_to_json(answer: &AqpAnswer) -> Json {
    match answer {
        AqpAnswer::Scalar(e) => obj(vec![
            ("kind", Json::Str("scalar".into())),
            ("estimate", e.as_ref().map_or(Json::Null, estimate_to_json)),
        ]),
        AqpAnswer::Groups(groups) => obj(vec![
            ("kind", Json::Str("groups".into())),
            (
                "groups",
                Json::Obj(
                    groups.iter().map(|(g, e)| (g.clone(), estimate_to_json(e))).collect(),
                ),
            ),
        ]),
    }
}

/// Parses an answer produced by [`answer_to_json`]. A document that does not
/// have an answer's shape is [`PhError::Corrupt`] — the bytes claim to be an
/// answer and don't decode as one.
pub fn answer_from_json(doc: &Json) -> Result<AqpAnswer, PhError> {
    answer_from_json_inner(doc).map_err(PhError::Corrupt)
}

fn answer_from_json_inner(doc: &Json) -> Result<AqpAnswer, String> {
    match doc.get("kind").and_then(Json::as_str) {
        Some("scalar") => match doc.get("estimate") {
            Some(Json::Null) => Ok(AqpAnswer::Scalar(None)),
            Some(e) => Ok(AqpAnswer::Scalar(Some(estimate_from_json(e)?))),
            None => Err("scalar answer without an \"estimate\" member".into()),
        },
        Some("groups") => {
            let members = doc
                .get("groups")
                .and_then(Json::as_obj)
                .ok_or("groups answer without a \"groups\" object")?;
            let mut groups = BTreeMap::new();
            for (g, e) in members {
                groups.insert(g.clone(), estimate_from_json(e)?);
            }
            Ok(AqpAnswer::Groups(groups))
        }
        other => Err(format!("unknown answer kind {other:?}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn answers_roundtrip_bit_identically() {
        let scalar = AqpAnswer::Scalar(Some(Estimate {
            value: 1.0 / 3.0,
            lo: 0.1,
            hi: 123456.789e-3,
            support: 42.0,
            mean: -0.0,
        }));
        let null = AqpAnswer::Scalar(None);
        let mut m = BTreeMap::new();
        m.insert(
            "a b\"c".to_string(),
            Estimate { value: 2.5, lo: 2.0, hi: 3.0, support: 7.0, mean: 2.5 },
        );
        m.insert(
            "é☃".to_string(),
            Estimate { value: f64::MAX, lo: f64::MIN_POSITIVE, hi: f64::MAX, support: 0.0, mean: 0.0 },
        );
        let groups = AqpAnswer::Groups(m);
        for answer in [scalar, null, groups] {
            let json = answer_to_json(&answer).to_string();
            let back = answer_from_json(&Json::parse(&json).unwrap()).unwrap();
            assert_eq!(back, answer, "through {json}");
        }
    }

    #[test]
    fn status_mapping_covers_every_variant() {
        assert_eq!(status_for(&PhError::Parse("x".into())), 400);
        assert_eq!(status_for(&PhError::UnknownColumn("c".into())), 400);
        assert_eq!(status_for(&PhError::InvalidQuery("q".into())), 400);
        assert_eq!(status_for(&PhError::UnknownTable("t".into())), 404);
        assert_eq!(status_for(&PhError::Unsupported("u".into())), 422);
        assert_eq!(status_for(&PhError::Schema("s".into())), 422);
        assert_eq!(status_for(&PhError::StalePlan("p".into())), 503);
        assert_eq!(status_for(&PhError::Io("i".into())), 500);
        assert_eq!(status_for(&PhError::Corrupt("c".into())), 500);
        assert_eq!(status_for(&PhError::Quarantined("q".into())), 503);
    }
}
