//! `POST /ingest` body handling: JSON rows or CSV text → a typed [`Dataset`]
//! matching the target table's schema.
//!
//! The contract the regression tests pin: a body targeting an **unknown
//! table** fails with [`PhError::UnknownTable`] (→ 404), and a body whose rows
//! do not fit the table's schema — unknown fields, wrong types, unparsable
//! cells — fails with [`PhError::Schema`] (→ 422) naming the offending column
//! and row. Nothing in here panics on hostile input, and a failed ingest
//! leaves the table untouched (the batch is validated before
//! `Session::ingest` ever sees it).

use ph_core::Session;
use ph_types::{Column, ColumnType, Dataset, PhError};

use crate::http::Request;
use crate::json::Json;

/// One parsed cell before column assembly.
enum Cell {
    Null,
    Num(f64),
    Str(String),
}

/// Extracts `(table, batch)` from an ingest request. The table comes from the
/// `?table=` query parameter or the JSON body's `"table"` member; the rows
/// from the JSON body's `"rows"` array or, with `Content-Type: text/csv`, a
/// CSV body with a header line.
pub(crate) fn dataset_from_body(
    session: &Session,
    req: &Request,
) -> Result<(String, Dataset), PhError> {
    let is_csv = req
        .header("content-type")
        .is_some_and(|ct| ct.to_ascii_lowercase().contains("text/csv"));
    if is_csv {
        let table = req
            .param("table")
            .ok_or_else(|| {
                PhError::Schema("CSV ingest needs the target in a ?table= parameter".into())
            })?
            .to_string();
        let (names, cells) = parse_csv(&req.body)?;
        let batch = assemble(session, &table, &names, cells)?;
        return Ok((table, batch));
    }
    let text = std::str::from_utf8(&req.body)
        .map_err(|_| PhError::Schema("ingest body is not UTF-8".into()))?;
    let doc = Json::parse(text)
        .map_err(|e| PhError::Schema(format!("ingest body is not valid JSON: {e}")))?;
    let table = match (req.param("table"), doc.get("table").and_then(Json::as_str)) {
        (Some(t), _) => t.to_string(),
        (None, Some(t)) => t.to_string(),
        (None, None) => {
            return Err(PhError::Schema(
                "ingest needs a target table (?table= parameter or \"table\" member)".into(),
            ))
        }
    };
    let rows = doc
        .get("rows")
        .and_then(Json::as_arr)
        .ok_or_else(|| PhError::Schema("ingest body needs a \"rows\" array".into()))?;
    let (names, cells) = rows_from_json(rows)?;
    let batch = assemble(session, &table, &names, cells)?;
    Ok((table, batch))
}

/// Flattens JSON row objects into a column-name list plus row-major cells.
/// The column set is the **union** across all rows (a member absent from any
/// given row is NULL there); whether each name actually belongs to the target
/// table is checked later, in [`assemble`].
fn rows_from_json(rows: &[Json]) -> Result<(Vec<String>, Vec<Vec<Cell>>), PhError> {
    let mut names: Vec<String> = Vec::new();
    for (i, row) in rows.iter().enumerate() {
        let members = row
            .as_obj()
            .ok_or_else(|| PhError::Schema(format!("row {i} is not a JSON object")))?;
        for (k, _) in members {
            if !names.contains(k) {
                names.push(k.clone());
            }
        }
    }
    let mut out = Vec::with_capacity(rows.len());
    for (i, row) in rows.iter().enumerate() {
        let members = row
            .as_obj()
            .ok_or_else(|| PhError::Schema(format!("row {i} is not a JSON object")))?;
        let mut cells = Vec::with_capacity(names.len());
        for name in &names {
            let cell = match members.iter().find(|(k, _)| k == name).map(|(_, v)| v) {
                None | Some(Json::Null) => Cell::Null,
                Some(Json::Num(x)) => Cell::Num(*x),
                Some(Json::Str(s)) => Cell::Str(s.clone()),
                Some(other) => {
                    return Err(PhError::Schema(format!(
                        "row {i} column '{name}': unsupported JSON value {other:?}"
                    )))
                }
            };
            cells.push(cell);
        }
        out.push(cells);
    }
    Ok((names, out))
}

/// Minimal CSV: `\n`/`\r\n` rows, comma fields, double-quote quoting with `""`
/// escapes. An **unquoted** empty field is NULL; a quoted empty field is the
/// empty string.
fn parse_csv(body: &[u8]) -> Result<(Vec<String>, Vec<Vec<Cell>>), PhError> {
    let text = std::str::from_utf8(body)
        .map_err(|_| PhError::Schema("CSV body is not UTF-8".into()))?;
    let mut rows: Vec<Vec<(String, bool)>> = Vec::new(); // (field, was_quoted)
    let mut row: Vec<(String, bool)> = Vec::new();
    let mut field = String::new();
    let mut quoted = false;
    let mut in_quotes = false;
    let mut chars = text.chars().peekable();
    while let Some(c) = chars.next() {
        if in_quotes {
            match c {
                '"' => {
                    if chars.peek() == Some(&'"') {
                        chars.next();
                        field.push('"');
                    } else {
                        in_quotes = false;
                    }
                }
                c => field.push(c),
            }
            continue;
        }
        match c {
            '"' if field.is_empty() => {
                in_quotes = true;
                quoted = true;
            }
            ',' => {
                row.push((std::mem::take(&mut field), quoted));
                quoted = false;
            }
            '\n' => {
                row.push((std::mem::take(&mut field), quoted));
                quoted = false;
                rows.push(std::mem::take(&mut row));
            }
            // Only the '\r' of a "\r\n" pair is swallowed; a bare carriage
            // return stays in the field, so it surfaces as a type/parse error
            // downstream instead of silently altering the data.
            '\r' if chars.peek() == Some(&'\n') => {}
            c => field.push(c),
        }
    }
    if in_quotes {
        return Err(PhError::Schema("CSV body ends inside a quoted field".into()));
    }
    if !field.is_empty() || quoted || !row.is_empty() {
        row.push((field, quoted));
        rows.push(row);
    }
    // Drop blank trailing lines.
    rows.retain(|r| !matches!(r.as_slice(), [(f, false)] if f.is_empty()));
    let mut it = rows.into_iter();
    let header = it
        .next()
        .ok_or_else(|| PhError::Schema("CSV body has no header line".into()))?;
    let names: Vec<String> = header.into_iter().map(|(n, _)| n.trim().to_string()).collect();
    let mut out = Vec::new();
    for (i, row) in it.enumerate() {
        if row.len() != names.len() {
            return Err(PhError::Schema(format!(
                "CSV row {i} has {} fields, header has {}",
                row.len(),
                names.len()
            )));
        }
        out.push(
            row.into_iter()
                .map(|(f, was_quoted)| {
                    if f.is_empty() && !was_quoted {
                        Cell::Null
                    } else {
                        Cell::Str(f)
                    }
                })
                .collect(),
        );
    }
    Ok((names, out))
}

/// Assembles row-major cells into a [`Dataset`] with the target table's
/// column order and types. Every mismatch is a [`PhError::Schema`] naming the
/// offender; an unregistered table is [`PhError::UnknownTable`].
fn assemble(
    session: &Session,
    table: &str,
    names: &[String],
    rows: Vec<Vec<Cell>>,
) -> Result<Dataset, PhError> {
    let snapshot = session
        .engine(table)
        .ok_or_else(|| PhError::UnknownTable(table.to_string()))?;
    let pre = snapshot.engine().preprocessor().clone();
    // Map each schema column to its position in the payload. Unknown payload
    // columns are rejected — silently dropping data a client thought it
    // ingested is worse than a 4xx.
    for name in names {
        if !pre.names().iter().any(|n| n == name) {
            return Err(PhError::Schema(format!(
                "column '{name}' does not exist in table '{table}' (schema: {})",
                pre.names().join(", ")
            )));
        }
    }
    let mut builder = Dataset::builder(table);
    for col in 0..pre.n_columns() {
        let col_name = pre.names().get(col).ok_or_else(|| {
            PhError::Schema(format!("column index {col} out of range in table '{table}'"))
        })?;
        let at = names.iter().position(|n| n == col_name);
        fn cell(row: &[Cell], at: Option<usize>) -> &Cell {
            at.and_then(|j| row.get(j)).unwrap_or(&Cell::Null)
        }
        let bad = |i: usize, detail: &str| {
            PhError::Schema(format!(
                "row {i} column '{col_name}' of table '{table}': {detail}"
            ))
        };
        let column = match pre.column_type(col) {
            ty @ (ColumnType::Int | ColumnType::Timestamp) => {
                let mut vals = Vec::with_capacity(rows.len());
                for (i, row) in rows.iter().enumerate() {
                    vals.push(match cell(row, at) {
                        Cell::Null => None,
                        Cell::Num(x) => Some(int_from_f64(*x).ok_or_else(|| {
                            bad(i, &format!("{x} is not a representable integer"))
                        })?),
                        Cell::Str(s) => Some(
                            s.trim()
                                .parse::<i64>()
                                .map_err(|_| bad(i, &format!("{s:?} is not an integer")))?,
                        ),
                    });
                }
                if ty == ColumnType::Timestamp {
                    Column::from_timestamps(col_name.clone(), vals)
                } else {
                    Column::from_ints(col_name.clone(), vals)
                }
            }
            ColumnType::Float { scale } => {
                let mut vals = Vec::with_capacity(rows.len());
                for (i, row) in rows.iter().enumerate() {
                    vals.push(match cell(row, at) {
                        Cell::Null => None,
                        Cell::Num(x) => Some(*x),
                        Cell::Str(s) => Some(
                            s.trim()
                                .parse::<f64>()
                                .map_err(|_| bad(i, &format!("{s:?} is not a number")))?,
                        ),
                    });
                }
                Column::from_floats(col_name.clone(), vals, scale)
            }
            ColumnType::Categorical => {
                let mut vals: Vec<Option<String>> = Vec::with_capacity(rows.len());
                for (i, row) in rows.iter().enumerate() {
                    vals.push(match cell(row, at) {
                        Cell::Null => None,
                        Cell::Str(s) => Some(s.clone()),
                        Cell::Num(x) => {
                            return Err(bad(
                                i,
                                &format!("{x} is a number, the column is categorical"),
                            ))
                        }
                    });
                }
                Column::from_strings(col_name.clone(), vals.iter().map(|v| v.as_deref()).collect())
            }
        };
        builder = builder.column(column)?;
    }
    Ok(builder.build())
}

/// `x` as an exact `i64`, if it is one. The upper comparison must be strict
/// against 2⁶³ (`-(i64::MIN as f64)`, exactly representable): `i64::MAX as
/// f64` rounds *up* to 2⁶³, so a `<=` there would accept 2⁶³ itself and let
/// the `as` cast silently saturate it to `i64::MAX`.
fn int_from_f64(x: f64) -> Option<i64> {
    if x.fract() == 0.0 && x >= i64::MIN as f64 && x < -(i64::MIN as f64) {
        Some(x as i64)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::int_from_f64;

    #[test]
    fn int_from_f64_edges() {
        assert_eq!(int_from_f64(0.0), Some(0));
        assert_eq!(int_from_f64(-1.0), Some(-1));
        assert_eq!(int_from_f64(1.5), None);
        assert_eq!(int_from_f64(i64::MIN as f64), Some(i64::MIN));
        // 2^63 (== i64::MAX as f64, rounded up) must be rejected, not
        // saturated to i64::MAX.
        assert_eq!(int_from_f64(9_223_372_036_854_775_808.0), None);
        assert_eq!(int_from_f64(f64::NAN), None);
        assert_eq!(int_from_f64(f64::INFINITY), None);
    }
}
