//! Minimal HTTP/1.1 on raw `std::net` sockets: request/response head parsing,
//! a buffered connection wrapper, and response writing.
//!
//! Scope is exactly what the serving layer needs — `Content-Length` bodies,
//! keep-alive, case-insensitive headers, a query string on the request target —
//! not general HTTP (no chunked transfer, no multipart, no continuations).
//! Everything that parses bytes is **total**: hostile input yields a structured
//! [`HttpError`], never a panic (property-tested in `tests/fuzz.rs`).

use std::io::{Read, Write};
use std::time::Duration;

/// Hard cap on the size of a request or response head (start line + headers).
pub const MAX_HEAD_BYTES: usize = 16 * 1024;

/// Header list: lowercased names with their values, in order of appearance.
pub type Headers = Vec<(String, String)>;

/// A parsed response: status, headers, body.
pub type Response = (u16, Headers, Vec<u8>);

/// Failure modes of reading or parsing one HTTP message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HttpError {
    /// The bytes are not a well-formed HTTP/1.1 message.
    Malformed(String),
    /// Head or body exceeds the configured cap.
    TooLarge(String),
    /// The peer closed the connection mid-message.
    Incomplete,
    /// Socket-level failure (including read timeouts).
    Io(String),
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HttpError::Malformed(m) => write!(f, "malformed http message: {m}"),
            HttpError::TooLarge(m) => write!(f, "message too large: {m}"),
            HttpError::Incomplete => write!(f, "connection closed mid-message"),
            HttpError::Io(m) => write!(f, "i/o error: {m}"),
        }
    }
}

impl std::error::Error for HttpError {}

/// Lets callers `?` HTTP exchanges through code that speaks [`PhError`](ph_types::PhError):
/// socket failures are I/O, everything else is bytes that don't decode as the
/// protocol claims.
impl From<HttpError> for ph_types::PhError {
    fn from(e: HttpError) -> Self {
        match &e {
            HttpError::Io(_) => ph_types::PhError::Io(e.to_string()),
            _ => ph_types::PhError::Corrupt(e.to_string()),
        }
    }
}

/// One parsed request: start line, lowercased headers, query params and body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Method, uppercased (`GET`, `POST`, …).
    pub method: String,
    /// Path component of the target, percent-decoded (`/query`).
    pub path: String,
    /// Query-string parameters, percent-decoded, in order of appearance.
    pub params: Vec<(String, String)>,
    /// Headers with lowercased names, in order of appearance.
    pub headers: Vec<(String, String)>,
    /// The body (empty when there was no `Content-Length`).
    pub body: Vec<u8>,
}

impl Request {
    /// First header with this (case-insensitive) name.
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers.iter().find(|(n, _)| *n == name).map(|(_, v)| v.as_str())
    }

    /// First query-string parameter with this name.
    pub fn param(&self, name: &str) -> Option<&str> {
        self.params.iter().find(|(n, _)| n == name).map(|(_, v)| v.as_str())
    }

    /// Whether the client asked to keep the connection open afterwards
    /// (HTTP/1.1 default unless `Connection: close`).
    pub fn keep_alive(&self) -> bool {
        !self
            .header("connection")
            .is_some_and(|v| v.eq_ignore_ascii_case("close"))
    }
}

/// Splits `head` (everything before the blank line) into its lines, accepting
/// both `\r\n` and bare `\n` separators.
fn head_lines(head: &str) -> impl Iterator<Item = &str> {
    head.split('\n').map(|l| l.strip_suffix('\r').unwrap_or(l)).filter(|l| !l.is_empty())
}

/// Percent-decodes `s` (plus `+` → space, as in form encoding). Invalid escapes
/// are kept verbatim — decoding is for convenience, not validation.
fn percent_decode(s: &str) -> String {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0usize;
    while let Some(&byte) = bytes.get(i) {
        match byte {
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            b'%' => {
                let hex = bytes.get(i + 1..i + 3).and_then(|h| {
                    let h = std::str::from_utf8(h).ok()?;
                    u8::from_str_radix(h, 16).ok()
                });
                match hex {
                    Some(b) => {
                        out.push(b);
                        i += 3;
                    }
                    None => {
                        out.push(b'%');
                        i += 1;
                    }
                }
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

/// Parses the head of a request (everything up to, excluding, the blank line)
/// into method/path/params/headers. The body is attached by the caller.
pub fn parse_request_head(head: &[u8]) -> Result<Request, HttpError> {
    let text = std::str::from_utf8(head)
        .map_err(|_| HttpError::Malformed("head is not UTF-8".into()))?;
    let mut lines = head_lines(text);
    let start = lines.next().ok_or_else(|| HttpError::Malformed("empty head".into()))?;
    let mut parts = start.split_ascii_whitespace();
    let (method, target, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v), None) => (m, t, v),
        _ => {
            return Err(HttpError::Malformed(format!(
                "start line is not 'METHOD TARGET VERSION': {start:?}"
            )))
        }
    };
    if !version.starts_with("HTTP/1.") {
        return Err(HttpError::Malformed(format!("unsupported version {version:?}")));
    }
    let (raw_path, raw_query) = match target.split_once('?') {
        Some((p, q)) => (p, Some(q)),
        None => (target, None),
    };
    if !raw_path.starts_with('/') {
        return Err(HttpError::Malformed(format!("target must start with '/': {target:?}")));
    }
    let params = raw_query
        .map(|q| {
            q.split('&')
                .filter(|kv| !kv.is_empty())
                .map(|kv| match kv.split_once('=') {
                    Some((k, v)) => (percent_decode(k), percent_decode(v)),
                    None => (percent_decode(kv), String::new()),
                })
                .collect()
        })
        .unwrap_or_default();
    let headers = parse_header_lines(lines)?;
    Ok(Request {
        method: method.to_ascii_uppercase(),
        path: percent_decode(raw_path),
        params,
        headers,
        body: Vec::new(),
    })
}

/// Parses a response head into `(status, headers)`.
pub fn parse_response_head(head: &[u8]) -> Result<(u16, Headers), HttpError> {
    let text = std::str::from_utf8(head)
        .map_err(|_| HttpError::Malformed("head is not UTF-8".into()))?;
    let mut lines = head_lines(text);
    let start = lines.next().ok_or_else(|| HttpError::Malformed("empty head".into()))?;
    let mut parts = start.split_ascii_whitespace();
    let (version, status) = match (parts.next(), parts.next()) {
        (Some(v), Some(s)) => (v, s),
        _ => return Err(HttpError::Malformed(format!("bad status line {start:?}"))),
    };
    if !version.starts_with("HTTP/1.") {
        return Err(HttpError::Malformed(format!("unsupported version {version:?}")));
    }
    let status: u16 = status
        .parse()
        .map_err(|_| HttpError::Malformed(format!("bad status code {status:?}")))?;
    let headers = parse_header_lines(lines)?;
    Ok((status, headers))
}

fn parse_header_lines<'a>(
    lines: impl Iterator<Item = &'a str>,
) -> Result<Headers, HttpError> {
    let mut headers = Vec::new();
    for line in lines {
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| HttpError::Malformed(format!("header line without ':': {line:?}")))?;
        if name.is_empty() || name.contains(' ') {
            return Err(HttpError::Malformed(format!("bad header name {name:?}")));
        }
        headers.push((name.to_ascii_lowercase(), value.trim().to_string()));
    }
    Ok(headers)
}

/// The `Content-Length` of a message, if present and well-formed.
fn content_length(headers: &[(String, String)]) -> Result<usize, HttpError> {
    match headers.iter().find(|(n, _)| n == "content-length") {
        None => Ok(0),
        Some((_, v)) => v
            .parse::<usize>()
            .map_err(|_| HttpError::Malformed(format!("bad content-length {v:?}"))),
    }
}

/// Incremental, resumable request parsing for readiness-driven loops: attempts
/// to parse one complete request (head + `Content-Length` body) from the front
/// of `buf`, consuming its bytes on success.
///
/// - `Ok(Some(req))` — one request was parsed and drained from `buf`; call
///   again, the buffer may hold further pipelined requests.
/// - `Ok(None)` — the bytes so far are a valid prefix; keep them and call back
///   when more arrive. `buf` is untouched.
/// - `Err(..)` — the prefix can never become a valid request (malformed head,
///   head over [`MAX_HEAD_BYTES`], declared body over `max_body`). The
///   connection is unrecoverable: byte boundaries are lost.
///
/// Oversized bodies are rejected from the `Content-Length` header alone —
/// before the body arrives — so a hostile declaration never makes the loop
/// buffer it.
pub fn try_parse_request(
    buf: &mut Vec<u8>,
    max_body: usize,
) -> Result<Option<Request>, HttpError> {
    let Some(sep) = find_head_end(buf) else {
        if buf.len() > MAX_HEAD_BYTES {
            return Err(HttpError::TooLarge(format!("head exceeds {MAX_HEAD_BYTES} bytes")));
        }
        return Ok(None);
    };
    let head = buf.get(..sep.start).unwrap_or(buf);
    let mut req = parse_request_head(head)?;
    let len = content_length(&req.headers)?;
    if len > max_body {
        return Err(HttpError::TooLarge(format!(
            "body of {len} bytes exceeds the {max_body}-byte cap"
        )));
    }
    let total = sep.end.saturating_add(len);
    if buf.len() < total {
        return Ok(None);
    }
    req.body = buf.get(sep.end..total).unwrap_or(&[]).to_vec();
    buf.drain(..total.min(buf.len()));
    Ok(Some(req))
}

/// Serializes a response with a JSON body to wire bytes — the exact bytes
/// [`HttpConn::write_response`] emits, for loops that stage responses in a
/// per-connection write backlog instead of writing through a stream.
pub fn response_bytes(status: u16, body: &str, keep_alive: bool) -> Vec<u8> {
    response_bytes_typed(status, "application/json", body, keep_alive)
}

/// [`response_bytes`] with an explicit `Content-Type` — the Prometheus
/// `/metrics` exposition is text, not JSON.
pub fn response_bytes_typed(
    status: u16,
    content_type: &str,
    body: &str,
    keep_alive: bool,
) -> Vec<u8> {
    let head = format!(
        "HTTP/1.1 {status} {}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: {}\r\n\r\n",
        reason_phrase(status),
        body.len(),
        if keep_alive { "keep-alive" } else { "close" },
    );
    let mut out = Vec::with_capacity(head.len() + body.len());
    out.extend_from_slice(head.as_bytes());
    out.extend_from_slice(body.as_bytes());
    out
}

/// A buffered HTTP connection over any `Read + Write` stream (a `TcpStream` in
/// production, an in-memory pipe in tests). Reads whole messages; writes are
/// passed through.
pub struct HttpConn<S> {
    stream: S,
    buf: Vec<u8>,
}

impl<S: Read + Write> HttpConn<S> {
    /// Wraps a stream.
    pub fn new(stream: S) -> Self {
        Self { stream, buf: Vec::new() }
    }

    /// The underlying stream (to set socket options).
    pub fn stream(&self) -> &S {
        &self.stream
    }

    /// Reads until the head/blank-line boundary, returning the head bytes
    /// (excluding the blank line). `Ok(None)` on a clean close at a message
    /// boundary (no bytes buffered).
    fn read_head(&mut self) -> Result<Option<Vec<u8>>, HttpError> {
        loop {
            if let Some(pos) = find_head_end(&self.buf) {
                // find_head_end returns in-bounds offsets; the fallback arm is
                // unreachable and merely keeps the hot read loop panic-free.
                let head = self.buf.get(..pos.start).unwrap_or(&self.buf).to_vec();
                let drain_end = pos.end.min(self.buf.len());
                self.buf.drain(..drain_end);
                return Ok(Some(head));
            }
            if self.buf.len() > MAX_HEAD_BYTES {
                return Err(HttpError::TooLarge(format!(
                    "head exceeds {MAX_HEAD_BYTES} bytes"
                )));
            }
            let mut chunk = [0u8; 4096];
            match self.stream.read(&mut chunk) {
                Ok(0) => {
                    return if self.buf.is_empty() {
                        Ok(None)
                    } else {
                        Err(HttpError::Incomplete)
                    };
                }
                // Read's contract bounds n by the buffer length.
                Ok(n) => self.buf.extend_from_slice(chunk.get(..n).unwrap_or(&chunk)),
                Err(e) => return Err(io_error(e)),
            }
        }
    }

    /// Reads exactly `n` body bytes (some may already be buffered).
    fn read_body(&mut self, n: usize) -> Result<Vec<u8>, HttpError> {
        while self.buf.len() < n {
            let mut chunk = [0u8; 4096];
            match self.stream.read(&mut chunk) {
                Ok(0) => return Err(HttpError::Incomplete),
                // Read's contract bounds k by the buffer length.
                Ok(k) => self.buf.extend_from_slice(chunk.get(..k).unwrap_or(&chunk)),
                Err(e) => return Err(io_error(e)),
            }
        }
        // The loop above leaves at least n bytes buffered.
        let body = self.buf.get(..n).unwrap_or(&self.buf).to_vec();
        let drain_end = n.min(self.buf.len());
        self.buf.drain(..drain_end);
        Ok(body)
    }

    /// Reads one full request (head + `Content-Length` body). `Ok(None)` on a
    /// clean close between requests. `max_body` bounds the accepted body.
    pub fn read_request(&mut self, max_body: usize) -> Result<Option<Request>, HttpError> {
        let Some(head) = self.read_head()? else {
            return Ok(None);
        };
        let mut req = parse_request_head(&head)?;
        let len = content_length(&req.headers)?;
        if len > max_body {
            return Err(HttpError::TooLarge(format!(
                "body of {len} bytes exceeds the {max_body}-byte cap"
            )));
        }
        req.body = self.read_body(len)?;
        Ok(Some(req))
    }

    /// Reads one full response: `(status, headers, body)`.
    pub fn read_response(&mut self, max_body: usize) -> Result<Response, HttpError> {
        let head = self.read_head()?.ok_or(HttpError::Incomplete)?;
        let (status, headers) = parse_response_head(&head)?;
        let len = content_length(&headers)?;
        if len > max_body {
            return Err(HttpError::TooLarge(format!(
                "body of {len} bytes exceeds the {max_body}-byte cap"
            )));
        }
        let body = self.read_body(len)?;
        Ok((status, headers, body))
    }

    /// Writes a response with a JSON body (the bytes of [`response_bytes`]).
    pub fn write_response(
        &mut self,
        status: u16,
        body: &str,
        keep_alive: bool,
    ) -> Result<(), HttpError> {
        let bytes = response_bytes(status, body, keep_alive);
        self.stream.write_all(&bytes).map_err(io_error)?;
        self.stream.flush().map_err(io_error)
    }

    /// Writes a request with an optional body.
    pub fn write_request(
        &mut self,
        method: &str,
        target: &str,
        content_type: &str,
        body: &[u8],
    ) -> Result<(), HttpError> {
        let head = format!(
            "{method} {target} HTTP/1.1\r\nHost: ph-server\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: keep-alive\r\n\r\n",
            body.len(),
        );
        self.stream.write_all(head.as_bytes()).map_err(io_error)?;
        self.stream.write_all(body).map_err(io_error)?;
        self.stream.flush().map_err(io_error)
    }
}

impl HttpConn<std::net::TcpStream> {
    /// Applies the serving socket options: no Nagle delay, bounded reads, and
    /// bounded writes — a peer that stops draining its receive window stalls
    /// the response `write_all`, and without a deadline that parks the worker
    /// thread indefinitely.
    pub fn configure(
        &self,
        read_timeout: Duration,
        write_timeout: Duration,
    ) -> std::io::Result<()> {
        self.stream.set_nodelay(true)?;
        self.stream.set_read_timeout(Some(read_timeout))?;
        self.stream.set_write_timeout(Some(write_timeout))
    }
}

/// Byte range of the head/body separator: the head ends at `start`, the body
/// begins at `end`. Accepts `\r\n\r\n` and `\n\n`.
fn find_head_end(buf: &[u8]) -> Option<std::ops::Range<usize>> {
    let crlf = buf.windows(4).position(|w| w == b"\r\n\r\n").map(|p| p..p + 4);
    let lf = buf.windows(2).position(|w| w == b"\n\n").map(|p| p..p + 2);
    match (crlf, lf) {
        (Some(a), Some(b)) => Some(if a.start <= b.start { a } else { b }),
        (a, b) => a.or(b),
    }
}

fn io_error(e: std::io::Error) -> HttpError {
    HttpError::Io(e.to_string())
}

/// Standard reason phrase for the statuses this server emits.
pub fn reason_phrase(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        413 => "Payload Too Large",
        422 => "Unprocessable Entity",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_request_with_params_and_headers() {
        let head =
            b"POST /ingest?table=t%20x&mode=fast HTTP/1.1\r\nHost: h\r\nContent-Length: 3\r\n";
        let req = parse_request_head(head).unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/ingest");
        assert_eq!(req.param("table"), Some("t x"));
        assert_eq!(req.param("mode"), Some("fast"));
        assert_eq!(req.header("HOST"), Some("h"));
        assert!(req.keep_alive());
    }

    #[test]
    fn connection_close_is_honored() {
        let req =
            parse_request_head(b"GET / HTTP/1.1\r\nConnection: Close\r\n").unwrap();
        assert!(!req.keep_alive());
    }

    #[test]
    fn malformed_heads_are_errors_not_panics() {
        for bad in [
            &b""[..],
            b"GET",
            b"GET /",
            b"GET / HTTP/2.0\r\n",
            b"GET noslash HTTP/1.1\r\n",
            b"GET / HTTP/1.1 extra\r\n",
            b"GET / HTTP/1.1\r\nno colon here\r\n",
            b"GET / HTTP/1.1\r\n: empty name\r\n",
            b"\xFF\xFE / HTTP/1.1\r\n",
        ] {
            assert!(parse_request_head(bad).is_err(), "{bad:?} must be rejected");
        }
    }

    #[test]
    fn roundtrip_over_in_memory_stream() {
        // A Cursor-backed duplex: write a request into a buffer, read it back.
        let mut wire = Vec::new();
        {
            let mut conn = HttpConn::new(std::io::Cursor::new(&mut wire));
            conn.write_request("POST", "/query", "text/plain", b"SELECT 1").unwrap();
        }
        let mut conn = HttpConn::new(std::io::Cursor::new(wire));
        let req = conn.read_request(1024).unwrap().unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/query");
        assert_eq!(req.body, b"SELECT 1");
        // Next read: clean end of stream.
        assert_eq!(conn.read_request(1024).unwrap(), None);
    }

    #[test]
    fn response_roundtrip() {
        let mut wire = Vec::new();
        {
            let mut conn = HttpConn::new(std::io::Cursor::new(&mut wire));
            conn.write_response(404, "{\"error\":\"x\"}", true).unwrap();
        }
        let mut conn = HttpConn::new(std::io::Cursor::new(wire));
        let (status, headers, body) = conn.read_response(1024).unwrap();
        assert_eq!(status, 404);
        assert_eq!(body, b"{\"error\":\"x\"}");
        assert!(headers.iter().any(|(n, v)| n == "content-type" && v == "application/json"));
    }

    #[test]
    fn try_parse_is_resumable_byte_by_byte() {
        let wire = b"POST /query HTTP/1.1\r\nContent-Length: 8\r\n\r\nSELECT 1";
        let mut buf = Vec::new();
        let mut parsed = None;
        for (i, &b) in wire.iter().enumerate() {
            buf.push(b);
            match try_parse_request(&mut buf, 1024).unwrap() {
                Some(req) => {
                    assert_eq!(i, wire.len() - 1, "complete only at the last byte");
                    parsed = Some(req);
                }
                None => assert!(i < wire.len() - 1),
            }
        }
        let req = parsed.unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.body, b"SELECT 1");
        assert!(buf.is_empty(), "consumed exactly one message");
    }

    #[test]
    fn try_parse_drains_pipelined_requests_in_order() {
        let mut buf = Vec::new();
        buf.extend_from_slice(b"GET /healthz HTTP/1.1\r\n\r\n");
        buf.extend_from_slice(b"POST /query HTTP/1.1\r\nContent-Length: 2\r\n\r\nok");
        buf.extend_from_slice(b"GET /stats HTTP/1.1\r\nConnection: close\r\n\r\n");
        let a = try_parse_request(&mut buf, 1024).unwrap().unwrap();
        let b = try_parse_request(&mut buf, 1024).unwrap().unwrap();
        let c = try_parse_request(&mut buf, 1024).unwrap().unwrap();
        assert_eq!((a.path.as_str(), b.path.as_str(), c.path.as_str()), ("/healthz", "/query", "/stats"));
        assert_eq!(b.body, b"ok");
        assert!(!c.keep_alive());
        assert_eq!(try_parse_request(&mut buf, 1024).unwrap(), None);
        assert!(buf.is_empty());
    }

    #[test]
    fn try_parse_rejects_oversized_declarations_before_body_arrives() {
        let mut buf = b"POST /query HTTP/1.1\r\nContent-Length: 999999\r\n\r\n".to_vec();
        assert!(matches!(try_parse_request(&mut buf, 1024), Err(HttpError::TooLarge(_))));
        let mut runaway = vec![b'x'; MAX_HEAD_BYTES + 1];
        runaway.splice(..0, b"GET / HTTP/1.1\r\n".iter().copied());
        assert!(matches!(try_parse_request(&mut runaway, 1024), Err(HttpError::TooLarge(_))));
    }

    #[test]
    fn response_bytes_match_write_response() {
        for (status, body, ka) in [(200, "{\"x\":1}", true), (503, "overload", false)] {
            let mut wire = Vec::new();
            HttpConn::new(std::io::Cursor::new(&mut wire))
                .write_response(status, body, ka)
                .unwrap();
            assert_eq!(wire, response_bytes(status, body, ka));
        }
    }

    #[test]
    fn oversized_body_is_rejected() {
        let mut wire = Vec::new();
        {
            let mut conn = HttpConn::new(std::io::Cursor::new(&mut wire));
            conn.write_request("POST", "/query", "text/plain", &[b'x'; 100]).unwrap();
        }
        let mut conn = HttpConn::new(std::io::Cursor::new(wire));
        assert!(matches!(conn.read_request(10), Err(HttpError::TooLarge(_))));
    }
}
