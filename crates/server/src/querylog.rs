//! The server's append-only query log: every `/query` request (status, latency
//! and the SQL text) in the varint-compressed `PHQL1` record format defined by
//! [`ph_encoding`] (following Xie et al., "Query Log Compression for Workload
//! Analytics"). The log is the serving layer's workload memory — replayable by
//! the `logreplay` bench bin and by the end-to-end tests, which assert that a
//! replayed log reproduces the exact estimates the server returned.

use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::Path;
use std::sync::Mutex;
use std::time::{SystemTime, UNIX_EPOCH};

use ph_encoding::{read_qlog_body, write_qlog_record, QlogRecord, QLOG_MAGIC};
use ph_types::PhError;

struct LogInner {
    out: BufWriter<File>,
    prev_ts: u64,
}

/// Thread-safe appender. One mutex serializes record writes; the encoding work
/// per record is a handful of varints, so contention is negligible next to the
/// query execution the log trails.
pub struct QueryLogWriter {
    inner: Mutex<LogInner>,
}

impl QueryLogWriter {
    /// Creates (truncating) a log file at `path` and writes the magic.
    pub fn create(path: impl AsRef<Path>) -> Result<Self, PhError> {
        let mut out = BufWriter::new(File::create(path)?);
        out.write_all(QLOG_MAGIC)?;
        Ok(Self { inner: Mutex::new(LogInner { out, prev_ts: 0 }) })
    }

    /// Appends one record, stamped with the current wall clock, and flushes —
    /// a crash must lose at most the record being written.
    pub fn append(&self, status: u16, latency_micros: u64, sql: &str) {
        let ts_micros = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_micros() as u64)
            .unwrap_or(0);
        let rec = QlogRecord { ts_micros, status, latency_micros, sql: sql.to_string() };
        let mut buf = Vec::with_capacity(sql.len() + 16);
        let mut inner = self.inner.lock().expect("query log lock");
        inner.prev_ts = write_qlog_record(&mut buf, inner.prev_ts, &rec);
        // Log failures must not fail queries: serving is the product, the log
        // is the audit trail. A full disk degrades to a truncated log.
        let _ = inner.out.write_all(&buf);
        let _ = inner.out.flush();
    }

    /// Flushes buffered records to the file.
    pub fn flush(&self) {
        let _ = self.inner.lock().expect("query log lock").out.flush();
    }
}

/// Reads a whole query log back into records. Fails with
/// [`PhError::Corrupt`] on a bad magic or an undecodable record.
pub fn read_query_log(path: impl AsRef<Path>) -> Result<Vec<QlogRecord>, PhError> {
    let path = path.as_ref();
    let bytes = std::fs::read(path)?;
    let body = bytes
        .strip_prefix(&QLOG_MAGIC[..])
        .ok_or_else(|| PhError::Corrupt(format!("{}: not a PHQL1 query log", path.display())))?;
    read_qlog_body(body)
        .ok_or_else(|| PhError::Corrupt(format!("{}: truncated or corrupt record", path.display())))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn append_read_roundtrip() {
        let dir = std::env::temp_dir().join(format!("ph_qlog_test_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("q.phqlog");
        let log = QueryLogWriter::create(&path).unwrap();
        log.append(200, 412, "SELECT COUNT(x) FROM t;");
        log.append(400, 9, "SELEC oops");
        log.flush();
        let records = read_query_log(&path).unwrap();
        assert_eq!(records.len(), 2);
        assert_eq!(records[0].status, 200);
        assert_eq!(records[0].sql, "SELECT COUNT(x) FROM t;");
        assert_eq!(records[1].status, 400);
        assert!(records[1].ts_micros >= records[0].ts_micros, "monotone timestamps");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn bad_magic_is_corrupt_error() {
        let dir = std::env::temp_dir().join(format!("ph_qlog_bad_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bad.phqlog");
        std::fs::write(&path, b"NOTALOG").unwrap();
        assert!(matches!(read_query_log(&path), Err(PhError::Corrupt(_))));
        std::fs::remove_dir_all(&dir).ok();
    }
}
