//! The server's append-only query log: every `/query` request (status, latency
//! and the SQL text) in the varint-compressed `PHQL1` record format defined by
//! [`ph_encoding`] (following Xie et al., "Query Log Compression for Workload
//! Analytics"). The log is the serving layer's workload memory — replayable by
//! the `logreplay` bench bin and by the end-to-end tests, which assert that a
//! replayed log reproduces the exact estimates the server returned.
//!
//! All file I/O routes through [`ph_types::faultfs`], so the fault-injection
//! matrix can cut the log mid-record exactly like it cuts the WAL — and the
//! corruption tests assert that a damaged log degrades to its clean prefix
//! ([`read_query_log_lossy`]) rather than panicking or fabricating records.

use std::path::{Path, PathBuf};
use std::sync::Mutex;
use std::time::{SystemTime, UNIX_EPOCH};

use ph_encoding::{
    read_qlog_body, read_qlog_prefix, write_qlog_record, QlogRecord, QLOG_MAGIC,
};
use ph_types::{faultfs, PhError};

struct LogInner {
    path: PathBuf,
    prev_ts: u64,
}

/// Thread-safe appender. One mutex serializes record writes; the encoding work
/// per record is a handful of varints, so contention is negligible next to the
/// query execution the log trails.
pub struct QueryLogWriter {
    inner: Mutex<LogInner>,
}

impl QueryLogWriter {
    /// Creates (truncating) a log file at `path` and writes the magic.
    pub fn create(path: impl AsRef<Path>) -> Result<Self, PhError> {
        let path = path.as_ref().to_path_buf();
        faultfs::write(&path, QLOG_MAGIC)?;
        Ok(Self { inner: Mutex::new(LogInner { path, prev_ts: 0 }) })
    }

    /// Appends one record, stamped with the current wall clock. Each record is
    /// one appended write — a crash loses at most the record being written.
    pub fn append(&self, status: u16, latency_micros: u64, sql: &str) {
        let ts_micros = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_micros() as u64)
            .unwrap_or(0);
        let rec = QlogRecord { ts_micros, status, latency_micros, sql: sql.to_owned() };
        let mut buf = Vec::with_capacity(sql.len() + 16);
        // Poison recovery: a panicking appender can at worst have lost its own
        // record; prev_ts stays a valid clamp base either way.
        let mut inner = self.inner.lock().unwrap_or_else(|p| p.into_inner());
        inner.prev_ts = write_qlog_record(&mut buf, inner.prev_ts, &rec);
        // Log failures must not fail queries: serving is the product, the log
        // is the audit trail. A full disk degrades to a truncated log, which
        // the lossy reader salvages.
        // ph-lint: allow(lock-across-io) — the delta-timestamp chain requires file
        // order to match encode order, so the append must stay under the mutex
        let _ = faultfs::append(&inner.path, &buf);
    }

    /// Present for API compatibility: appends are unbuffered, so there is
    /// nothing to flush.
    pub fn flush(&self) {}
}

/// Reads a whole query log back into records. Fails with
/// [`PhError::Corrupt`] on a bad magic or an undecodable record.
pub fn read_query_log(path: impl AsRef<Path>) -> Result<Vec<QlogRecord>, PhError> {
    let path = path.as_ref();
    let bytes = faultfs::read(path)?;
    let body = bytes
        .strip_prefix(QLOG_MAGIC.as_slice())
        .ok_or_else(|| PhError::Corrupt(format!("{path:?}: not a PHQL1 query log")))?;
    read_qlog_body(body)
        .ok_or_else(|| PhError::Corrupt(format!("{path:?}: truncated or corrupt record")))
}

/// Reads as much of a query log as decodes cleanly. Returns the salvaged
/// records and whether the file was fully intact (`false` means a truncated or
/// corrupt tail was dropped). A missing or magic-less file salvages zero
/// records — degraded, never an error, never fabricated: every returned record
/// decoded from an intact byte range.
pub fn read_query_log_lossy(path: impl AsRef<Path>) -> (Vec<QlogRecord>, bool) {
    let Ok(bytes) = faultfs::read(path.as_ref()) else {
        return (Vec::new(), false);
    };
    let Some(body) = bytes.strip_prefix(QLOG_MAGIC.as_slice()) else {
        return (Vec::new(), false);
    };
    let (records, offset) = read_qlog_prefix(body);
    let intact = offset == body.len();
    (records, intact)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn append_read_roundtrip() {
        let dir = std::env::temp_dir().join(format!("ph_qlog_test_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("q.phqlog");
        let log = QueryLogWriter::create(&path).unwrap();
        log.append(200, 412, "SELECT COUNT(x) FROM t;");
        log.append(400, 9, "SELEC oops");
        log.flush();
        let records = read_query_log(&path).unwrap();
        assert_eq!(records.len(), 2);
        assert_eq!(records[0].status, 200);
        assert_eq!(records[0].sql, "SELECT COUNT(x) FROM t;");
        assert_eq!(records[1].status, 400);
        assert!(records[1].ts_micros >= records[0].ts_micros, "monotone timestamps");
        let (salvaged, intact) = read_query_log_lossy(&path);
        assert_eq!(salvaged, records);
        assert!(intact);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn bad_magic_is_corrupt_error() {
        let dir = std::env::temp_dir().join(format!("ph_qlog_bad_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bad.phqlog");
        std::fs::write(&path, b"NOTALOG").unwrap();
        assert!(matches!(read_query_log(&path), Err(PhError::Corrupt(_))));
        let (salvaged, intact) = read_query_log_lossy(&path);
        assert!(salvaged.is_empty());
        assert!(!intact);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn truncated_log_salvages_clean_prefix() {
        let dir = std::env::temp_dir().join(format!("ph_qlog_trunc_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.phqlog");
        let log = QueryLogWriter::create(&path).unwrap();
        log.append(200, 10, "SELECT 1;");
        log.append(200, 20, "SELECT 2;");
        let full = std::fs::read(&path).unwrap();
        // Cut mid-way through the second record.
        std::fs::write(&path, &full[..full.len() - 3]).unwrap();
        assert!(read_query_log(&path).is_err(), "strict reader refuses the cut log");
        let (salvaged, intact) = read_query_log_lossy(&path);
        assert_eq!(salvaged.len(), 1, "first record salvaged");
        assert_eq!(salvaged[0].sql, "SELECT 1;");
        assert!(!intact);
        std::fs::remove_dir_all(&dir).ok();
    }
}
