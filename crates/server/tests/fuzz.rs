//! Fuzz-style property tests for everything in the serving layer that parses
//! bytes off a socket or a disk: the HTTP request/response head parser, the
//! JSON reader, and the query-log record codec. The invariant everywhere is
//! **totality** — hostile, truncated or mutated input produces a structured
//! error, never a panic — plus round-trip identity for well-formed input.

use proptest::prelude::*;

use ph_encoding::{read_qlog_body, write_qlog_record, QlogRecord};
use ph_server::http::{parse_request_head, parse_response_head};
use ph_server::Json;

/// A printable-ish byte soup: biased toward the bytes HTTP heads are made of,
/// so mutations reach deeper than the first character check.
fn http_ish_bytes(n: usize) -> impl Strategy<Value = Vec<u8>> {
    prop::collection::vec(any::<u8>(), 0..n).prop_map(|v| {
        v.into_iter()
            .map(|b| match b % 8 {
                0 => b' ',
                1 => b'\r',
                2 => b'\n',
                3 => b':',
                4 => b'/',
                5 => b'A' + (b / 8) % 26,
                6 => b'0' + (b / 8) % 10,
                _ => b,
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Raw byte soup never panics the request-head parser.
    #[test]
    fn request_head_parser_is_total(bytes in http_ish_bytes(300)) {
        let _ = parse_request_head(&bytes);
    }

    /// Nor the response-head parser.
    #[test]
    fn response_head_parser_is_total(bytes in http_ish_bytes(300)) {
        let _ = parse_response_head(&bytes);
    }

    /// Single-byte corruptions of a valid request head: parse or clean error,
    /// and on success the structured fields stay in-bounds strings.
    #[test]
    fn mutated_valid_request_heads(at in 0usize..70, with in any::<u8>()) {
        let valid = b"POST /query?x=1 HTTP/1.1\r\nHost: h\r\nContent-Length: 10\r\n".to_vec();
        let mut mutated = valid;
        let at = at % mutated.len();
        mutated[at] = with;
        if let Ok(req) = parse_request_head(&mutated) {
            prop_assert!(!req.method.is_empty());
            prop_assert!(req.path.starts_with('/') || !req.path.is_empty());
        }
    }

    /// The JSON reader is total on arbitrary strings…
    #[test]
    fn json_parser_is_total(bytes in prop::collection::vec(any::<u8>(), 0..300)) {
        let text = String::from_utf8_lossy(&bytes);
        let _ = Json::parse(&text);
    }

    /// …and print → parse is identity on values it built itself.
    #[test]
    fn json_roundtrip(n in 0usize..30, seed in any::<u64>()) {
        // A deterministic value tree from the seed, depth-bounded.
        fn build(mut s: u64, depth: usize, budget: &mut usize) -> Json {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            *budget = budget.saturating_sub(1);
            match if depth == 0 || *budget == 0 { s % 4 } else { s % 6 } {
                0 => Json::Null,
                1 => Json::Bool(s & 16 != 0),
                2 => Json::Num(if f64::from_bits(s).is_finite() { f64::from_bits(s) } else { s as f64 }),
                3 => Json::Str(format!("s{}\"\\é☃\n", s % 100)),
                4 => Json::Arr((0..(s % 4)).map(|i| build(s ^ i, depth - 1, budget)).collect()),
                _ => Json::Obj(
                    (0..(s % 4)).map(|i| (format!("k{i}"), build(s ^ (i << 8), depth - 1, budget))).collect(),
                ),
            }
        }
        let mut budget = n + 1;
        let v = build(seed, 4, &mut budget);
        let text = v.to_string();
        let back = Json::parse(&text);
        prop_assert_eq!(back.as_ref(), Ok(&v), "through {}", text);
    }

    /// Query-log records round-trip through the codec, and any truncation of
    /// the encoded stream fails cleanly instead of panicking or mis-decoding.
    #[test]
    fn qlog_roundtrip_and_truncation(
        seeds in prop::collection::vec((any::<u32>(), any::<u16>(), any::<u32>(), 0usize..50), 1..6),
        cut_frac in 0u8..100,
    ) {
        let mut records: Vec<QlogRecord> = seeds
            .into_iter()
            .map(|(ts, status, lat, n)| QlogRecord {
                ts_micros: u64::from(ts),
                status,
                latency_micros: u64::from(lat),
                sql: "SELECT é☃ ".chars().cycle().take(n).collect(),
            })
            .collect();
        let mut prev = 0u64;
        for r in &mut records {
            r.ts_micros = r.ts_micros.max(prev); // the writer's monotone clamp
            prev = r.ts_micros;
        }
        let mut buf = Vec::new();
        let mut prev = 0u64;
        for r in &records {
            prev = write_qlog_record(&mut buf, prev, r);
        }
        let decoded = read_qlog_body(&buf);
        prop_assert_eq!(decoded.as_deref(), Some(&records[..]));
        // Truncating the stream must either fail cleanly (cut mid-record) or
        // decode a strict prefix of the records (cut on a record boundary) —
        // never panic, never invent data.
        if !buf.is_empty() {
            let cut = (buf.len() - 1) * usize::from(cut_frac) / 100;
            match read_qlog_body(&buf[..cut]) {
                None => {}
                Some(prefix) => {
                    prop_assert!(prefix.len() < records.len());
                    prop_assert_eq!(&records[..prefix.len()], &prefix[..]);
                }
            }
        }
    }

    /// Arbitrary bytes never panic the qlog reader.
    #[test]
    fn qlog_reader_is_total(bytes in prop::collection::vec(any::<u8>(), 0..300)) {
        let _ = read_qlog_body(&bytes);
    }
}
