//! Event-loop serving tests: the behaviors the readiness-driven architecture
//! exists for, over real loopback sockets — pipelining with strict response
//! ordering and bit-identical answers, the connection-cap `503` door, a
//! slowloris client closed at the read deadline without hurting neighbors,
//! a 1000-strong idle keep-alive population held while traffic flows, and
//! the zero-worker inline-execution mode.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

use ph_core::Session;
use ph_server::{Client, Json, Server, ServerConfig};
use ph_types::{Column, Dataset};

fn demo_dataset(name: &str, n: usize) -> Dataset {
    let x: Vec<Option<i64>> = (0..n).map(|i| Some((i as i64 * 7) % 1000)).collect();
    let y: Vec<Option<f64>> = (0..n)
        .map(|i| if i % 29 == 0 { None } else { Some(((i as i64 * 13) % 500) as f64 / 10.0) })
        .collect();
    Dataset::builder(name)
        .column(Column::from_ints("x", x))
        .unwrap()
        .column(Column::from_floats("y", y, 1))
        .unwrap()
        .build()
}

fn serve(cfg: ServerConfig, rows: usize) -> (Arc<Session>, Server) {
    let session = Arc::new(Session::new());
    session.register(demo_dataset("demo", rows)).unwrap();
    let server = Server::bind(session.clone(), "127.0.0.1:0", cfg).expect("bind ephemeral port");
    (session, server)
}

/// Pipelined queries are answered strictly in request order, each answer
/// bit-identical to the in-process session — out-of-order executor completion
/// (several workers race on the batch) must never reorder the wire.
#[test]
fn pipelined_responses_are_in_order_and_bit_identical() {
    let cfg = ServerConfig { workers: 4, ..Default::default() };
    let (session, server) = serve(cfg, 9_000);
    let sqls = [
        "SELECT COUNT(y) FROM demo WHERE x > 500;",
        "SELECT AVG(y) FROM demo WHERE x > 100 AND x < 900;",
        "SELECT SUM(y) FROM demo WHERE x <= 250;",
        "SELECT VAR(y) FROM demo WHERE x > 10;",
        "SELECT MAX(y) FROM demo WHERE x > 700;",
        "SELECT COUNT(y) FROM demo WHERE x > 900;",
    ];
    let mut client = Client::new(server.local_addr().to_string());
    for _ in 0..5 {
        let answers = client.query_pipelined(&sqls)
            .expect("pipelined batch");
        assert_eq!(answers.len(), sqls.len());
        for (sql, answer) in sqls.iter().zip(answers) {
            let direct = session.sql(sql).expect(sql);
            assert_eq!(answer.expect(sql), direct, "in-order, bit-identical for {sql}");
        }
    }
    // A mid-batch error keeps its slot: the batch stays ordered around it.
    let mixed = vec![sqls[0], "SELEC broken", sqls[1]];
    let answers = client.query_pipelined(&mixed).expect("mixed batch");
    assert!(answers[0].is_ok());
    assert!(answers[1].is_err(), "the parse error answers in position 1");
    assert!(answers[2].is_ok());
    let stats = server.stats();
    assert!(
        stats.pipelined_requests > 0,
        "pipelined batches must register in the counter: {stats:?}"
    );
    server.shutdown();
}

/// Over the connection cap the server answers `503` at the door and closes —
/// it does not silently queue, hang, or accept-and-starve.
#[test]
fn connections_over_the_cap_get_503_at_the_door() {
    let cfg = ServerConfig { max_connections: 4, workers: 1, ..Default::default() };
    let (_session, server) = serve(cfg, 1_000);
    let addr = server.local_addr();
    // Fill the cap with idle keep-alive sockets, confirming each is accepted
    // (a healthz round-trip proves the server registered it).
    let mut held = Vec::new();
    for _ in 0..4 {
        let mut c = Client::new(addr.to_string());
        c.healthz().expect("under the cap, the connection serves");
        held.push(c);
    }
    // The next connection is shed with an explicit 503 body, then closed.
    let mut rejected = TcpStream::connect(addr).unwrap();
    rejected.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    let mut reply = String::new();
    rejected.read_to_string(&mut reply).expect("503 then EOF");
    assert!(reply.starts_with("HTTP/1.1 503"), "door reply: {reply:?}");
    assert!(reply.contains("overload"), "door reply body: {reply:?}");
    assert!(server.rejected() >= 1);
    // Freeing a slot restores admission.
    drop(held.pop());
    std::thread::sleep(Duration::from_millis(100));
    let mut fresh = Client::new(addr.to_string());
    fresh.healthz().expect("slot freed, admission restored");
    server.shutdown();
}

/// A slowloris client — trickling a request head byte-by-byte forever — is
/// closed at the read deadline (which partial progress must NOT extend), and
/// neighbors' queries keep answering promptly the whole time.
#[test]
fn slowloris_is_closed_at_deadline_without_degrading_neighbors() {
    let cfg = ServerConfig {
        read_timeout: Duration::from_millis(400),
        idle_timeout: Duration::from_secs(60),
        workers: 2,
        max_connections: 64,
        ..Default::default()
    };
    let (_session, server) = serve(cfg, 4_000);
    let addr = server.local_addr();

    let attacker = std::thread::spawn(move || {
        let mut s = TcpStream::connect(addr).unwrap();
        s.set_nodelay(true).ok();
        let head = b"POST /query HTTP/1.1\r\nContent-Length: 400\r\n";
        let t0 = Instant::now();
        // One byte every 25 ms: steady progress, never a complete request.
        for b in head.iter().cycle() {
            if s.write_all(std::slice::from_ref(b)).is_err() {
                break; // server closed us — the defense worked
            }
            std::thread::sleep(Duration::from_millis(25));
            if t0.elapsed() > Duration::from_secs(5) {
                return None; // never closed: the defense failed
            }
        }
        Some(t0.elapsed())
    });

    // A neighbor issues queries the whole time the attack runs.
    let mut neighbor = Client::new(addr.to_string());
    let mut latencies = Vec::new();
    let t0 = Instant::now();
    while t0.elapsed() < Duration::from_millis(900) {
        let t = Instant::now();
        neighbor
            .query("SELECT COUNT(y) FROM demo WHERE x > 500;")
            .expect("neighbor stays served during the attack");
        latencies.push(t.elapsed());
    }
    let closed_after = attacker
        .join()
        .expect("attacker thread")
        .expect("slowloris connection must be closed, not held forever");
    // Closed at the deadline: after read_timeout, well before the trickle
    // could ever finish (cycle() never completes a request).
    assert!(
        closed_after >= Duration::from_millis(300),
        "closed suspiciously early ({closed_after:?}) — before the deadline could expire"
    );
    assert!(
        closed_after < Duration::from_secs(4),
        "took too long to shed the slowloris connection: {closed_after:?}"
    );
    // Neighbor p50 stays interactive — the trickling socket costs the loop a
    // few wakeups, not a blocked worker.
    latencies.sort();
    let p50 = latencies[latencies.len() / 2];
    assert!(
        p50 < Duration::from_millis(100),
        "neighbor p50 degraded to {p50:?} during slowloris"
    );
    server.shutdown();
}

/// The tentpole capacity claim at test scale: 1000 idle keep-alive sockets
/// held open while query traffic flows, all visible in the stats, and a
/// graceful shutdown that drains the lot cleanly.
#[test]
fn holds_1000_idle_keepalive_connections_while_serving() {
    let cfg = ServerConfig {
        max_connections: 1_200,
        workers: 2,
        idle_timeout: Duration::from_secs(120),
        ..Default::default()
    };
    let (session, server) = serve(cfg, 6_000);
    let addr = server.local_addr();

    let held: Vec<TcpStream> =
        (0..1_000).map(|i| TcpStream::connect(addr).unwrap_or_else(|e| panic!("conn {i}: {e}"))).collect();
    // The accept loop is readiness-driven; give it a beat to drain the backlog.
    let t0 = Instant::now();
    while server.stats().open_connections < 1_000 {
        assert!(t0.elapsed() < Duration::from_secs(10), "accepting 1000 conns stalled");
        std::thread::sleep(Duration::from_millis(20));
    }

    // Traffic still flows at interactive latency with the population held.
    let mut client = Client::new(addr.to_string());
    let sql = "SELECT COUNT(y) FROM demo WHERE x > 500;";
    let direct = session.sql(sql).unwrap();
    for _ in 0..50 {
        assert_eq!(client.query(sql).expect("query across held population"), direct);
    }
    let stats = server.stats();
    assert!(stats.open_connections >= 1_001, "1000 held + the client: {stats:?}");
    assert!(stats.accepted_connections >= 1_001);
    assert_eq!(stats.rejected_503, 0, "nothing shed below the cap");

    // /stats agrees over the wire.
    let doc = client.stats().unwrap();
    let open = doc
        .get("server")
        .and_then(|s| s.get("connections"))
        .and_then(|c| c.get("open"))
        .and_then(Json::as_f64)
        .unwrap();
    assert!(open >= 1_001.0);

    // Graceful shutdown drains 1000+ open sockets and joins every thread.
    let t0 = Instant::now();
    server.shutdown();
    assert!(t0.elapsed() < Duration::from_secs(10), "shutdown with a held population stalled");
    // The held sockets observe EOF: the server really closed them.
    let mut seen_eof = 0;
    for mut s in held.into_iter().take(32) {
        s.set_read_timeout(Some(Duration::from_millis(500))).unwrap();
        let mut byte = [0u8; 1];
        if matches!(s.read(&mut byte), Ok(0)) {
            seen_eof += 1;
        }
    }
    assert!(seen_eof >= 30, "held sockets should see EOF after shutdown, got {seen_eof}/32");
}

/// `workers: 0` is the inline-execution mode: the event loop runs queries
/// itself with a per-drain shared snapshot. Same answers, same contracts.
#[test]
fn inline_mode_serves_without_executor_threads() {
    let cfg = ServerConfig { workers: 0, queue_depth: 16, max_connections: 32, ..Default::default() };
    let (session, server) = serve(cfg, 6_000);
    let mut client = Client::new(server.local_addr().to_string());
    for sql in [
        "SELECT COUNT(y) FROM demo WHERE x > 500;",
        "SELECT AVG(y) FROM demo WHERE x > 100 AND x < 900;",
    ] {
        assert_eq!(client.query(sql).expect(sql), session.sql(sql).expect(sql));
    }
    let answers = client
        .query_pipelined(&[
            "SELECT COUNT(y) FROM demo WHERE x > 500;",
            "SELECT SUM(y) FROM demo WHERE x <= 250;",
        ])
        .expect("pipelined in inline mode");
    assert!(answers.iter().all(Result::is_ok));
    assert!(client.healthz().is_ok());
    server.shutdown();
}
