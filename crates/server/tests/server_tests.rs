//! Integration tests of the serving layer over real loopback sockets: answer
//! fidelity vs the in-process `Session`, the `PhError` → HTTP status contract,
//! ingest through both body formats, the ingest error regression (unknown
//! table / mismatched schema must be clean 4xx, and must not poison the
//! server), and the query log.

use std::sync::Arc;

use ph_core::Session;
use ph_server::{read_query_log, Client, ClientError, Json, Server, ServerConfig};
use ph_types::{Column, Dataset, PhError};

fn demo_dataset(name: &str, n: usize) -> Dataset {
    // Deterministic, mixed-type, with anchored minima so in-distribution
    // ingest batches stay on the edge-free path.
    let x: Vec<Option<i64>> = (0..n).map(|i| Some((i as i64 * 7) % 1000)).collect();
    let y: Vec<Option<f64>> =
        (0..n).map(|i| if i % 29 == 0 { None } else { Some(((i as i64 * 13) % 500) as f64 / 10.0) }).collect();
    let c: Vec<Option<&str>> = (0..n).map(|i| Some(["a", "b", "c", "d"][i % 4])).collect();
    Dataset::builder(name)
        .column(Column::from_ints("x", x))
        .unwrap()
        .column(Column::from_floats("y", y, 1))
        .unwrap()
        .column(Column::from_strings("c", c))
        .unwrap()
        .build()
}

fn serve(session: Arc<Session>, cfg: ServerConfig) -> (Server, Client) {
    let server = Server::bind(session, "127.0.0.1:0", cfg).expect("bind ephemeral port");
    let client = Client::new(server.local_addr().to_string());
    (server, client)
}

#[test]
fn query_answers_match_direct_session_bit_identically() {
    let session = Arc::new(Session::new());
    session.register(demo_dataset("demo", 9_000)).unwrap();
    let (server, mut client) = serve(session.clone(), ServerConfig::default());
    for sql in [
        "SELECT COUNT(y) FROM demo WHERE x > 500;",
        "SELECT AVG(y) FROM demo WHERE x > 100 AND x < 900;",
        "SELECT SUM(y) FROM demo WHERE x <= 250 OR c = 'b';",
        "SELECT VAR(y) FROM demo WHERE x > 10;",
        "SELECT MEDIAN(y) FROM demo WHERE x > 10;",
        "SELECT COUNT(y) FROM demo WHERE x > 500 GROUP BY c;",
        // Empty selection → SQL NULL for AVG.
        "SELECT AVG(y) FROM demo WHERE x > 100000;",
    ] {
        let via_server = client.query(sql).expect(sql);
        let direct = session.sql(sql).expect(sql);
        assert_eq!(via_server, direct, "wire round trip must be bit-identical for {sql}");
    }
    server.shutdown();
}

#[test]
fn error_statuses_follow_the_mapping() {
    let session = Arc::new(Session::new());
    session.register(demo_dataset("demo", 2_000)).unwrap();
    let (server, mut client) = serve(session, ServerConfig::default());

    // Parse error: 400 with the byte offset recovered.
    match client.query("SELEC nope") {
        Err(ClientError::Server { status: 400, kind, position, .. }) => {
            assert_eq!(kind, "parse");
            assert_eq!(position, Some(0));
        }
        other => panic!("expected a 400 parse error, got {other:?}"),
    }
    // Unknown table: 404.
    match client.query("SELECT COUNT(x) FROM missing;") {
        Err(ClientError::Server { status: 404, kind, .. }) => assert_eq!(kind, "unknown_table"),
        other => panic!("expected a 404, got {other:?}"),
    }
    // Unknown column: 400.
    match client.query("SELECT COUNT(nope) FROM demo;") {
        Err(ClientError::Server { status: 400, kind, .. }) => assert_eq!(kind, "unknown_column"),
        other => panic!("expected a 400, got {other:?}"),
    }
    // Ill-typed query: 400.
    match client.query("SELECT SUM(c) FROM demo;") {
        Err(ClientError::Server { status: 400, kind, .. }) => assert_eq!(kind, "invalid_query"),
        other => panic!("expected a 400, got {other:?}"),
    }
    server.shutdown();
}

/// The regression the issue calls out: `/ingest` against an unknown table or
/// with a mismatched schema must produce a *structured error*, not a panic or
/// an empty response — and the server must keep serving afterwards.
#[test]
fn ingest_unknown_table_and_schema_mismatch_are_clean_errors() {
    let session = Arc::new(Session::new());
    session.register(demo_dataset("demo", 2_000)).unwrap();
    let (server, mut client) = serve(session.clone(), ServerConfig::default());

    let row = |x: f64| {
        Json::Obj(vec![
            ("x".into(), Json::Num(x)),
            ("y".into(), Json::Num(1.5)),
            ("c".into(), Json::Str("a".into())),
        ])
    };

    // Unknown table → 404 unknown_table.
    match client.ingest_rows("nosuch", vec![row(1.0)]) {
        Err(ClientError::Server { status: 404, kind, .. }) => assert_eq!(kind, "unknown_table"),
        other => panic!("expected 404, got {other:?}"),
    }
    // Unknown column → 422 schema, naming the offender.
    let bad = Json::Obj(vec![("bogus".into(), Json::Num(1.0))]);
    match client.ingest_rows("demo", vec![bad]) {
        Err(ClientError::Server { status: 422, kind, message, .. }) => {
            assert_eq!(kind, "schema");
            assert!(message.contains("bogus"), "{message}");
        }
        other => panic!("expected 422, got {other:?}"),
    }
    // Type mismatch (string into the numeric column) → 422 schema.
    let bad = Json::Obj(vec![("x".into(), Json::Str("not a number".into()))]);
    match client.ingest_rows("demo", vec![bad]) {
        Err(ClientError::Server { status: 422, kind, .. }) => assert_eq!(kind, "schema"),
        other => panic!("expected 422, got {other:?}"),
    }
    // Non-integer into the integer column → 422 schema.
    let bad = Json::Obj(vec![("x".into(), Json::Num(1.5))]);
    match client.ingest_rows("demo", vec![bad]) {
        Err(ClientError::Server { status: 422, kind, .. }) => assert_eq!(kind, "schema"),
        other => panic!("expected 422, got {other:?}"),
    }
    // Malformed JSON body and a rows-less body → 4xx, not a hang or empty reply.
    match client.ingest_rows("demo", vec![Json::Num(3.0)]) {
        Err(ClientError::Server { status: 422, .. }) => {}
        other => panic!("expected 422, got {other:?}"),
    }

    // Nothing above may have changed the table or wedged the server.
    let stats = session.table_stats("demo").unwrap();
    assert_eq!(stats.sealed_rows, 2_000);
    assert_eq!(stats.delta_rows, 0);
    assert!(client.healthz().is_ok(), "server keeps serving after bad ingests");
    assert!(client.query("SELECT COUNT(y) FROM demo WHERE x > 10;").is_ok());
    server.shutdown();
}

#[test]
fn ingest_lands_rows_via_json_and_csv() {
    let session = Arc::new(Session::new());
    session.register(demo_dataset("demo", 4_000)).unwrap();
    let (server, mut client) = serve(session.clone(), ServerConfig::default());

    // JSON rows, including a NULL (missing member) and an explicit null.
    let rows: Vec<Json> = (0..50)
        .map(|i| {
            let mut members = vec![
                ("x".to_string(), Json::Num(f64::from(i % 100))),
                ("c".to_string(), Json::Str(["a", "b"][i as usize % 2].into())),
            ];
            if i % 5 != 0 {
                members.push(("y".to_string(), Json::Num(f64::from(i) / 10.0)));
            } else {
                members.push(("y".to_string(), Json::Null));
            }
            Json::Obj(members)
        })
        .collect();
    let report = client.ingest_rows("demo", rows).expect("json ingest");
    assert_eq!(report.get("rows").and_then(Json::as_f64), Some(50.0));

    // CSV with quoting, an unquoted empty (NULL) and \r\n endings.
    let csv = "x,y,c\r\n1,2.5,\"a\"\r\n2,,b\r\n3,7.5,\"c,with comma\"\r\n";
    let report = client.ingest_csv("demo", csv).expect("csv ingest");
    assert_eq!(report.get("rows").and_then(Json::as_f64), Some(3.0));

    let stats = session.table_stats("demo").unwrap();
    assert_eq!(stats.delta_rows + stats.sealed_rows, 4_000 + 50 + 3);
    // The quoted comma became one categorical value.
    let via = client.query("SELECT COUNT(x) FROM demo WHERE c = 'c,with comma';").unwrap();
    let direct = session.sql("SELECT COUNT(x) FROM demo WHERE c = 'c,with comma';").unwrap();
    assert_eq!(via, direct);
    server.shutdown();
}

#[test]
fn endpoints_and_methods_are_routed() {
    let session = Arc::new(Session::new());
    session.register(demo_dataset("demo", 1_000)).unwrap();
    let (server, mut client) = serve(session, ServerConfig::default());

    let health = client.healthz().unwrap();
    assert_eq!(health.get("status").and_then(Json::as_str), Some("ok"));
    assert_eq!(health.get("tables").and_then(Json::as_f64), Some(1.0));

    assert_eq!(client.tables().unwrap(), vec!["demo".to_string()]);

    client.query("SELECT COUNT(y) FROM demo WHERE x > 10;").unwrap();
    let stats = client.stats().unwrap();
    assert!(stats.get("plan_cache").is_some());
    // Every registered table reports the row-store codec mix the seal-time
    // cascade picked; the column counts must cover the table's four columns.
    let tables = match stats.get("tables") {
        Some(Json::Arr(tables)) => tables,
        other => panic!("tables should be an array, got {other:?}"),
    };
    let mix = tables[0].get("codec_mix").unwrap();
    let total: f64 = match mix {
        Json::Obj(entries) => entries.iter().filter_map(|(_, v)| v.as_f64()).sum(),
        other => panic!("codec_mix should be an object, got {other:?}"),
    };
    assert!(total > 0.0, "codec mix covers at least one column: {mix:?}");
    let endpoints = stats.get("server").and_then(|s| s.get("endpoints")).unwrap();
    let q = endpoints.get("query").unwrap();
    assert_eq!(q.get("requests").and_then(Json::as_f64), Some(1.0));
    assert!(q.get("p50_us").and_then(Json::as_f64).unwrap() > 0.0);

    // Connection-level serving counters: this client's keep-alive socket is
    // open and counted, nothing has been rejected, and the advertised cap
    // matches the config derivation.
    let srv = stats.get("server").unwrap();
    assert!(srv.get("max_connections").and_then(Json::as_f64).unwrap() >= 1.0);
    let conns = srv.get("connections").expect("server.connections object");
    assert_eq!(conns.get("open").and_then(Json::as_f64), Some(1.0), "this keep-alive socket");
    assert!(conns.get("accepted").and_then(Json::as_f64).unwrap() >= 1.0);
    assert_eq!(conns.get("rejected").and_then(Json::as_f64), Some(0.0));
    assert!(conns.get("pipelined_requests").and_then(Json::as_f64).is_some());
    assert!(conns.get("executor_queue_hwm").and_then(Json::as_f64).is_some());
    // The typed ServerStats mirror agrees with the wire document.
    let typed = server.stats();
    assert_eq!(typed.open_connections, 1);
    assert_eq!(typed.rejected_503, 0);
    assert_eq!(
        typed.accepted_connections as f64,
        conns.get("accepted").and_then(Json::as_f64).unwrap()
    );

    server.shutdown();
}

#[test]
fn query_log_records_served_queries_and_replays() {
    let dir = std::env::temp_dir().join(format!("ph_server_qlog_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let log_path = dir.join("served.phqlog");
    let session = Arc::new(Session::new());
    session.register(demo_dataset("demo", 6_000)).unwrap();
    let cfg = ServerConfig { query_log: Some(log_path.clone()), ..Default::default() };
    let (server, mut client) = serve(session.clone(), cfg);

    let good = [
        "SELECT COUNT(y) FROM demo WHERE x > 500;",
        "SELECT AVG(y) FROM demo WHERE x > 100 AND x < 900;",
    ];
    let mut served = Vec::new();
    for sql in good {
        served.push(client.query(sql).unwrap());
    }
    let _ = client.query("SELEC broken"); // logged with its 400
    server.shutdown();

    let records = read_query_log(&log_path).expect("log decodes");
    assert_eq!(records.len(), 3);
    assert!(records.windows(2).all(|w| w[0].ts_micros <= w[1].ts_micros));
    assert_eq!(records[2].status, 400);
    assert_eq!(records[2].sql, "SELEC broken");
    // Replaying the 200s against the same catalog reproduces the answers.
    for (rec, expected) in records.iter().filter(|r| r.status == 200).zip(&served) {
        assert_eq!(&session.sql(&rec.sql).unwrap(), expected, "replay of {}", rec.sql);
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn graceful_shutdown_answers_in_flight_then_stops() {
    let session = Arc::new(Session::new());
    session.register(demo_dataset("demo", 2_000)).unwrap();
    let (server, mut client) = serve(session, ServerConfig::default());
    client.query("SELECT COUNT(y) FROM demo WHERE x > 10;").unwrap();
    let addr = server.local_addr();
    server.shutdown();
    // After shutdown the port no longer answers.
    let mut dead = Client::new(addr.to_string());
    assert!(matches!(
        dead.query("SELECT COUNT(y) FROM demo WHERE x > 10;"),
        Err(ClientError::Transport(_))
    ));
}

#[test]
fn ingest_error_is_pherror_shaped_at_the_session_layer_too() {
    // Belt and braces for the regression: the Session itself (not just the
    // HTTP layer) must reject these, so nothing depends on transport checks.
    let session = Session::new();
    session.register(demo_dataset("demo", 1_000)).unwrap();
    let bad_schema = Dataset::builder("demo")
        .column(Column::from_ints("wrong", vec![Some(1)]))
        .unwrap()
        .build();
    assert!(matches!(session.ingest("demo", &bad_schema), Err(PhError::Schema(_))));
    assert!(matches!(
        session.ingest("nosuch", &demo_dataset("nosuch", 10)),
        Err(PhError::UnknownTable(_))
    ));
}
